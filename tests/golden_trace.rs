//! Golden decision-audit traces: fixed corpus documents through the traced
//! pipeline, compared byte-for-byte against checked-in JSON.
//!
//! The goldens pin the *events only* — spans carry wall-clock nanos and the
//! metrics snapshot embeds them, so neither is reproducible. Every event is
//! a pure function of the input document and the configured limits (no
//! scenario sets a time budget, and the tag-bomb run fails at tree build,
//! before the first deadline check), which makes the comparison exact.
//!
//! To regenerate after an intentional change to the event taxonomy:
//!
//! ```text
//! RBD_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the diff like any other code change — these files are the
//! compatibility contract for `rbd --trace` consumers.

use rbd::prelude::*;
use rbd_corpus::adversarial::{generate_adversarial, AttackKind};
use rbd_corpus::{generate_document, sites, Domain};
use std::path::PathBuf;
use std::sync::Arc;

/// Same corpus seed the evaluation suite uses.
const SEED: u64 = 1998;

/// Same seed as `tests/chaos.rs`, so the bomb picked here is one the chaos
/// suite already proves fails typed.
const CHAOS_SEED: u64 = 0x0DD5_EED5_0DD5_EED5;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.json"))
}

/// Runs `html` through a traced extractor and returns the pretty-printed
/// events array. Extraction failure is a legitimate scenario (the trace up
/// to the failure is exactly what the golden pins), so the result is
/// deliberately dropped.
fn traced_events(config: ExtractorConfig, html: &str) -> String {
    let sink = Arc::new(CollectingSink::new());
    let traced = config.with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let extractor = RecordExtractor::new(traced).expect("config compiles");
    let _ = extractor.extract_records(html);
    let mut json = rbd::trace::events_to_json(&sink.events()).to_pretty();
    json.push('\n');
    json
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RBD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual.as_bytes())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}\nrun `RBD_UPDATE_GOLDEN=1 cargo test --test golden_trace` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "trace for `{name}` diverged from its golden; if the change is \
         intentional, regenerate with RBD_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// A clean obituary page with the matching ontology under default limits:
/// the full happy path — subtree choice, candidate threshold, all five
/// heuristics with raw inputs, consensus, chunking — with no degradation.
#[test]
fn clean_obituary_trace_matches_golden() {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, SEED);
    let config = ExtractorConfig::default().with_ontology(rbd_ontology::domains::obituaries());
    let trace = traced_events(config, &doc.html);

    // The golden is authoritative; these spot checks make the test
    // self-describing when it fails before a golden exists.
    for needle in [
        "subtree_chosen",
        "candidates",
        "heuristic",
        "\"OM\"",
        "\"RP\"",
        "\"SD\"",
        "\"IT\"",
        "\"HT\"",
        "consensus",
        "chunked",
    ] {
        assert!(trace.contains(needle), "missing {needle} in:\n{trace}");
    }
    assert!(
        !trace.contains("degradation"),
        "clean run must not degrade:\n{trace}"
    );
    assert_matches_golden("clean_obituary", &trace);
}

/// An over-cap tag bomb under pure [`Limits::strict`]: the run dies at tree
/// build with a typed node-cap error, and the trace records exactly what
/// happened before the rejection — events only, no partial tree state.
#[test]
fn tag_bomb_strict_trace_matches_golden() {
    let caps = Limits::strict();
    let node_cap = caps.max_tree_nodes.expect("strict caps nodes");
    let input_cap = caps.max_input_bytes.expect("strict caps input");
    let doc = (0..150)
        .map(|index| generate_adversarial(AttackKind::TagBomb, index, CHAOS_SEED))
        .find(|doc| doc.matches('<').count() + 1 > node_cap && doc.len() <= input_cap)
        .expect("chaos corpus contains an over-cap bomb");

    let config = ExtractorConfig::default().with_limits(Limits::strict());
    let trace = traced_events(config, &doc);
    assert!(
        trace.contains("tokenized"),
        "tokenization precedes the cap:\n{trace}"
    );
    assert!(
        !trace.contains("subtree_chosen"),
        "the bomb must die before subtree choice:\n{trace}"
    );
    assert_matches_golden("tag_bomb_strict", &trace);
}

/// The server-event taxonomy (`rbd serve`'s operational audit trail),
/// serialized from synthetic fixed-value events. The live server's events
/// carry nondeterministic data — peer ports, elapsed times — so the golden
/// pins the *shape*: every variant, every field, the `server_` kind
/// prefix. A field rename or reorder in `ServerEvent` shows up here as a
/// reviewable diff, exactly like the pipeline events above.
#[test]
fn server_event_taxonomy_matches_golden() {
    use rbd::trace::ServerEvent;
    let events = vec![
        TraceEvent::Server(ServerEvent::ConnAccepted {
            peer: "127.0.0.1:50000".into(),
            active: 3,
        }),
        TraceEvent::Server(ServerEvent::RequestShed {
            depth: 16,
            retry_after_s: 1,
        }),
        TraceEvent::Server(ServerEvent::Deadline {
            phase: "read".into(),
            elapsed_ms: 5_000,
        }),
        TraceEvent::Server(ServerEvent::WorkerPanic {
            message: "index out of bounds".into(),
        }),
        TraceEvent::Server(ServerEvent::Drained {
            drained: 7,
            abandoned: 0,
            elapsed_ms: 42,
        }),
    ];
    let mut json = rbd::trace::events_to_json(&events).to_pretty();
    json.push('\n');
    assert_matches_golden("server_events", &json);
}

/// The same clean obituary squeezed through a 2 KiB text cap: the pipeline
/// degrades instead of failing, and the trace must carry the degradation
/// event alongside the decisions made on the truncated text. No time
/// budget, so the trace stays deterministic.
#[test]
fn text_capped_trace_matches_golden() {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, SEED);
    let limits = Limits {
        max_text_bytes: Some(2_048),
        time_budget: None,
        ..Limits::strict()
    };
    let config = ExtractorConfig::default()
        .with_ontology(rbd_ontology::domains::obituaries())
        .with_limits(limits);
    let trace = traced_events(config, &doc.html);
    assert!(
        trace.contains("degradation"),
        "a 2 KiB text cap must degrade this page:\n{trace}"
    );
    assert_matches_golden("text_capped", &trace);
}
