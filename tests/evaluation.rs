//! Headline evaluation invariants: the reproduced experiments must show the
//! paper's qualitative results at the default seed *and* stay robust across
//! other seeds.

use rbd_certainty::CertaintyTable;
use rbd_eval::{calibrate, combination_sweep, run_test_sets, HeuristicRunner, DEFAULT_SEED};

#[test]
fn headline_orsih_is_100_percent_on_test_sets() {
    let runner = HeuristicRunner::new().unwrap();
    let calibration = calibrate(&runner, DEFAULT_SEED);
    let table = calibration.certainty_table();
    let report = run_test_sets(&runner, &table, DEFAULT_SEED);
    assert_eq!(
        report.compound_success, 100.0,
        "paper: ORSIH attains 100% accuracy on all twenty sites\n{report}"
    );
    // The compound rank column ("A") is 1 everywhere, as in Tables 6–9.
    for set in &report.sets {
        for row in &set.rows {
            assert_eq!(row.compound_rank, Some(1), "{}: {:?}", set.domain, row);
        }
    }
}

#[test]
fn individual_heuristic_ordering_matches_table_10() {
    // Paper Table 10: IT (95) > OM (80) > RP (75) > SD (65) > HT (45);
    // ORSIH 100. We assert the qualitative ordering: IT strongest,
    // HT weakest, compound above all.
    let runner = HeuristicRunner::new().unwrap();
    let report = run_test_sets(&runner, &CertaintyTable::paper_table4(), DEFAULT_SEED);
    let [om, rp, sd, it, ht] = report.individual_success;
    assert!(it >= om && it >= rp && it >= sd && it >= ht, "IT strongest");
    assert!(ht <= om && ht <= rp && ht <= sd, "HT weakest");
    assert!(
        report.compound_success >= it,
        "compound beats best individual"
    );
}

#[test]
fn calibrated_factors_resemble_paper_table_4() {
    // Structure, not exact numbers: rank-1 mass dominates for every
    // heuristic, IT's rank-1 mass is the largest, HT's the smallest.
    let runner = HeuristicRunner::new().unwrap();
    let report = calibrate(&runner, DEFAULT_SEED);
    let rank1: Vec<f64> = report.table4.iter().map(|row| row[0]).collect();
    for (i, &r1) in rank1.iter().enumerate() {
        let rest: f64 = report.table4[i][1..].iter().sum();
        assert!(
            r1 >= rest - 1e-9,
            "heuristic {i}: rank-1 {r1} < rest {rest}"
        );
    }
    let it = rank1[3];
    let ht = rank1[4];
    assert!(
        rank1.iter().all(|&r| it >= r),
        "IT has the best rank-1 rate"
    );
    assert!(
        rank1.iter().all(|&r| ht <= r),
        "HT has the worst rank-1 rate"
    );
}

#[test]
fn it_containing_combinations_dominate_table_5() {
    // Paper: "all the combinations that include IT have high success rates
    // (over 90%)".
    let runner = HeuristicRunner::new().unwrap();
    let calibration = calibrate(&runner, DEFAULT_SEED);
    let table = calibration.certainty_table();
    let report = combination_sweep(&calibration, &table);
    for r in &report.results {
        if r.combination.contains('I') {
            assert!(
                r.success_rate >= 90.0,
                "{} only {:.2}%",
                r.combination,
                r.success_rate
            );
        }
    }
    // ORSIH is among the best.
    assert!(report.best().iter().any(|r| r.combination == "ORSIH"));
}

#[test]
fn results_hold_across_seeds() {
    // The reproduction must not be a single-seed accident: across several
    // seeds, ORSIH stays ≥ 95 % on the test sets and the IT-best/HT-worst
    // ordering persists.
    let runner = HeuristicRunner::new().unwrap();
    for seed in [7, 42, 2024] {
        let calibration = calibrate(&runner, seed);
        let table = calibration.certainty_table();
        let report = run_test_sets(&runner, &table, seed);
        assert!(
            report.compound_success >= 95.0,
            "seed {seed}: ORSIH fell to {:.1}%",
            report.compound_success
        );
        let [_, _, _, it, ht] = report.individual_success;
        assert!(it > ht, "seed {seed}: IT ({it}) not above HT ({ht})");
    }
}

#[test]
fn experiments_are_deterministic() {
    let runner = HeuristicRunner::new().unwrap();
    let a = calibrate(&runner, DEFAULT_SEED);
    let b = calibrate(&runner, DEFAULT_SEED);
    assert_eq!(a.table4, b.table4);
    let ta = a.certainty_table();
    let ra = run_test_sets(&runner, &ta, DEFAULT_SEED);
    let rb = run_test_sets(&runner, &ta, DEFAULT_SEED);
    assert_eq!(ra.individual_success, rb.individual_success);
    assert_eq!(ra.compound_success, rb.compound_success);
}

#[test]
fn boundary_discovery_is_immune_to_lexical_noise() {
    // The paper separates the structural problem (this paper) from the
    // lexical one (its companion papers). Out-of-lexicon noise that drops
    // extraction recall to real-world levels must leave the discovered
    // separators untouched — all heuristics except OM read structure only,
    // and OM's estimate degrades gracefully.
    use rbd_certainty::CompoundHeuristic;
    use rbd_corpus::{generate_document, sites, Domain};
    use rbd_eval::{evaluate_document, sc};

    let runner = HeuristicRunner::new().unwrap();
    let calibration = calibrate(&runner, DEFAULT_SEED);
    let compound = CompoundHeuristic::new("ORSIH".parse().unwrap(), calibration.certainty_table());

    for domain in Domain::ALL {
        for mut style in sites::test_sites(domain) {
            style.oov = 0.30;
            let doc = generate_document(&style, domain, 0, DEFAULT_SEED);
            let eval = evaluate_document(&runner, &doc);
            let consensus = compound.combine(&eval.rankings);
            assert_eq!(
                sc(&consensus.winners, &eval.truth),
                1.0,
                "{} ({domain}) under noise: winners {:?}",
                style.site,
                consensus.winners
            );
        }
    }
}
