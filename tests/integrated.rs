//! The integrated (§4.5, one recognition pass) pipeline must agree with the
//! separate-passes pipeline on every corpus document, and its partitioned
//! Data-Record Table must populate the same database as per-record
//! recognition of the chunked records.

use rbd::core::{ExtractorConfig, RecordExtractor};
use rbd::db::InstanceGenerator;
use rbd::ontology::{domains, Ontology};
use rbd::recognizer::Recognizer;
use rbd_corpus::{generate_document, sites, Domain};

fn ontology_for(domain: Domain) -> Ontology {
    match domain {
        Domain::Obituaries => domains::obituaries(),
        Domain::CarAds => domains::car_ads(),
        Domain::JobAds => domains::job_ads(),
        Domain::Courses => domains::courses(),
    }
}

#[test]
fn integrated_discovery_agrees_across_the_corpus() {
    for domain in Domain::ALL {
        let ontology = ontology_for(domain);
        let extractor =
            RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
                .unwrap();
        let recognizer = Recognizer::new(&ontology).unwrap();
        for style in sites::initial_sites(domain)
            .iter()
            .chain(&sites::test_sites(domain))
        {
            let doc = generate_document(style, domain, 0, rbd_eval::DEFAULT_SEED);
            let separate = extractor.discover(&doc.html).unwrap();
            let integrated = extractor
                .discover_and_recognize(&doc.html, &recognizer)
                .unwrap();
            assert_eq!(
                integrated.outcome.separator, separate.separator,
                "{} ({domain})",
                style.site
            );
            for (a, b) in integrated.outcome.rankings.iter().zip(&separate.rankings) {
                assert_eq!(
                    a.to_paper_string(),
                    b.to_paper_string(),
                    "{} ({domain})",
                    style.site
                );
            }
        }
    }
}

#[test]
fn integrated_partitions_populate_like_per_record_recognition() {
    let domain = Domain::Obituaries;
    let ontology = ontology_for(domain);
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone())).unwrap();
    let recognizer = Recognizer::new(&ontology).unwrap();
    let generator = InstanceGenerator::new(&ontology);

    let style = &sites::initial_sites(domain)[0];
    let doc = generate_document(style, domain, 0, rbd_eval::DEFAULT_SEED);

    // Path A: separate — chunk records, recognize each chunk.
    let extraction = extractor.extract_records(&doc.html).unwrap();
    let tables_a: Vec<_> = extraction
        .records
        .iter()
        .map(|r| recognizer.recognize(&r.text))
        .collect();
    let db_a = generator.populate(&tables_a);

    // Path B: integrated — one recognition, partitioned.
    let integrated = extractor
        .discover_and_recognize(&doc.html, &recognizer)
        .unwrap();
    let tables_b: Vec<_> = integrated
        .record_tables()
        .into_iter()
        .filter(|t| !t.is_empty())
        .collect();
    let db_b = generator.populate(&tables_b);

    // Same row counts and the same recognized death dates per record.
    let a = db_a.table("Deceased").unwrap();
    let b = db_b.table("Deceased").unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.project("DeathDate"), b.project("DeathDate"));
    assert_eq!(a.project("DeceasedName"), b.project("DeceasedName"));
}
