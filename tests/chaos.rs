//! Chaos suite: the full pipeline under [`Limits::strict`] over thousands
//! of seeded adversarial documents.
//!
//! No ground truth exists for garbage, so the properties here are the
//! resource-governance contract, not extraction quality:
//!
//! 1. **No panic** — every document either extracts, degrades, or fails
//!    with a typed error (the suite passing at all is the assertion).
//! 2. **Caps respected** — any `Ok` outcome fits the configured limits:
//!    tree within the node cap, candidate set within the candidate cap.
//! 3. **Never silent** — a document that provably exceeds a hard cap
//!    (e.g. more start tags than the node budget) must fail with
//!    `DiscoveryError::Limit`, not quietly truncate.
//! 4. **Accurate reporting** — every degradation event carries the cap
//!    that tripped and an observed value actually over it.
//! 5. **Bounded overshoot** — an already-expired deadline stops the pass
//!    within one unit of work, never after scanning everything.
//! 6. **Tracing survives the attacks** — the main sweep runs with a live
//!    [`CollectingSink`], so the instrumentation itself is under fire; set
//!    `RBD_CHAOS_METRICS=<path>` to write the final counter/histogram
//!    snapshot (the CI chaos job uploads it as an artifact).

use rbd::prelude::*;
use rbd_core::limits::{DegradationStage, LimitKind};
use rbd_corpus::adversarial::{generate_adversarial, AttackKind};
use std::sync::Arc;

/// Fixed seed: every document in this suite replays from `(kind, index)`.
const CHAOS_SEED: u64 = 0x0DD5_EED5_0DD5_EED5;

/// Documents per attack class; 7 classes × 150 = 1050 documents in release
/// (the CI chaos job). The debug run — part of the ordinary workspace test
/// pass — uses a smaller slice of the same corpus to stay fast; it checks
/// the same properties, just over fewer documents.
const PER_KIND: usize = if cfg!(debug_assertions) { 60 } else { 150 };

fn strict_extractor() -> RecordExtractor {
    RecordExtractor::new(ExtractorConfig::default().with_limits(Limits::strict())).unwrap()
}

fn check_outcome(
    kind: AttackKind,
    index: usize,
    doc: &str,
    result: Result<DiscoveryOutcome, DiscoveryError>,
) {
    let limits = Limits::strict();
    match result {
        Ok(out) => {
            // Property 2: caps respected on success.
            let node_cap = limits.max_tree_nodes.unwrap();
            assert!(
                out.tree.len() <= node_cap,
                "{kind:?}#{index}: {} nodes over cap {node_cap}",
                out.tree.len()
            );
            let cand_cap = limits.max_candidate_tags.unwrap();
            assert!(
                out.candidates.len() <= cand_cap,
                "{kind:?}#{index}: {} candidates over cap {cand_cap}",
                out.candidates.len()
            );
            assert!(doc.len() <= limits.max_input_bytes.unwrap());
            // Property 4: every event is a real breach.
            for ev in &out.degradation {
                match ev.cause.limit {
                    LimitKind::CandidateTags | LimitKind::TextBytes => assert!(
                        ev.cause.observed > ev.cause.cap,
                        "{kind:?}#{index}: event {ev} reports no actual breach"
                    ),
                    LimitKind::WallClock => assert!(
                        matches!(
                            ev.stage,
                            DegradationStage::Heuristic(_) | DegradationStage::Recognizer
                        ),
                        "{kind:?}#{index}: wall-clock event at odd stage {ev}"
                    ),
                    hard => panic!("{kind:?}#{index}: hard limit {hard} as degradation"),
                }
            }
        }
        // Property 1/3: failures are typed, and a limit error names a cap.
        Err(DiscoveryError::Limit(e)) => {
            assert!(
                limits_cap_for(e.limit).is_some(),
                "{kind:?}#{index}: limit error {e} for an uncapped resource"
            );
        }
        Err(
            DiscoveryError::EmptyDocument
            | DiscoveryError::NoCandidates
            | DiscoveryError::NoConsensus,
        ) => {}
        Err(other) => panic!("{kind:?}#{index}: unexpected error {other}"),
    }
}

fn limits_cap_for(kind: LimitKind) -> Option<usize> {
    let l = Limits::strict();
    match kind {
        LimitKind::InputBytes => l.max_input_bytes,
        LimitKind::TreeNodes => l.max_tree_nodes,
        LimitKind::NestingDepth => l.max_nesting_depth,
        LimitKind::CandidateTags => l.max_candidate_tags,
        LimitKind::TextBytes => l.max_text_bytes,
        LimitKind::WallClock => l.time_budget.map(|d| d.as_millis().try_into().unwrap_or(0)),
        // Queue depth is a batch-pipeline admission limit; a single
        // governed extraction can never trip it.
        LimitKind::QueueDepth => None,
    }
}

#[test]
fn full_pipeline_survives_the_adversarial_corpus() {
    // Property 6: a live sink collects through the whole sweep.
    let sink = Arc::new(CollectingSink::new());
    let ex = RecordExtractor::new(
        ExtractorConfig::default()
            .with_limits(Limits::strict())
            .with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>),
    )
    .unwrap();
    for kind in AttackKind::ALL {
        for index in 0..PER_KIND {
            let doc = generate_adversarial(kind, index, CHAOS_SEED);
            check_outcome(kind, index, &doc, ex.discover(&doc));
            // Chunking after a successful discovery must also hold up.
            if let Ok(extraction) = ex.extract_records(&doc) {
                assert_eq!(extraction.degradation, extraction.outcome.degradation);
                let total: usize = extraction.records.len();
                assert!(
                    total < doc.len().max(2),
                    "{kind:?}#{index}: absurd chunking"
                );
            }
        }
    }
    // The whole corpus went through traced code paths; the registry must
    // reflect that, and CI archives the snapshot for trend-watching.
    assert!(sink.registry().counter("extract_tags_scanned") > 0);
    if let Some(path) = std::env::var_os("RBD_CHAOS_METRICS") {
        let snapshot = sink.registry_snapshot().to_pretty();
        std::fs::write(&path, snapshot.as_bytes())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.to_string_lossy()));
    }
}

#[test]
fn threaded_batch_arm_matches_the_serial_sweep() {
    // The strict profile minus its wall-clock budget: the time-based
    // degradations are the only nondeterministic part of the contract, so
    // dropping them makes "parallel equals serial" an exact assertion
    // while every size cap stays armed.
    let limits = Limits {
        time_budget: None,
        ..Limits::strict()
    };
    let ex = RecordExtractor::new(ExtractorConfig::default().with_limits(limits)).unwrap();

    let mut docs: Vec<(u64, String)> = Vec::new();
    for kind in AttackKind::ALL {
        for index in 0..PER_KIND {
            let id = u64::try_from(docs.len()).expect("small corpus");
            docs.push((id, generate_adversarial(kind, index, CHAOS_SEED)));
        }
    }
    let total = docs.len();

    let serial: Vec<_> = docs
        .iter()
        .map(|(_, html)| ex.extract_records(html))
        .collect();

    let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
    let report = run_batch(&ex, docs, &BatchConfig::with_jobs(4), &sink)
        .expect("four workers is a valid batch config");

    // Clean drain: one result per document, ids contiguous after the sort
    // — nothing lost, nothing duplicated, nothing shed.
    assert_eq!(report.results.len(), total);
    assert_eq!(report.shed, 0);
    assert_eq!(report.strict, 0);
    let ids: Vec<u64> = report.results.iter().map(|r| r.doc_id).collect();
    let expected: Vec<u64> = (0..u64::try_from(total).expect("small corpus")).collect();
    assert_eq!(ids, expected, "batch lost or duplicated documents");

    // Identical outcomes, document by document: same separator, same
    // record texts, same degradation events, same typed errors.
    for (got, want) in report.results.iter().zip(&serial) {
        let doc_id = got.doc_id;
        match (&got.outcome, want) {
            (Ok(g), Ok(w)) => {
                assert_eq!(g.outcome.separator, w.outcome.separator, "doc {doc_id}");
                assert_eq!(g.degradation, w.degradation, "doc {doc_id}");
                assert_eq!(
                    g.records.iter().map(|r| &r.text).collect::<Vec<_>>(),
                    w.records.iter().map(|r| &r.text).collect::<Vec<_>>(),
                    "doc {doc_id}"
                );
            }
            (Err(rbd::pipeline::BatchError::Discovery(g)), Err(w)) => {
                assert_eq!(g, w, "doc {doc_id}");
            }
            (got_outcome, want_outcome) => {
                panic!("doc {doc_id}: batch {got_outcome:?} vs serial {want_outcome:?}")
            }
        }
    }

    // The merged worker metrics account for every document, and CI archives
    // the snapshot alongside the serial chaos metrics.
    assert_eq!(
        report.metrics.counters.get("pipeline_jobs_run"),
        Some(&u64::try_from(total).expect("small corpus")),
        "{:?}",
        report.metrics.counters
    );
    if let Some(path) = std::env::var_os("RBD_BATCH_METRICS") {
        let snapshot = report.metrics.to_json().to_pretty();
        std::fs::write(&path, snapshot.as_bytes())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.to_string_lossy()));
    }
}

#[test]
fn oversized_tag_bombs_fail_typed_never_truncate() {
    let ex = strict_extractor();
    let node_cap = Limits::strict().max_tree_nodes.unwrap();
    let mut over_cap_seen = 0usize;
    for index in 0..PER_KIND {
        let doc = generate_adversarial(AttackKind::TagBomb, index, CHAOS_SEED);
        // Tag bombs contain no '<' outside tags, so this counts start tags.
        let tags = doc.matches('<').count();
        let result = ex.discover(&doc);
        if tags + 1 > node_cap && doc.len() <= Limits::strict().max_input_bytes.unwrap() {
            over_cap_seen += 1;
            match result {
                Err(DiscoveryError::Limit(e)) => {
                    assert_eq!(e.limit, LimitKind::TreeNodes, "bomb #{index}: {e}");
                    assert_eq!(e.cap, node_cap);
                    assert!(e.observed > node_cap);
                }
                other => panic!(
                    "bomb #{index} with {tags} tags must fail on the node cap, got {other:?}"
                ),
            }
        }
    }
    // The size distribution must actually exercise the over-cap branch.
    assert!(
        over_cap_seen >= 5,
        "only {over_cap_seen} over-cap bombs generated; distribution regressed"
    );
}

#[test]
fn deep_towers_fail_on_the_depth_cap() {
    let ex = strict_extractor();
    let depth_cap = Limits::strict().max_nesting_depth.unwrap();
    let mut over_cap_seen = 0usize;
    for index in 0..PER_KIND {
        let doc = generate_adversarial(AttackKind::NestingTower, index, CHAOS_SEED);
        // Towers are `<t>`^d … `</t>`^d: end tags count the actual depth.
        let depth = doc.matches("</").count();
        if depth > depth_cap {
            over_cap_seen += 1;
            match ex.discover(&doc) {
                Err(DiscoveryError::Limit(e)) => {
                    assert_eq!(e.limit, LimitKind::NestingDepth, "tower #{index}: {e}");
                }
                other => panic!("tower #{index} of depth {depth} must fail, got {other:?}"),
            }
        }
    }
    assert!(over_cap_seen >= 5, "only {over_cap_seen} over-cap towers");
}

#[test]
fn expired_deadline_stops_within_one_unit_of_work() {
    // A zero budget is expired before the first heuristic: every heuristic
    // abstains, and the typed wall-clock failure arrives without scanning
    // the record area even once.
    let limits = Limits {
        time_budget: Some(std::time::Duration::ZERO),
        ..Limits::default()
    };
    let ex = RecordExtractor::new(ExtractorConfig::default().with_limits(limits)).unwrap();
    let style = &rbd_corpus::sites::initial_sites(rbd_corpus::Domain::Obituaries)[0];
    let doc = rbd_corpus::generate_document(style, rbd_corpus::Domain::Obituaries, 0, CHAOS_SEED);
    let started = std::time::Instant::now();
    match ex.discover(&doc.html) {
        Err(DiscoveryError::Limit(e)) => assert_eq!(e.limit, LimitKind::WallClock),
        // A single-candidate page would shortcut past the heuristics; the
        // obituary styles all emit multiple candidates, so this is a bug.
        other => panic!("zero budget must surface as a wall-clock limit, got {other:?}"),
    }
    // "One unit of work" is one heuristic pass over one small page —
    // seconds of headroom on any machine, yet catching an implementation
    // that ignores the deadline and scans everything.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "expired deadline overshot by {:?}",
        started.elapsed()
    );
}

/// Crash-recovery arm: a committed store survives truncation at *every*
/// byte boundary of the trailing uncommitted region. For each cut the
/// reopened store must recover cleanly — all committed documents intact
/// and byte-identical, at most the uncommitted batch lost — and a cut
/// inside the committed region must surface as a typed error or a clean
/// (possibly empty) store, never a panic or silently wrong data. Set
/// `RBD_STORE_METRICS=<path>` to write the cut/recovery tally (the CI
/// store job uploads it as an artifact).
#[test]
fn store_survives_truncation_at_every_byte_of_the_last_frame() {
    use rbd::store::{ContentHash, Store, StoredDoc, StoredRecord};

    fn make_doc(n: u64) -> StoredDoc {
        let body = format!("chaos-store-doc-{n}");
        StoredDoc {
            hash: ContentHash::of(body.as_bytes()),
            source: Some(format!("doc-{n}.html")),
            separator: "hr".to_string(),
            subtree_tag: "td".to_string(),
            preamble: None,
            records: vec![StoredRecord {
                start: 0,
                end: u64::try_from(body.len()).expect("small doc"),
                text: body,
            }],
            degraded: 0,
        }
    }

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let base = dir.join(format!("rbd-chaos-store-{pid}.rbd"));
    let scratch = dir.join(format!("rbd-chaos-store-cut-{pid}.rbd"));
    let _ = std::fs::remove_file(&base);

    // Batch A: committed. Batch B: committed on disk, then every suffix of
    // its byte range is torn off in turn, simulating a crash at each point
    // of the append.
    let batch_a: Vec<StoredDoc> = (0..3).map(make_doc).collect();
    let batch_b: Vec<StoredDoc> = (3..5).map(make_doc).collect();
    let len_a = {
        let mut store = Store::open(&base).expect("fresh store opens");
        store.append_batch(&batch_a).expect("batch A commits");
        std::fs::metadata(&base).expect("store file exists").len()
    };
    {
        let mut store = Store::open(&base).expect("committed store reopens");
        store.append_batch(&batch_b).expect("batch B commits");
    }
    let full = std::fs::read(&base).expect("store file readable");
    let len_full = u64::try_from(full.len()).expect("small store");
    assert!(len_full > len_a, "batch B wrote nothing");

    let cut_start = usize::try_from(len_a).expect("small store");
    let mut recovered_committed = 0u64;
    let mut recovered_full = 0u64;
    for cut in cut_start..full.len() + 1 {
        std::fs::write(&scratch, &full[..cut]).expect("scratch write");
        let mut store = Store::open(&scratch)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery failed: {e}"));
        let cut_is_full = cut == full.len();
        let expected: u64 = if cut_is_full { 5 } else { 3 };
        assert_eq!(
            store.len(),
            expected,
            "cut at byte {cut}: wrong recovered count"
        );
        if cut_is_full {
            recovered_full += 1;
        } else {
            recovered_committed += 1;
        }
        // Every committed document survives byte-identical.
        for doc in &batch_a {
            let got = store
                .get(&doc.hash)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: read-back failed: {e}"))
                .unwrap_or_else(|| panic!("cut at byte {cut}: committed doc lost"));
            assert_eq!(
                got.response_json().to_compact(),
                doc.response_json().to_compact(),
                "cut at byte {cut}: committed doc mutated"
            );
        }
    }

    // Cuts *inside* the committed region lose data the log can no longer
    // vouch for: recovery must still never panic — a clean (possibly
    // empty) store or a typed error are the only acceptable outcomes.
    let mut torn_committed_ok = 0u64;
    let mut torn_committed_typed = 0u64;
    for cut in (0..cut_start).step_by(7) {
        std::fs::write(&scratch, &full[..cut]).expect("scratch write");
        match Store::open(&scratch) {
            Ok(store) => {
                assert!(store.len() <= 3, "cut at byte {cut}: resurrected documents");
                torn_committed_ok += 1;
            }
            Err(e) => {
                assert!(!e.kind().is_empty(), "cut at byte {cut}: untyped error {e}");
                torn_committed_typed += 1;
            }
        }
    }

    if let Some(path) = std::env::var_os("RBD_STORE_METRICS") {
        let snapshot = rbd_json::Json::object([
            (
                "store_cuts_tested",
                rbd_json::Json::UInt(recovered_committed + recovered_full),
            ),
            (
                "store_recovered_committed",
                rbd_json::Json::UInt(recovered_committed),
            ),
            ("store_recovered_full", rbd_json::Json::UInt(recovered_full)),
            (
                "store_torn_committed_ok",
                rbd_json::Json::UInt(torn_committed_ok),
            ),
            (
                "store_torn_committed_typed",
                rbd_json::Json::UInt(torn_committed_typed),
            ),
        ])
        .to_pretty();
        std::fs::write(&path, snapshot.as_bytes())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.to_string_lossy()));
    }
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&scratch);
}

#[test]
fn mutated_corpus_keeps_degradation_reports_accurate() {
    // Tight soft caps force frequent degradation on *valid* mutated pages;
    // every report must be present and truthful.
    let limits = Limits {
        max_candidate_tags: Some(2),
        max_text_bytes: Some(256),
        ..Limits::strict()
    };
    let ex = RecordExtractor::new(
        ExtractorConfig::default()
            .with_ontology(rbd_ontology::domains::obituaries())
            .with_limits(limits),
    )
    .unwrap();
    let mut degraded_runs = 0usize;
    for index in 0..200 {
        let doc = generate_adversarial(AttackKind::Mutation, index, CHAOS_SEED);
        if let Ok(out) = ex.discover(&doc) {
            assert!(out.candidates.len() <= 2);
            let text_events = out
                .degradation
                .iter()
                .filter(|e| e.cause.limit == LimitKind::TextBytes)
                .count();
            let cand_events = out
                .degradation
                .iter()
                .filter(|e| e.cause.limit == LimitKind::CandidateTags)
                .count();
            // At most one report per stage per cause.
            assert!(
                text_events <= 1,
                "duplicate text events: {:?}",
                out.degradation
            );
            assert!(
                cand_events <= 1,
                "duplicate candidate events: {:?}",
                out.degradation
            );
            if !out.degradation.is_empty() {
                degraded_runs += 1;
            }
            for ev in &out.degradation {
                assert!(ev.cause.observed > ev.cause.cap, "untruthful event {ev}");
            }
        }
    }
    assert!(
        degraded_runs >= 20,
        "only {degraded_runs} degraded runs; caps too loose to test reporting"
    );
}
