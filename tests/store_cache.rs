//! Cache-correctness guard for the persistent extraction store.
//!
//! The contract under test: a cache **hit must be byte-identical to a
//! fresh extraction** — over an adversarial corpus, under both a serial
//! and a 4-worker batch — and changing a single byte of a document must
//! bust its cache entry. Wall-clock budgets are disabled (the only
//! nondeterministic limit), so "identical" is an exact byte assertion on
//! the canonical response JSON, not a similarity check.

use rbd::prelude::*;
use rbd::store::{ContentHash, Store, StoredDoc};
use rbd_corpus::adversarial::{generate_adversarial, AttackKind};
use rbd_pipeline::{run_batch_stored, CacheStatus};
use std::sync::Arc;

const SEED: u64 = 0x0DD5_EED5_0DD5_EED5;
const PER_KIND: usize = if cfg!(debug_assertions) { 12 } else { 40 };

/// Strict limits minus the wall-clock budget: every size cap stays armed,
/// and extraction becomes deterministic.
fn extractor() -> RecordExtractor {
    let limits = Limits {
        time_budget: None,
        ..Limits::strict()
    };
    RecordExtractor::new(ExtractorConfig::default().with_limits(limits)).expect("valid config")
}

/// Adversarial corpus plus a slice of well-formed pages, so the sweep
/// exercises both the error paths (never cached) and real extractions
/// (cached and replayed).
fn corpus() -> Vec<(u64, Option<String>, String)> {
    let mut docs: Vec<(u64, Option<String>, String)> = Vec::new();
    for kind in AttackKind::ALL {
        for index in 0..PER_KIND {
            let id = u64::try_from(docs.len()).expect("small corpus");
            docs.push((id, None, generate_adversarial(kind, index, SEED)));
        }
    }
    let style = &rbd_corpus::sites::initial_sites(rbd_corpus::Domain::Obituaries)[0];
    for index in 0..8 {
        let id = u64::try_from(docs.len()).expect("small corpus");
        let page =
            rbd_corpus::generate_document(style, rbd_corpus::Domain::Obituaries, index, SEED);
        docs.push((id, Some(format!("obit-{index}.html")), page.html));
    }
    docs
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rbd-store-cache-{name}-{}.rbd", std::process::id()))
}

/// Canonical bytes of one result, or `None` for a typed failure (typed
/// failures are never cached, so they have no replay contract).
fn canonical(outcome: &Result<StoredDoc, rbd::pipeline::BatchError>) -> Option<String> {
    outcome
        .as_ref()
        .ok()
        .map(|d| d.response_json().to_compact())
}

#[test]
fn cache_hits_are_byte_identical_to_fresh_extraction_serial_and_parallel() {
    let ex = extractor();
    let docs = corpus();
    let total = docs.len();
    let sink: Arc<dyn TraceSink> = Arc::new(NullSink);

    // Ground truth: fresh extraction, no store anywhere near it.
    let fresh: Vec<Option<String>> = docs
        .iter()
        .map(|(_, source, html)| {
            ex.extract_records(html).ok().map(|extraction| {
                StoredDoc::from_extraction(
                    ContentHash::of(html.as_bytes()),
                    source.as_deref(),
                    &extraction,
                )
                .response_json()
                .to_compact()
            })
        })
        .collect();
    let ok_docs = u64::try_from(fresh.iter().flatten().count()).expect("small corpus");
    assert!(ok_docs > 0, "corpus produced no successful extractions");

    for (label, jobs) in [("serial", 1usize), ("parallel", 4usize)] {
        let path = scratch(label);
        let _ = std::fs::remove_file(&path);
        let mut store = Store::open(&path).expect("fresh store opens");
        let config = BatchConfig::with_jobs(jobs);

        // Pass 1: cold store — everything is a miss, successes get cached.
        let cold = run_batch_stored(&ex, docs.clone(), &config, &sink, &mut store)
            .expect("valid batch config");
        assert_eq!(cold.results.len(), total, "{label}: lost documents");
        assert_eq!(cold.hits, 0, "{label}: hit on a cold store");
        assert!(
            cold.write_error.is_none(),
            "{label}: {:?}",
            cold.write_error
        );
        for result in &cold.results {
            assert_eq!(
                result.cache,
                CacheStatus::Miss,
                "{label}: cold pass must miss"
            );
            let id = usize::try_from(result.doc_id).expect("small corpus");
            assert_eq!(
                canonical(&result.outcome),
                fresh[id],
                "{label}: cold extraction diverges from fresh doc {id}"
            );
        }

        // Pass 2: warm store — every cached success replays as a hit,
        // byte-identical to the fresh extraction; failures miss again.
        let warm = run_batch_stored(&ex, docs.clone(), &config, &sink, &mut store)
            .expect("valid batch config");
        assert_eq!(warm.hits, ok_docs, "{label}: every success must hit");
        for result in &warm.results {
            let id = usize::try_from(result.doc_id).expect("small corpus");
            match &fresh[id] {
                Some(bytes) => {
                    assert_eq!(
                        result.cache,
                        CacheStatus::Hit,
                        "{label}: doc {id} missed warm"
                    );
                    assert_eq!(
                        canonical(&result.outcome).as_ref(),
                        Some(bytes),
                        "{label}: cache hit not byte-identical for doc {id}"
                    );
                }
                None => assert_eq!(
                    result.cache,
                    CacheStatus::Miss,
                    "{label}: failed doc {id} must never hit"
                ),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn one_changed_byte_busts_the_cache() {
    let ex = extractor();
    let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
    let style = &rbd_corpus::sites::initial_sites(rbd_corpus::Domain::Obituaries)[0];
    let html = rbd_corpus::generate_document(style, rbd_corpus::Domain::Obituaries, 0, SEED).html;

    let path = scratch("bust");
    let _ = std::fs::remove_file(&path);
    let mut store = Store::open(&path).expect("fresh store opens");
    let config = BatchConfig::with_jobs(1);

    let cold = run_batch_stored(
        &ex,
        vec![(0, None, html.clone())],
        &config,
        &sink,
        &mut store,
    )
    .expect("valid batch config");
    assert_eq!((cold.hits, cold.misses), (0, 1));

    // The identical document hits; one flipped byte is a different
    // document and must re-extract.
    let mut mutated = html.clone().into_bytes();
    let flip = mutated.len() / 2;
    mutated[flip] = if mutated[flip] == b'a' { b'b' } else { b'a' };
    let mutated = String::from_utf8(mutated).expect("ascii corpus");
    assert_ne!(
        ContentHash::of(html.as_bytes()),
        ContentHash::of(mutated.as_bytes())
    );

    let warm = run_batch_stored(
        &ex,
        vec![(0, None, html), (1, None, mutated)],
        &config,
        &sink,
        &mut store,
    )
    .expect("valid batch config");
    let statuses: Vec<CacheStatus> = warm.results.iter().map(|r| r.cache).collect();
    assert_eq!(statuses, vec![CacheStatus::Hit, CacheStatus::Miss]);
    let _ = std::fs::remove_file(&path);
}
