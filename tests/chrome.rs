//! Navigation chrome and the limits of the highest-fan-out conjecture.
//!
//! §3: "It is our conjecture that in a Web document with multiple records
//! of interest, the subtree whose root has the highest fan-out should
//! contain the records. Indeed, we do not consider Web documents that do
//! not satisfy this conjecture." These tests pin down both sides: modest
//! chrome never steals the fan-out, and a nav bar wider than the record
//! list *does* — the documented failure mode outside the paper's scope.

use rbd::core::RecordExtractor;
use rbd::tagtree::TagTreeBuilder;
use rbd_corpus::{generate_document, sites, Domain};

/// A page whose record area holds `n_records` hr-separated records and
/// whose nav cell holds `n_links` anchors.
fn page(n_links: usize, n_records: usize) -> String {
    let mut d = String::from("<html><body><table><tr><td>");
    for i in 0..n_links {
        d.push_str(&format!("<a href=\"s{i}.html\">Section {i}</a> | "));
    }
    d.push_str("</td></tr></table>\n<table><tr><td>");
    for i in 0..n_records {
        d.push_str(&format!(
            "<hr><b>Record {i}</b> body text of record number {i} goes here."
        ));
    }
    d.push_str("<hr></td></tr></table></body></html>");
    d
}

#[test]
fn modest_chrome_does_not_steal_the_fanout() {
    let doc = page(5, 12);
    let tree = TagTreeBuilder::default().build(&doc);
    let fanout = tree.highest_fanout();
    // The record cell (25 children) wins over the nav cell (5).
    let counts = tree.child_tag_counts(fanout);
    assert!(counts.iter().any(|c| c.name == "hr"), "{counts:?}");

    let out = RecordExtractor::default().discover(&doc).unwrap();
    assert_eq!(out.separator, "hr");
}

#[test]
fn oversized_nav_bar_defeats_the_conjecture() {
    // 40 links vs 5 records: the nav cell's fan-out wins and discovery
    // lands in the wrong subtree. The paper's conjecture explicitly
    // excludes such documents; this test documents the boundary rather
    // than hiding it.
    let doc = page(40, 5);
    let tree = TagTreeBuilder::default().build(&doc);
    let fanout = tree.highest_fanout();
    let counts = tree.child_tag_counts(fanout);
    assert!(
        counts.iter().all(|c| c.name == "a"),
        "expected the nav cell to win: {counts:?}"
    );

    let out = RecordExtractor::default().discover(&doc).unwrap();
    assert_eq!(out.separator, "a", "discovery follows the (wrong) subtree");
}

#[test]
fn corpus_chrome_is_always_modest() {
    // Every generator style keeps nav_links far below the record count, so
    // the conjecture holds corpus-wide.
    for domain in Domain::ALL {
        for style in sites::initial_sites(domain)
            .iter()
            .chain(&sites::test_sites(domain))
        {
            assert!(
                style.nav_links < style.records.0,
                "{}: {} links vs {} records",
                style.site,
                style.nav_links,
                style.records.0
            );
            let doc = generate_document(style, domain, 0, 1998);
            let tree = TagTreeBuilder::default().build(&doc.html);
            let fanout = tree.highest_fanout();
            let counts = tree.child_tag_counts(fanout);
            assert!(
                counts.iter().any(|c| c.name == doc.truth.separator),
                "{} ({domain}): fan-out node lacks the separator",
                style.site
            );
        }
    }
}
