//! End-to-end Figure-1 pipeline tests: generated page → boundary discovery →
//! chunking → recognition → database population.

use rbd::prelude::*;
use rbd_corpus::{generate_document, sites, Domain};
use rbd_db::InstanceGenerator;
use rbd_ontology::domains;
use rbd_recognizer::Recognizer;

fn pipeline(domain: Domain, site_idx: usize, seed: u64) -> (usize, rbd_db::Database) {
    let ontology = match domain {
        Domain::Obituaries => domains::obituaries(),
        Domain::CarAds => domains::car_ads(),
        Domain::JobAds => domains::job_ads(),
        Domain::Courses => domains::courses(),
    };
    let style = &sites::initial_sites(domain)[site_idx];
    let doc = generate_document(style, domain, 0, seed);
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone())).unwrap();
    let extraction = extractor.extract_records(&doc.html).unwrap();
    assert_eq!(
        extraction.outcome.separator, doc.truth.separator,
        "wrong separator on {} ({domain})",
        doc.site
    );
    let recognizer = Recognizer::new(&ontology).unwrap();
    let tables: Vec<_> = extraction
        .records
        .iter()
        .map(|r| recognizer.recognize(&r.text))
        .collect();
    let db = InstanceGenerator::new(&ontology).populate(&tables);
    (doc.truth.record_count, db)
}

#[test]
fn obituary_pipeline_populates_one_row_per_record() {
    let (n, db) = pipeline(Domain::Obituaries, 0, 1998);
    let deceased = db.table("Deceased").unwrap();
    assert_eq!(deceased.len(), n);
    // Every record has a recognized death date (the generator always emits
    // a "died on"/"passed away on" sentence).
    assert_eq!(deceased.project("DeathDate").len(), n);
    // Names are proper names, not "(unrecognized)".
    let unrecognized = deceased
        .project("DeceasedName")
        .iter()
        .filter(|v| **v == "(unrecognized)")
        .count();
    assert!(
        unrecognized * 5 <= n,
        "{unrecognized}/{n} names unrecognized"
    );
}

#[test]
fn car_pipeline_recognizes_core_fields() {
    let (n, db) = pipeline(Domain::CarAds, 0, 7);
    let cars = db.table("CarForSale").unwrap();
    assert_eq!(cars.len(), n);
    assert_eq!(cars.project("Year").len(), n);
    assert_eq!(cars.project("Make").len(), n);
    assert_eq!(cars.project("Price").len(), n);
    // Features satellite has multiple rows per ad on average.
    let features = db.table("CarForSale_Feature").unwrap();
    assert!(
        features.len() >= n,
        "{} features for {n} ads",
        features.len()
    );
}

#[test]
fn job_pipeline_recognizes_titles_and_skills() {
    let (n, db) = pipeline(Domain::JobAds, 0, 13);
    let jobs = db.table("JobOpening").unwrap();
    assert_eq!(jobs.len(), n);
    assert_eq!(jobs.project("JobTitle").len(), n);
    let skills = db.table("JobOpening_Skill").unwrap();
    assert!(skills.len() >= n);
}

#[test]
fn course_pipeline_recognizes_numbers() {
    let (n, db) = pipeline(Domain::Courses, 0, 21);
    let courses = db.table("Course").unwrap();
    assert_eq!(courses.len(), n);
    assert_eq!(courses.project("CourseNumber").len(), n);
}

#[test]
fn pipeline_works_across_many_sites_and_seeds() {
    for domain in Domain::ALL {
        for seed in [1, 2, 3] {
            for site_idx in 0..sites::initial_sites(domain).len().min(5) {
                let (n, db) = pipeline(domain, site_idx, seed);
                let entity = &db.scheme().entity_relation.clone();
                let rows = db.table(entity).unwrap().len();
                // Sites that emit separators only *between* records have no
                // cut point before record 1, which is then absorbed into
                // the page preamble — an inherent ambiguity of boundary
                // chunking the paper does not address. Tolerate exactly
                // that one record.
                assert!(
                    rows == n || rows + 1 == n,
                    "{domain} site {site_idx} seed {seed}: {rows} rows for {n} records"
                );
            }
        }
    }
}

#[test]
fn record_boundaries_partition_the_data_record_table() {
    // The paper's §4.5 integration argument: recognizing over the whole
    // subtree text then partitioning at separator positions must agree
    // with recognizing each record separately, for position-independent
    // counts like the per-record DeathDate keyword count.
    let ontology = domains::obituaries();
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 1, 55);
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone())).unwrap();
    let extraction = extractor.extract_records(&doc.html).unwrap();
    let recognizer = Recognizer::new(&ontology).unwrap();

    // Whole-text recognition partitioned at record start offsets within the
    // concatenated record text.
    let mut full_text = String::new();
    let mut cuts = Vec::new();
    for r in &extraction.records {
        if !full_text.is_empty() {
            cuts.push(full_text.len());
        }
        full_text.push_str(&r.text);
        full_text.push('\n');
    }
    let table = recognizer.recognize(&full_text);
    let parts = table.partition(&cuts);
    assert_eq!(parts.len(), extraction.records.len());

    for (part, record) in parts.iter().zip(&extraction.records) {
        let whole = part.iter().filter(|e| e.descriptor == "DeathDate").count();
        let separate = recognizer
            .recognize(&record.text)
            .for_descriptor("DeathDate")
            .count();
        assert_eq!(whole, separate, "record: {}", record.text);
    }
}
