//! The paper's footnote 1: "We have done all our work with HTML documents,
//! but most of this work should carry over directly to other document type
//! definitions (DTDs), such as XML." This test suite is that claim,
//! exercised: record-boundary discovery over XML feeds.

use rbd::core::{ExtractorConfig, RecordExtractor};
use rbd::html::{tokenize_xml, Token};
use rbd::tagtree::TagTreeBuilder;

const FEED: &str = r#"<?xml version="1.0"?>
<classifieds>
  <header>Autos for sale, October 1998</header>
  <Ad><year>1995</year> Ford Taurus, white, 62,000 miles. <price>$6,500</price> obo. Call (801) 555-1234.</Ad>
  <Ad><year>1996</year> Honda Accord, teal, 40,000 miles. <price>$8,900</price>. Call (801) 555-2222.</Ad>
  <Ad><year>1997</year> Dodge Neon, red, 31,000 miles. <price>$7,100</price> obo. Call (801) 555-3333.</Ad>
  <Ad><year>1993</year> Toyota Corolla, blue, 98,000 miles. <price>$3,400</price>. Call (801) 555-4444.</Ad>
</classifieds>"#;

#[test]
fn xml_tokenizer_preserves_case_and_cdata() {
    let ts = tokenize_xml("<Ad><![CDATA[1 < 2 & <b>not markup</b>]]></Ad>");
    assert!(ts.tokens[0].is_start(&ts.symbols, "Ad"), "case preserved");
    let Token::Text(t) = &ts.tokens[1] else {
        panic!("CDATA must become text: {:?}", ts.tokens)
    };
    assert_eq!(t.text(), "1 < 2 & <b>not markup</b>");
    assert!(ts.tokens[2].is_end(&ts.symbols, "Ad"));
}

#[test]
fn xml_mode_has_no_raw_text_elements() {
    // In HTML, <title> swallows markup; in XML it nests normally.
    let ts = tokenize_xml("<title><item>x</item></title>");
    assert!(ts.tokens[1].is_start(&ts.symbols, "item"));
}

#[test]
fn tag_tree_builds_from_xml() {
    let tree = TagTreeBuilder::default().xml().build(FEED);
    let fanout = tree.highest_fanout();
    assert_eq!(tree.name(fanout), "classifieds");
    // The repeated element is the fan-out node's dominant child.
    let counts = tree.child_tag_counts(fanout);
    let ad = counts.iter().find(|c| c.name == "Ad").expect("Ad children");
    assert_eq!(ad.count, 4);
}

#[test]
fn discovery_finds_the_record_element_in_xml() {
    // The structural heuristics (HT, SD, RP) carry over unchanged; IT's
    // HTML-specific tag list simply finds no candidates and contributes
    // nothing — exactly how the compound degrades by design.
    let tree = TagTreeBuilder::default().xml().build(FEED);

    // HTML-mode lower-cases `Ad`; XML-mode preserves it — both find the
    // same structural separator.
    let html_mode = RecordExtractor::new(ExtractorConfig::default()).unwrap();
    assert_eq!(html_mode.discover(FEED).unwrap().separator, "ad");

    let xml_mode = RecordExtractor::new(ExtractorConfig::default().xml()).unwrap();
    assert_eq!(xml_mode.discover(FEED).unwrap().separator, "Ad");

    let cands = tree.candidate_tags(tree.highest_fanout(), 0.10);
    assert!(cands.iter().any(|c| c.name == "Ad"));
}

#[test]
fn xml_extraction_preserves_cdata_content() {
    let feed = r#"<feed>
      <entry>first record body</entry>
      <entry><![CDATA[second record with < and & intact]]></entry>
      <entry>third record body</entry>
    </feed>"#;
    let extractor = RecordExtractor::new(ExtractorConfig::default().xml()).unwrap();
    let extraction = extractor.extract_records(feed).unwrap();
    assert_eq!(extraction.outcome.separator, "entry");
    assert_eq!(extraction.records.len(), 3);
    assert_eq!(
        extraction.records[1].text,
        "second record with < and & intact"
    );
}

#[test]
fn xml_records_chunk_cleanly() {
    let extractor = RecordExtractor::new(ExtractorConfig::default()).unwrap();
    let extraction = extractor.extract_records(FEED).unwrap();
    assert_eq!(extraction.records.len(), 4);
    assert!(extraction.records[1].text.contains("Honda Accord"));
    assert!(extraction.preamble.unwrap().text.contains("Autos for sale"));
}
