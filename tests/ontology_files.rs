//! The shipped `.ont` files (the DSL form of every built-in domain plus the
//! rental example) must parse, validate and compile — they are the
//! artifacts a user edits to add a domain without touching Rust.

use rbd::ontology::{domains, parse_ontology};

fn load(name: &str) -> String {
    std::fs::read_to_string(format!("ontologies/{name}.ont"))
        .unwrap_or_else(|e| panic!("ontologies/{name}.ont: {e}"))
}

#[test]
fn shipped_domain_files_match_the_builtins() {
    for builtin in domains::all() {
        let parsed = parse_ontology(&load(&builtin.name)).expect(&builtin.name);
        assert!(parsed.validate().is_empty(), "{}", builtin.name);
        assert_eq!(parsed.len(), builtin.len(), "{}", builtin.name);
        assert_eq!(parsed.entity, builtin.entity);
        for (a, b) in parsed.object_sets.iter().zip(&builtin.object_sets) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cardinality, b.cardinality);
            assert_eq!(a.data_frame.keywords, b.data_frame.keywords);
            assert_eq!(a.data_frame.value_patterns, b.data_frame.value_patterns);
        }
        // And the rules compile.
        parsed.matching_rules().expect("rules compile");
    }
}

#[test]
fn rental_example_file_parses_and_compiles() {
    let rental = parse_ontology(&load("rental")).expect("rental.ont");
    assert!(rental.validate().is_empty());
    assert!(rental.record_identifying_fields().len() >= 3);
    rental.matching_rules().expect("rules compile");
}
