//! Robustness: the extractor must never panic, whatever the input, and must
//! behave sensibly at the edges of the paper's assumptions.

use rbd::prelude::*;
use rbd_core::DiscoveryError;
use rbd_prop::{check_cases, gen, prop_assert, Gen};

#[test]
fn adversarial_documents_do_not_panic() {
    let extractor = RecordExtractor::default();
    let cases: Vec<String> = vec![
        String::new(),
        "<".into(),
        ">".into(),
        "<><><>".into(),
        "</html>".into(),
        "<table>".repeat(500),
        "</td>".repeat(500),
        "<b>".repeat(2000),
        format!("<td>{}</td>", "<hr>".repeat(5000)),
        "plain text with no tags whatsoever".into(),
        "<!-- only a comment -->".into(),
        "<script>while(true){}</script>".into(),
        "<td>\u{0}\u{1}\u{2}binary garbage\u{fffd}</td>".into(),
        format!("<td>{}</td>", "é".repeat(10_000)),
        "<a b=c d='e' f=\"g\" h>".into(),
    ];
    for (i, case) in cases.iter().enumerate() {
        // Any Result is fine; a panic is not.
        let _ = extractor.discover(case);
        let _ = extractor.extract_records(case);
        let _ = i;
    }
}

#[test]
fn single_record_document_violates_assumption_gracefully() {
    // The paper assumes multiple records; one record with one separator
    // still yields *a* separator, not a crash.
    let extractor = RecordExtractor::default();
    let out = extractor.discover("<td><hr><b>Only one</b> record here</td>");
    assert!(out.is_ok() || matches!(out, Err(DiscoveryError::NoCandidates)));
}

#[test]
fn documents_without_tags_error_cleanly() {
    let extractor = RecordExtractor::default();
    assert!(matches!(
        extractor.discover("just words"),
        Err(DiscoveryError::EmptyDocument)
    ));
}

#[test]
fn deep_nesting_is_linear_not_fatal() {
    // 10k-deep nesting: must complete without stack overflow (the tag-tree
    // builder is iterative).
    let mut doc = String::new();
    for _ in 0..10_000 {
        doc.push_str("<div>");
    }
    doc.push_str("core");
    for _ in 0..10_000 {
        doc.push_str("</div>");
    }
    let tree = TagTreeBuilder::default().build(&doc);
    assert_eq!(tree.len(), 10_001);
}

/// Random tag soup never panics anywhere in the pipeline.
#[test]
fn discovery_total_on_tag_soup() {
    let piece = Gen::one_of(vec![
        Gen::just("<hr>".to_owned()),
        Gen::just("<b>".to_owned()),
        Gen::just("</b>".to_owned()),
        Gen::just("<td>".to_owned()),
        Gen::just("</td>".to_owned()),
        Gen::just("<!-- c -->".to_owned()),
        Gen::just("</stray>".to_owned()),
        gen::string_from(" abcdefghijklmnopqrstuvwxyz<>&", 0..=16),
    ]);
    let doc = gen::concat(piece, 0..=120);
    check_cases("discovery_total_on_tag_soup", 64, &doc, |doc: &String| {
        let extractor = RecordExtractor::default();
        if let Ok(extraction) = extractor.extract_records(doc) {
            // When extraction succeeds, the records must tile within the
            // document and be non-empty.
            for r in &extraction.records {
                prop_assert!(r.start < r.end);
                prop_assert!(r.end <= doc.len());
                prop_assert!(!r.text.is_empty());
            }
            // Records are ordered and non-overlapping.
            for w in extraction.records.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
        }
        Ok(())
    });
}

/// The discovered separator is always one of the candidate tags.
#[test]
fn separator_is_a_candidate() {
    let inputs = gen::int_in(2usize..12).zip(Gen::select(vec!["hr", "p", "br", "h4"]));
    check_cases(
        "separator_is_a_candidate",
        64,
        &inputs,
        |&(n_records, seps)| {
            let mut doc = String::from("<td>");
            for i in 0..n_records {
                doc.push_str(&format!("<{seps}><b>Record {i}</b> body text number {i} "));
            }
            doc.push_str("</td>");
            let extractor = RecordExtractor::default();
            let out = extractor
                .discover(&doc)
                .expect("multi-record documents discover");
            prop_assert!(
                out.candidates.iter().any(|c| c.name == out.separator),
                "separator {} not among candidates",
                out.separator
            );
            Ok(())
        },
    );
}

/// Seeded mutation fuzzing over all four corpus domains: random byte-level
/// edits to valid generated documents must never panic the governed
/// pipeline, and any success must respect the strict caps (the chaos suite
/// checks the adversarial generators; this property covers the gap between
/// "valid corpus page" and "garbage" at N >= 500 cases).
#[test]
fn mutated_corpus_documents_never_panic() {
    use rbd_corpus::adversarial::mutate_bytes;
    use rbd_corpus::Domain;

    let inputs = Gen::new(|rng: &mut rbd_prop::Rng| {
        let domain = Domain::ALL[rng.random_range(0usize..Domain::ALL.len())];
        let styles = rbd_corpus::sites::initial_sites(domain);
        let style = &styles[rng.random_range(0usize..styles.len())];
        let doc_index = rng.random_range(0usize..4);
        let doc = rbd_corpus::generate_document(style, domain, doc_index, 0xFACE_0FF5);
        let edits = rng.random_range(1usize..80);
        mutate_bytes(&doc.html, edits, rng)
    });
    let strict = RecordExtractor::new(ExtractorConfig::default().with_limits(Limits::strict()))
        .expect("strict config is valid");
    let default = RecordExtractor::default();
    check_cases("mutated_corpus_documents", 512, &inputs, |doc: &String| {
        // Default limits: any Result, no panic.
        let _ = default.extract_records(doc);
        // Strict limits: successes additionally fit the caps.
        if let Ok(extraction) = strict.extract_records(doc) {
            let caps = Limits::strict();
            prop_assert!(extraction.outcome.tree.len() <= caps.max_tree_nodes.unwrap());
            prop_assert!(extraction.outcome.candidates.len() <= caps.max_candidate_tags.unwrap());
        }
        Ok(())
    });
}
