//! Integration tests for the `rbd` command-line tool, driving the compiled
//! binary the way a user would.

use std::io::Write;
use std::process::{Command, Stdio};

const PAGE: &str = "<html><body><table><tr><td>\
  <hr><b>Ann B. Smith</b><br> died on May 1, 1998, age 90. Funeral at 10:00 a.m.\
  <hr><b>Bob C. Jones</b><br> died on May 2, 1998, age 81. Funeral at 11:00 a.m.\
  <hr><b>Cal D. Young</b><br> died on May 3, 1998, age 72. Funeral at 12:00 p.m.\
  <hr></td></tr></table></body></html>";

fn rbd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rbd"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = rbd()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // A broken pipe is fine: on argument errors the binary exits before
    // reading stdin, and losing that race must not fail the test.
    match child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
    {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("write stdin: {e}"),
    }
    let out = child.wait_with_output().expect("runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn discover_from_stdin() {
    let (stdout, stderr, ok) = run_with_stdin(&["discover", "--ontology", "obituary"], PAGE);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("separator: <hr>"), "{stdout}");
    assert!(stdout.contains("OM:"), "all heuristics reported\n{stdout}");
}

#[test]
fn discover_json_shape() {
    let (stdout, _, ok) = run_with_stdin(&["discover", "--json"], PAGE);
    assert!(ok);
    assert!(stdout.contains("\"separator\":\"hr\""), "{stdout}");
    assert!(stdout.contains("\"scored\":["), "{stdout}");
}

#[test]
fn extract_prints_three_records() {
    let (stdout, _, ok) = run_with_stdin(&["extract"], PAGE);
    assert!(ok);
    assert_eq!(stdout.matches("--- record ").count(), 3, "{stdout}");
    assert!(stdout.contains("Bob C. Jones"));
}

#[test]
fn pipeline_populates_database() {
    let (stdout, stderr, ok) = run_with_stdin(&["pipeline", "--ontology", "obituary"], PAGE);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("-- Deceased (3 rows)"), "{stdout}");
    assert!(stdout.contains("May 2, 1998"));
}

#[test]
fn pipeline_requires_ontology() {
    let (_, stderr, ok) = run_with_stdin(&["pipeline"], PAGE);
    assert!(!ok);
    assert!(stderr.contains("requires --ontology"), "{stderr}");
}

#[test]
fn check_classifies_record_list() {
    let (stdout, stderr, ok) = run_with_stdin(&["check", "--ontology", "obituary"], PAGE);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("class: multiple records"), "{stdout}");
    assert!(stdout.contains("estimated records:"), "{stdout}");
}

#[test]
fn check_without_ontology_uses_structure_only() {
    let (stdout, _, ok) = run_with_stdin(&["check"], PAGE);
    assert!(ok);
    assert!(stdout.contains("class: multiple records"), "{stdout}");
    assert!(stdout.contains("(no ontology)"), "{stdout}");
}

#[test]
fn tree_prints_outline() {
    let (stdout, _, ok) = run_with_stdin(&["tree"], PAGE);
    assert!(ok);
    assert!(stdout.starts_with("#root"), "{stdout}");
    assert!(stdout.contains("td"));
}

#[test]
fn ontology_file_flag() {
    let dir = std::env::temp_dir().join("rbd-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("mini.ont");
    std::fs::write(
        &path,
        "ontology mini entity Thing\n\
         object When one-to-one {\n    keyword \"died on\"\n}\n\
         object Age functional {\n    keyword \"age [0-9]+\"\n}\n\
         object At functional {\n    keyword \"funeral at\"\n}\n",
    )
    .expect("write ontology");
    let (stdout, stderr, ok) = run_with_stdin(
        &["discover", "--ontology-file", path.to_str().expect("utf8")],
        PAGE,
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("separator: <hr>"), "{stdout}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (_, stderr, ok) = run_with_stdin(&["discover", "--ontology", "nonsense"], PAGE);
    assert!(!ok);
    assert!(stderr.contains("unknown built-in ontology"));

    let (_, stderr, ok) = run_with_stdin(&["frobnicate"], PAGE);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (_, stderr, ok) = run_with_stdin(&["discover", "missing-file.html"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn trace_flag_writes_audit_trail() {
    let dir = std::env::temp_dir().join("rbd-cli-trace-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("trace.json");
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "discover",
            "--ontology",
            "obituary",
            "--trace",
            path.to_str().expect("utf8"),
        ],
        PAGE,
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("separator: <hr>"), "{stdout}");
    let trace = std::fs::read_to_string(&path).expect("trace written");
    // The winning subtree, every candidate with count and threshold, all
    // five heuristics with raw inputs, and the consensus all appear.
    assert!(trace.contains("\"subtree_chosen\""), "{trace}");
    assert!(trace.contains("\"candidates\""), "{trace}");
    assert!(trace.contains("\"threshold\": 0.1"), "{trace}");
    for h in ["OM", "RP", "SD", "IT", "HT"] {
        assert!(
            trace.contains(&format!("\"name\": \"{h}\"")),
            "{h}\n{trace}"
        );
    }
    assert!(trace.contains("\"estimate\""), "OM's raw input\n{trace}");
    assert!(trace.contains("\"consensus\""), "{trace}");
    assert!(trace.contains("\"spans\""), "{trace}");
    assert!(trace.contains("\"metrics\""), "{trace}");
}

#[test]
fn metrics_flag_prints_snapshot_to_stderr() {
    let (stdout, stderr, ok) = run_with_stdin(&["extract", "--metrics"], PAGE);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("--- record "), "{stdout}");
    assert!(stderr.contains("\"counters\""), "{stderr}");
    assert!(stderr.contains("\"extract_docs\": 1"), "{stderr}");
    assert!(stderr.contains("\"extract_tags_scanned\""), "{stderr}");
    assert!(stderr.contains("\"bounds_ns\""), "{stderr}");
}

#[test]
fn trace_flag_needs_a_path() {
    let (_, stderr, ok) = run_with_stdin(&["discover", "--trace"], PAGE);
    assert!(!ok);
    assert!(stderr.contains("--trace needs a path"), "{stderr}");
}

#[test]
fn empty_input_reports_error() {
    let (_, stderr, ok) = run_with_stdin(&["discover"], "");
    assert!(!ok);
    assert!(stderr.contains("no tags"), "{stderr}");
}

#[test]
fn batch_json_reports_typed_error_entries() {
    let dir = std::env::temp_dir().join(format!("rbd-cli-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("good.html");
    let bad = dir.join("bad.html");
    std::fs::write(&good, PAGE).expect("write good");
    std::fs::write(&bad, "no tags at all").expect("write bad");

    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "batch",
            good.to_str().expect("utf-8 path"),
            bad.to_str().expect("utf-8 path"),
            "--json",
        ],
        "",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("\"records\":3"), "{stdout}");
    // The failing document yields a typed error object, not a bare string.
    assert!(
        stdout.contains("\"error\":{\"kind\":\"discovery\""),
        "{stdout}"
    );
    assert!(stdout.contains("document contains no tags"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end store path: a cold `rbd batch --store` run reports misses
/// and populates the log, the identical warm run reports hits with the
/// same per-document JSON shape, and `rbd query` answers over the
/// persisted relations.
#[test]
fn batch_store_caches_and_query_answers() {
    let dir = std::env::temp_dir().join(format!("rbd-cli-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("good.html");
    let bad = dir.join("bad.html");
    let store = dir.join("out.rbd");
    std::fs::write(&good, PAGE).expect("write good");
    std::fs::write(&bad, "no tags at all").expect("write bad");
    let args = [
        "batch",
        good.to_str().expect("utf-8 path"),
        bad.to_str().expect("utf-8 path"),
        "--store",
        store.to_str().expect("utf-8 path"),
        "--json",
    ];

    // Cold: everything misses; the failing document's error entry carries
    // its cache status too.
    let (stdout, stderr, ok) = run_with_stdin(&args, "");
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("\"records\":3") && stdout.contains("\"cache\":\"miss\""),
        "{stdout}"
    );
    assert!(!stdout.contains("\"cache\":\"hit\""), "{stdout}");
    assert!(
        stdout.contains("\"error\":{\"kind\":\"discovery\""),
        "{stdout}"
    );

    // Warm: the good document replays from the store; the failing one can
    // never be cached and misses again.
    let (stdout, stderr, ok) = run_with_stdin(&args, "");
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("\"records\":3") && stdout.contains("\"cache\":\"hit\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"cache\":\"miss\""), "{stdout}");

    // Query the persisted store: count, projection, and a text filter.
    let store_path = store.to_str().expect("utf-8 path");
    let (stdout, stderr, ok) =
        run_with_stdin(&["query", store_path, "select count(*) from records"], "");
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "1", "{stdout}");

    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "query",
            store_path,
            "select text from record_texts where text contains 'Bob' limit 1",
        ],
        "",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Bob C. Jones"), "{stdout}");

    // Typed failure on a corrupt store file, not a panic.
    let corrupt = dir.join("corrupt.rbd");
    std::fs::write(&corrupt, b"RBDSTOREgarbage-not-a-frame").expect("write corrupt");
    let (_, stderr, ok) = run_with_stdin(
        &[
            "query",
            corrupt.to_str().expect("utf-8 path"),
            "select count(*) from records",
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("corrupt"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end `rbd serve`: boot on an ephemeral port, extract over HTTP,
/// shut down gracefully via the admin endpoint, and check the exit report.
#[test]
fn serve_subcommand_extracts_and_shuts_down() {
    use std::io::{BufRead, BufReader, Read};

    let mut child = rbd()
        .args(["serve", "--port", "0", "--jobs", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    let talk = |raw: &[u8]| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("client timeout");
        std::io::Write::write_all(&mut stream, raw).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    };

    let request = format!(
        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{PAGE}",
        PAGE.len()
    );
    let response = talk(request.as_bytes());
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("\"separator\":\"hr\""), "{response}");

    let health = talk(b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let bye = talk(b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(bye.starts_with("HTTP/1.1 200"), "{bye}");

    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve exited non-zero");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain stderr");
    assert!(rest.contains("drained"), "{rest}");
}
