//! Fidelity test on the paper's Figure 2 document.
//!
//! The paper elides most record prose with "…"; this fixture fills the
//! gaps while preserving every structural property the paper states:
//! the tag-tree shape, the candidate tags (`hr` 4×, `b` 8×, `br` 5×; `h1`
//! irrelevant), each heuristic's ranking from the §5.3 worked example, and
//! the final ORSIH certainties (99.96 %, 64.75 %, 56.34 %).

use rbd::prelude::*;
use rbd_certainty::CompoundHeuristic;
use rbd_heuristics::view::DEFAULT_CANDIDATE_THRESHOLD;
use rbd_ontology::domains;

/// The Figure 2(a) document with the paper's ellipses expanded.
fn figure2_document() -> String {
    // Record text lengths are chosen so the SD heuristic reproduces the
    // paper's ordering: hr intervals nearly equal, b intervals moderately
    // spread, br intervals widely spread.
    let mut d = String::new();
    d.push_str("<html><head><title>Classifieds</title></head>\n");
    d.push_str("<body bgcolor=\"#FFFFFF\">\n");
    d.push_str("<table><tr><td>\n");
    d.push_str("<h1 align=\"left\">Funeral Notices - </h1> October 1, 1998\n");
    d.push_str("<hr>\n");
    d.push_str(
        "<b>Lemar K. Adamson</b><br> died on September 30, 1998. Lemar was born on \
         September 5, 1913 in Provo and was a faithful member of his church all his days. \
         Services will be held Saturday at the \
         <b>MEMORIAL CHAPEL</b>, where friends may call one hour prior. <br>\n",
    );
    d.push_str("<hr>\n");
    d.push_str(
        "Our beloved <b>Brian Fielding Frost</b>, age 41, passed away on September 30, \
         1998, after a courageous battle. A viewing will be \
         held at 7 p.m. in the <b>Howard Stake Center</b>, under the direction of \
         <b>Carrillo's Tucson Mortuary</b>, with interment at \
         Holy Hope Cemetery<br>, on Tuesday morning.\n",
    );
    d.push_str("<hr>\n");
    d.push_str(
        "<b>Leonard Kenneth Gunther</b><br> passed away on September 30, 1998. \
         Friends may visit at <b>HEATHER MORTUARY</b>, Monday evening. Funeral services \
         will be held at 11:00 a.m. at <b>HEATHER MORTUARY</b>, on \
         Tuesday, October 6, 1998. Interment follows.<br>\n",
    );
    d.push_str("<hr>\n");
    d.push_str("</td></tr></table>\nAll material is copyrighted.\n</body>\n</html>\n");
    d
}

#[test]
fn tag_tree_matches_figure_2b() {
    let tree = TagTreeBuilder::default().build(&figure2_document());
    let expected = "#root\n  html\n    head\n      title\n    body\n      table\n        tr\n          td\n            h1\n            hr\n            b\n            br\n            b\n            br\n            hr\n            b\n            b\n            b\n            br\n            hr\n            b\n            br\n            b\n            b\n            br\n            hr\n";
    assert_eq!(tree.outline(), expected);
}

#[test]
fn candidates_match_section_3() {
    let tree = TagTreeBuilder::default().build(&figure2_document());
    let td = tree.highest_fanout();
    assert_eq!(tree.name(td), "td");
    assert_eq!(tree.node(td).fanout(), 18);
    let cands = tree.candidate_tags(td, DEFAULT_CANDIDATE_THRESHOLD);
    let as_pairs: Vec<(&str, usize)> = cands.iter().map(|c| (c.name.as_str(), c.count)).collect();
    assert_eq!(as_pairs, vec![("hr", 4), ("b", 8), ("br", 5)]);
}

#[test]
fn heuristic_rankings_match_section_5_3() {
    let doc = figure2_document();
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(domains::obituaries()))
            .unwrap();
    let outcome = extractor.discover(&doc).unwrap();
    let by_kind = |k: HeuristicKind| {
        outcome
            .rankings
            .iter()
            .find(|r| r.kind == k)
            .unwrap_or_else(|| panic!("{k} abstained"))
            .to_paper_string()
    };
    assert_eq!(by_kind(HeuristicKind::OM), "OM: [(hr, 1), (br, 2), (b, 3)]");
    assert_eq!(by_kind(HeuristicKind::RP), "RP: [(hr, 1), (br, 2), (b, 3)]");
    assert_eq!(by_kind(HeuristicKind::SD), "SD: [(hr, 1), (b, 2), (br, 3)]");
    assert_eq!(by_kind(HeuristicKind::IT), "IT: [(hr, 1), (br, 2), (b, 3)]");
    assert_eq!(by_kind(HeuristicKind::HT), "HT: [(b, 1), (br, 2), (hr, 3)]");
}

#[test]
fn compound_certainties_match_section_5_3() {
    let doc = figure2_document();
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(domains::obituaries()))
            .unwrap();
    let outcome = extractor.discover(&doc).unwrap();
    assert_eq!(outcome.separator, "hr");

    // Recombine to inspect the certainty values the paper prints:
    // ORSIH: [(hr, 99.96%), (b, 64.75%), (br, 56.34%)]
    let consensus = CompoundHeuristic::paper_orsih().combine(&outcome.rankings);
    let rounded: Vec<(String, f64)> = consensus
        .scored
        .iter()
        .map(|s| {
            (
                s.tag.clone(),
                (s.certainty.percent() * 100.0).round() / 100.0,
            )
        })
        .collect();
    assert_eq!(
        rounded,
        vec![
            ("hr".to_owned(), 99.96),
            ("b".to_owned(), 64.75),
            ("br".to_owned(), 56.34),
        ]
    );
}

#[test]
fn records_chunk_into_three_obituaries() {
    let doc = figure2_document();
    let extractor = RecordExtractor::default();
    let extraction = extractor.extract_records(&doc).unwrap();
    assert_eq!(extraction.records.len(), 3);
    assert!(extraction.records[0].text.contains("Lemar K. Adamson"));
    assert!(extraction.records[1].text.contains("Brian Fielding Frost"));
    assert!(extraction.records[2]
        .text
        .contains("Leonard Kenneth Gunther"));
    let preamble = extraction.preamble.expect("heading preamble");
    assert!(preamble.text.contains("Funeral Notices"));
}
