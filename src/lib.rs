//! # rbd — Record-Boundary Discovery in Web Documents
//!
//! Umbrella crate for the full reproduction of *Record-Boundary Discovery in
//! Web Documents* (D.W. Embley, Y. Jiang, Y.-K. Ng; SIGMOD 1999). It
//! re-exports every subsystem so downstream users depend on a single crate:
//!
//! * [`html`] — from-scratch HTML tokenizer,
//! * [`tagtree`] — Appendix-A tag-tree construction and fan-out analysis,
//! * [`pattern`] — the regular-expression engine behind data frames,
//! * [`ontology`] — application ontologies and matching-rule generation,
//! * [`heuristics`] — the five ranking heuristics (HT, IT, SD, RP, OM),
//! * [`certainty`] — Stanford certainty theory and compound heuristics,
//! * [`core`] — the Record Extractor (discovery + chunking),
//! * [`recognizer`] — constant/keyword recognition (Data-Record Table),
//! * [`db`] — in-memory relational database and instance generator,
//! * [`corpus`] — synthetic web-document corpus,
//! * [`eval`] — the experiment harness reproducing the paper's tables,
//! * [`trace`] — tracing, metrics, and the decision audit trail,
//! * [`pipeline`] — concurrent batch-extraction engine (bounded queues,
//!   work stealing, load shedding),
//! * [`serve`] — fault-tolerant long-lived HTTP extraction service
//!   (socket deadlines, load shedding, graceful drain),
//! * [`store`] — crash-safe persistent record store with a content-hash
//!   extraction cache,
//! * [`report`] — stable machine-readable shapes for CLI output.
//!
//! ## Quickstart
//!
//! ```
//! use rbd::prelude::*;
//!
//! let html = "<html><body><table><tr><td>\
//!     <hr><b>A. Person</b><br> died on January 1, 1998.\
//!     <hr><b>B. Person</b><br> died on January 2, 1998.\
//!     <hr><b>C. Person</b><br> died on January 3, 1998.\
//!     <hr></td></tr></table></body></html>";
//!
//! let extractor = RecordExtractor::new(ExtractorConfig::default()).unwrap();
//! let outcome = extractor.discover(html).unwrap();
//! assert_eq!(outcome.separator.as_str(), "hr");
//! ```

#![forbid(unsafe_code)]

pub use rbd_certainty as certainty;
pub use rbd_core as core;
pub use rbd_corpus as corpus;
pub use rbd_db as db;
pub use rbd_eval as eval;
pub use rbd_heuristics as heuristics;
pub use rbd_html as html;
pub use rbd_limits as limits;
pub use rbd_ontology as ontology;
pub use rbd_pattern as pattern;
pub use rbd_pipeline as pipeline;
pub use rbd_recognizer as recognizer;
pub use rbd_serve as serve;
pub use rbd_store as store;
pub use rbd_tagtree as tagtree;
pub use rbd_trace as trace;

pub mod report;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use rbd_certainty::{CertaintyFactor, CertaintyTable, CompoundHeuristic, HeuristicSet};
    pub use rbd_core::{
        DegradationEvent, DegradationStage, DiscoveryError, DiscoveryOutcome, ExtractorConfig,
        Limits, RecordExtractor,
    };
    pub use rbd_heuristics::{Heuristic, HeuristicKind, Ranking};
    pub use rbd_html::tokenize;
    pub use rbd_ontology::Ontology;
    pub use rbd_pipeline::{run_batch, BatchConfig, BatchReport};
    pub use rbd_tagtree::{TagTree, TagTreeBuilder};
    pub use rbd_trace::{CollectingSink, NullSink, TraceEvent, TraceSink};
}
