//! `rbd` — command-line record-boundary discovery and extraction.
//!
//! ```text
//! rbd discover [FILE] [--ontology NAME|--ontology-file PATH] [--json]
//! rbd extract  [FILE] [--ontology NAME|--ontology-file PATH] [--json]
//! rbd pipeline [FILE] --ontology NAME|--ontology-file PATH   [--json]
//! rbd check    [FILE] [--ontology NAME|--ontology-file PATH]
//! rbd tree     [FILE]
//! rbd batch    FILE... [--jobs N] [--json] [--store FILE]
//! rbd query    STORE EXPR...
//! ```
//!
//! `FILE` defaults to standard input (except `batch`, which takes one or
//! more files). `--ontology` accepts the four built-in domain names
//! (`obituary`, `car-ad`, `job-ad`, `course`); `--ontology-file` loads the
//! `rbd_ontology::dsl` text format, so new domains need no recompilation.
//! `batch` runs every file through the concurrent extraction pipeline
//! (`rbd-pipeline`) on `--jobs` workers and reports per-document results in
//! input order.

#![forbid(unsafe_code)]

use rbd::core::{check_assumptions, ExtractorConfig, RecordExtractor};
use rbd::db::InstanceGenerator;
use rbd::ontology::{domains, parse_ontology, Ontology};
use rbd::recognizer::Recognizer;
use rbd::tagtree::TagTreeBuilder;
use rbd::trace::CollectingSink;
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: rbd <discover|extract|pipeline|check|tree> [FILE]
           [--ontology obituary|car-ad|job-ad|course]
           [--ontology-file PATH] [--json] [--xml]
           [--trace PATH] [--metrics]
       rbd batch FILE... [--jobs N] [--json] [--metrics] [--store FILE]
       rbd serve [--addr HOST:PORT | --port N] [--jobs N] [--metrics]
                 [--trace-dir DIR] [--slow-ms N] [--store FILE]
       rbd query STORE EXPR...

Reads HTML from FILE (or stdin) and:
  discover   print the consensus record separator and heuristic rankings
  extract    print the cleaned record chunks
  pipeline   populate and dump the relational database (needs an ontology)
  check      verify the paper's assumptions (multiple records present?)
  tree       print the document's tag tree
  batch      extract every FILE concurrently on --jobs workers (default 4)
             and print one result line per document, in input order
  serve      run the long-lived extraction service (default 127.0.0.1:8080)
             on --jobs workers: POST /extract, GET /healthz, GET /metrics,
             POST /shutdown; drains gracefully on shutdown
  query      run a select expression over a persisted record store, e.g.
             rbd query out.rbd \"select * from records where separator = 'hr'\"
             (relations: records, record_texts; also count(*), order by,
             limit, contains, < >, is [not] null)

Persistence:
  --store FILE  (batch, serve) open FILE as the crash-safe record store
                and use it as a content-hash extraction cache: documents
                whose bytes are already committed are served from disk
                (cache hit) and fresh extractions are committed back

Observability:
  --trace PATH  write the decision audit trail (events, spans, metrics)
                of the run to PATH as JSON; the file embeds a
                `traceEvents` array, so Perfetto loads it directly
  --metrics     print the counter/histogram snapshot to stderr (for
                batch: the merged per-worker pipeline metrics)
  --trace-dir DIR  (serve) write each request's span tree to
                DIR/trace-<id>.json in Chrome trace-event format and slow
                captures to DIR/slow.jsonl
  --slow-ms N   (serve) keep the span tree and audit events of requests
                slower than N milliseconds in the bounded slow log";

struct Args {
    command: String,
    files: Vec<String>,
    ontology: Option<Ontology>,
    jobs: usize,
    json: bool,
    xml: bool,
    trace: Option<String>,
    trace_dir: Option<String>,
    slow_ms: Option<u64>,
    metrics: bool,
    addr: Option<String>,
    store: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or(USAGE)?;
    if matches!(command.as_str(), "-h" | "--help") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let mut args = Args {
        command,
        files: Vec::new(),
        ontology: None,
        jobs: 4,
        json: false,
        xml: false,
        trace: None,
        trace_dir: None,
        slow_ms: None,
        metrics: false,
        addr: None,
        store: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--ontology" => {
                let name = argv.next().ok_or("--ontology needs a name")?;
                args.ontology = Some(match name.as_str() {
                    "obituary" | "obituaries" => domains::obituaries(),
                    "car-ad" | "car-ads" | "cars" => domains::car_ads(),
                    "job-ad" | "job-ads" | "jobs" => domains::job_ads(),
                    "course" | "courses" => domains::courses(),
                    other => return Err(format!("unknown built-in ontology `{other}`")),
                });
            }
            "--ontology-file" => {
                let path = argv.next().ok_or("--ontology-file needs a path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let ontology = parse_ontology(&text).map_err(|e| format!("{path}: {e}"))?;
                let problems = ontology.validate();
                if !problems.is_empty() {
                    return Err(format!("{path}: {}", problems.join("; ")));
                }
                args.ontology = Some(ontology);
            }
            "--json" => args.json = true,
            "--xml" => args.xml = true,
            "--trace" => args.trace = Some(argv.next().ok_or("--trace needs a path")?),
            "--trace-dir" => {
                args.trace_dir = Some(argv.next().ok_or("--trace-dir needs a directory")?);
            }
            "--slow-ms" => {
                let n = argv.next().ok_or("--slow-ms needs a millisecond count")?;
                args.slow_ms =
                    Some(n.parse::<u64>().map_err(|_| {
                        format!("--slow-ms needs a non-negative integer, got `{n}`")
                    })?);
            }
            "--metrics" => args.metrics = true,
            "--store" => args.store = Some(argv.next().ok_or("--store needs a file path")?),
            "--addr" => {
                args.addr = Some(argv.next().ok_or("--addr needs HOST:PORT")?);
            }
            "--port" => {
                let p = argv.next().ok_or("--port needs a port number")?;
                let port = p
                    .parse::<u16>()
                    .map_err(|_| format!("--port needs a port number, got `{p}`"))?;
                args.addr = Some(format!("127.0.0.1:{port}"));
            }
            "--jobs" => {
                let n = argv.next().ok_or("--jobs needs a worker count")?;
                args.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{n}`"))?;
            }
            other if !other.starts_with('-') => {
                // `batch` takes many files; `query` takes a store path
                // followed by the (possibly unquoted) expression words.
                if args.files.is_empty() || matches!(args.command.as_str(), "batch" | "query") {
                    args.files.push(other.to_owned());
                } else {
                    return Err(format!(
                        "only `batch` and `query` accept multiple arguments (second was `{other}`)"
                    ));
                }
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn read_input(file: Option<&str>) -> Result<String, String> {
    match file {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buf)
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes `text` to stdout, ignoring errors — `rbd … | head` must not
/// panic when the pipe closes early.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Writes the sink's collected trace to `path` (when `--trace` was given)
/// and its metrics snapshot to stderr (when `--metrics` was given).
fn finish_observability(
    sink: Option<&Arc<CollectingSink>>,
    trace_path: Option<&str>,
    metrics: bool,
) -> Result<(), String> {
    let Some(sink) = sink else { return Ok(()) };
    if let Some(path) = trace_path {
        let json = sink.trace_json().to_pretty();
        std::fs::write(path, json.as_bytes()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if metrics {
        eprintln!("{}", sink.registry_snapshot().to_pretty());
    }
    Ok(())
}

/// `rbd batch FILE... --jobs N`: runs every file through the concurrent
/// pipeline and appends one line (or JSON object) per document to `out`,
/// in input order. Returns the merged pipeline metrics snapshot.
fn run_batch_files(
    args: &Args,
    extractor: &RecordExtractor,
    sink: Option<&Arc<CollectingSink>>,
    out: &mut String,
) -> Result<rbd::trace::RegistrySnapshot, String> {
    if args.files.is_empty() {
        return Err("batch requires at least one FILE argument".to_owned());
    }
    let mut docs = Vec::with_capacity(args.files.len());
    for (id, path) in (0u64..).zip(&args.files) {
        let html = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        docs.push((id, html));
    }
    let trace_sink: Arc<dyn rbd::trace::TraceSink> = match sink {
        Some(s) => Arc::clone(s) as Arc<dyn rbd::trace::TraceSink>,
        None => Arc::new(rbd::trace::NullSink),
    };
    let config = rbd::pipeline::BatchConfig::with_jobs(args.jobs);
    if let Some(store_path) = &args.store {
        return run_batch_files_stored(
            args,
            extractor,
            &config,
            &trace_sink,
            store_path,
            docs,
            out,
        );
    }
    let report = rbd::pipeline::run_batch(extractor, docs, &config, &trace_sink)
        .map_err(|e| e.to_string())?;

    let mut lines = Vec::with_capacity(report.results.len());
    for result in &report.results {
        let path = args
            .files
            .get(usize::try_from(result.doc_id).unwrap_or(usize::MAX))
            .map_or("?", String::as_str);
        lines.push(if args.json {
            // Typed entries (rbd::report): failures carry an `"error"`
            // object with a `kind` discriminant (`discovery`/`shed`/
            // `panic`) instead of a bare string.
            rbd::report::batch_entry_json(path, &result.outcome).to_string()
        } else {
            match &result.outcome {
                Ok(extraction) => format!(
                    "{path}: {} records (separator <{}>)",
                    extraction.records.len(),
                    extraction.outcome.separator
                ),
                Err(e) => format!("{path}: error: {e}"),
            }
        });
    }
    if args.json {
        let _ = writeln!(out, "[{}]", lines.join(","));
    } else {
        for line in &lines {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "{} docs, {} succeeded, {} shed, {} strict-limited, {} workers",
            report.results.len(),
            report.succeeded(),
            report.shed,
            report.strict,
            args.jobs
        );
    }
    Ok(report.metrics)
}

/// The `rbd batch --store FILE` arm: same per-document output contract as
/// a plain batch, plus a `cache` field (`hit`/`miss`) on every entry and
/// typed `store_error` objects when a committed frame failed to read back.
fn run_batch_files_stored(
    args: &Args,
    extractor: &RecordExtractor,
    config: &rbd::pipeline::BatchConfig,
    trace_sink: &Arc<dyn rbd::trace::TraceSink>,
    store_path: &str,
    docs: Vec<(u64, String)>,
    out: &mut String,
) -> Result<rbd::trace::RegistrySnapshot, String> {
    let mut store = rbd::store::Store::open(store_path)
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;
    let docs: Vec<(u64, Option<String>, String)> = docs
        .into_iter()
        .map(|(id, html)| {
            let source = args
                .files
                .get(usize::try_from(id).unwrap_or(usize::MAX))
                .cloned();
            (id, source, html)
        })
        .collect();
    let report = rbd::pipeline::run_batch_stored(extractor, docs, config, trace_sink, &mut store)
        .map_err(|e| e.to_string())?;
    if let Some(e) = &report.write_error {
        eprintln!(
            "warning: store commit to {store_path} failed ({e}); results are complete but uncached"
        );
    }

    let mut lines = Vec::with_capacity(report.results.len());
    for result in &report.results {
        let path = args
            .files
            .get(usize::try_from(result.doc_id).unwrap_or(usize::MAX))
            .map_or("?", String::as_str);
        lines.push(if args.json {
            rbd::report::cached_batch_entry_json(path, result).to_string()
        } else {
            match &result.outcome {
                Ok(stored) => format!(
                    "{path}: {} records (separator <{}>) [cache {}]",
                    stored.records.len(),
                    stored.separator,
                    result.cache.as_str()
                ),
                Err(e) => format!("{path}: error: {e}"),
            }
        });
    }
    if args.json {
        let _ = writeln!(out, "[{}]", lines.join(","));
    } else {
        for line in &lines {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "{} docs, {} succeeded, {} cache hits, {} misses, {} shed, {} workers; store {} ({} docs)",
            report.results.len(),
            report.results.iter().filter(|r| r.outcome.is_ok()).count(),
            report.hits,
            report.misses,
            report.shed,
            args.jobs,
            store_path,
            store.len()
        );
    }
    Ok(report.metrics)
}

/// `rbd query STORE EXPR...`: loads the persisted records into the
/// relational layer and runs one select expression over them.
fn run_query(args: &Args, out: &mut String) -> Result<(), String> {
    let store_path = args
        .files
        .first()
        .ok_or("query needs a STORE file and an expression")?;
    let text = args.files[1..].join(" ");
    if text.trim().is_empty() {
        return Err(
            "query needs an expression, e.g. rbd query out.rbd \"select * from records\""
                .to_owned(),
        );
    }
    let mut store = rbd::store::Store::open(store_path)
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;
    let db = store
        .load_database()
        .map_err(|e| format!("store {store_path}: {e}"))?;
    let expr = rbd::db::expr::parse(&text).map_err(|e| e.to_string())?;
    match rbd::db::expr::run(&db, &expr).map_err(|e| e.to_string())? {
        rbd::db::ResultSet::Count(n) => {
            if args.json {
                let _ = writeln!(out, "{{\"count\":{n}}}");
            } else {
                let _ = writeln!(out, "{n}");
            }
        }
        rbd::db::ResultSet::Rows { columns, rows } => {
            if args.json {
                let objects: Vec<String> = rows
                    .iter()
                    .map(|row| {
                        let fields: Vec<String> = columns
                            .iter()
                            .zip(row)
                            .map(|(c, v)| match v {
                                Some(v) => {
                                    format!("\"{}\":\"{}\"", json_escape(c), json_escape(v))
                                }
                                None => format!("\"{}\":null", json_escape(c)),
                            })
                            .collect();
                        format!("{{{}}}", fields.join(","))
                    })
                    .collect();
                let _ = writeln!(out, "[{}]", objects.join(","));
            } else {
                let _ = writeln!(out, "{}", columns.join("\t"));
                for row in &rows {
                    let cells: Vec<&str> =
                        row.iter().map(|v| v.as_deref().unwrap_or("NULL")).collect();
                    let _ = writeln!(out, "{}", cells.join("\t"));
                }
            }
        }
    }
    Ok(())
}

/// `rbd serve`: runs the fault-tolerant extraction service until it is
/// told to stop (`POST /shutdown`), then reports the drain outcome.
fn run_serve(args: &Args, sink: Option<&Arc<CollectingSink>>) -> Result<(), String> {
    let config = rbd::serve::ServeConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        workers: args.jobs,
        trace_dir: args.trace_dir.clone().map(std::path::PathBuf::from),
        slow_threshold: args.slow_ms.map(std::time::Duration::from_millis),
        store: args.store.clone().map(std::path::PathBuf::from),
        ..rbd::serve::ServeConfig::default()
    };
    let audit: Option<Arc<dyn rbd::trace::TraceSink>> =
        sink.map(|s| Arc::clone(s) as Arc<dyn rbd::trace::TraceSink>);
    let server = rbd::serve::Server::bind(config, audit).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("rbd serve: listening on {addr} ({} workers)", args.jobs);
    eprintln!(
        "rbd serve: POST /extract | GET /healthz | GET /metrics (Prometheus) | GET /metrics.json | POST /shutdown"
    );
    let report = server.run();
    eprintln!(
        "rbd serve: drained {} in-flight, {} abandoned, {} worker panics",
        report.drained, report.abandoned, report.worker_panics
    );
    if args.metrics {
        eprintln!("{}", report.metrics.to_json().to_pretty());
    }
    finish_observability(sink, args.trace.as_deref(), false)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut out = String::new();

    let sink: Option<Arc<CollectingSink>> =
        (args.trace.is_some() || args.metrics).then(|| Arc::new(CollectingSink::new()));

    if args.command == "serve" {
        return run_serve(&args, sink.as_ref());
    }

    if args.command == "query" {
        run_query(&args, &mut out)?;
        emit(&out);
        return Ok(());
    }

    if args.command == "tree" {
        let html = read_input(args.files.first().map(String::as_str))?;
        let builder = if args.xml {
            TagTreeBuilder::default().xml()
        } else {
            TagTreeBuilder::default()
        };
        emit(&builder.build(&html).outline());
        return finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics);
    }

    let mut config = ExtractorConfig::default();
    if args.xml {
        config = config.xml();
    }
    if let Some(ontology) = args.ontology.clone() {
        config = config.with_ontology(ontology);
    }
    if let Some(sink) = &sink {
        config = config.with_sink(Arc::clone(sink) as Arc<dyn rbd::trace::TraceSink>);
    }

    if args.command == "batch" {
        let extractor = RecordExtractor::new(config).map_err(|e| e.to_string())?;
        let pool_metrics = run_batch_files(&args, &extractor, sink.as_ref(), &mut out)?;
        emit(&out);
        if args.metrics {
            // Merge the pool's per-worker registries with the extraction
            // metrics the workers recorded through the shared sink, so
            // `--metrics` shows one snapshot for the whole batch.
            let mut merged = rbd::trace::Registry::new();
            merged.merge(&pool_metrics);
            if let Some(sink) = &sink {
                merged.merge(&sink.registry().typed_snapshot());
            }
            eprintln!("{}", merged.snapshot().to_pretty());
        }
        return finish_observability(sink.as_ref(), args.trace.as_deref(), false);
    }

    let html = read_input(args.files.first().map(String::as_str))?;

    if args.command == "check" {
        let report = check_assumptions(&html, &config).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "class: {}", report.class);
        let _ = writeln!(out, "max fan-out: {}", report.max_fanout);
        let _ = writeln!(out, "candidate tags: {}", report.candidate_count);
        match report.estimated_records {
            Some(est) => {
                let _ = writeln!(out, "estimated records: {est:.1}");
            }
            None => {
                let _ = writeln!(out, "estimated records: (no ontology)");
            }
        }
        emit(&out);
        return finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics);
    }

    let extractor = RecordExtractor::new(config).map_err(|e| e.to_string())?;

    match args.command.as_str() {
        "discover" => {
            let outcome = extractor.discover(&html).map_err(|e| e.to_string())?;
            if args.json {
                let scored: Vec<String> = outcome
                    .consensus
                    .scored
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"tag\":\"{}\",\"certainty\":{:.6}}}",
                            json_escape(&s.tag),
                            s.certainty.value()
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"separator\":\"{sep}\",\"subtree\":\"{sub}\",\"candidates\":{n},\"scored\":[{scored}]}}",
                    sep = json_escape(&outcome.separator),
                    sub = json_escape(&outcome.subtree_tag),
                    n = outcome.candidates.len(),
                    scored = scored.join(",")
                );
            } else {
                let _ = writeln!(out, "highest-fan-out subtree: <{}>", outcome.subtree_tag);
                for ranking in &outcome.rankings {
                    let _ = writeln!(out, "{}", ranking.to_paper_string());
                }
                for s in &outcome.consensus.scored {
                    let _ = writeln!(out, "  {:<6} {}", s.tag, s.certainty);
                }
                let _ = writeln!(out, "separator: <{}>", outcome.separator);
            }
        }
        "extract" => {
            let extraction = extractor
                .extract_records(&html)
                .map_err(|e| e.to_string())?;
            if args.json {
                let records: Vec<String> = extraction
                    .records
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"start\":{},\"end\":{},\"text\":\"{}\"}}",
                            r.start,
                            r.end,
                            json_escape(&r.text)
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"separator\":\"{}\",\"records\":[{}]}}",
                    json_escape(&extraction.outcome.separator),
                    records.join(",")
                );
            } else {
                for (i, r) in extraction.records.iter().enumerate() {
                    let _ = writeln!(out, "--- record {i} ---");
                    let _ = writeln!(out, "{}", r.text);
                }
            }
        }
        "pipeline" => {
            let ontology = args
                .ontology
                .ok_or("pipeline requires --ontology or --ontology-file")?;
            let extraction = extractor
                .extract_records(&html)
                .map_err(|e| e.to_string())?;
            let recognizer = Recognizer::new(&ontology).map_err(|e| e.to_string())?;
            let tables: Vec<_> = extraction
                .records
                .iter()
                .map(|r| recognizer.recognize(&r.text))
                .collect();
            let db = InstanceGenerator::new(&ontology).populate(&tables);
            if args.json {
                // One object per entity row.
                let entity = db.table(&db.scheme().entity_relation).expect("entity");
                let cols: Vec<&str> = entity
                    .relation()
                    .columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect();
                let rows: Vec<String> = entity
                    .rows()
                    .iter()
                    .map(|row| {
                        let fields: Vec<String> = cols
                            .iter()
                            .zip(row)
                            .map(|(c, v)| match v {
                                Some(v) => {
                                    format!("\"{}\":\"{}\"", json_escape(c), json_escape(v))
                                }
                                None => format!("\"{}\":null", json_escape(c)),
                            })
                            .collect();
                        format!("{{{}}}", fields.join(","))
                    })
                    .collect();
                let _ = writeln!(out, "[{}]", rows.join(","));
            } else {
                let _ = write!(out, "{db}");
            }
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    emit(&out);
    finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
