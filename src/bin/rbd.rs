//! `rbd` — command-line record-boundary discovery and extraction.
//!
//! ```text
//! rbd discover [FILE] [--ontology NAME|--ontology-file PATH] [--json]
//! rbd extract  [FILE] [--ontology NAME|--ontology-file PATH] [--json]
//! rbd pipeline [FILE] --ontology NAME|--ontology-file PATH   [--json]
//! rbd check    [FILE] [--ontology NAME|--ontology-file PATH]
//! rbd tree     [FILE]
//! ```
//!
//! `FILE` defaults to standard input. `--ontology` accepts the four built-in
//! domain names (`obituary`, `car-ad`, `job-ad`, `course`); `--ontology-file`
//! loads the `rbd_ontology::dsl` text format, so new domains need no
//! recompilation.

#![forbid(unsafe_code)]

use rbd::core::{check_assumptions, ExtractorConfig, RecordExtractor};
use rbd::db::InstanceGenerator;
use rbd::ontology::{domains, parse_ontology, Ontology};
use rbd::recognizer::Recognizer;
use rbd::tagtree::TagTreeBuilder;
use rbd::trace::CollectingSink;
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: rbd <discover|extract|pipeline|check|tree> [FILE]
           [--ontology obituary|car-ad|job-ad|course]
           [--ontology-file PATH] [--json] [--xml]
           [--trace PATH] [--metrics]

Reads HTML from FILE (or stdin) and:
  discover   print the consensus record separator and heuristic rankings
  extract    print the cleaned record chunks
  pipeline   populate and dump the relational database (needs an ontology)
  check      verify the paper's assumptions (multiple records present?)
  tree       print the document's tag tree

Observability:
  --trace PATH  write the decision audit trail (events, spans, metrics)
                of the run to PATH as JSON
  --metrics     print the counter/histogram snapshot to stderr";

struct Args {
    command: String,
    file: Option<String>,
    ontology: Option<Ontology>,
    json: bool,
    xml: bool,
    trace: Option<String>,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or(USAGE)?;
    if matches!(command.as_str(), "-h" | "--help") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    let mut args = Args {
        command,
        file: None,
        ontology: None,
        json: false,
        xml: false,
        trace: None,
        metrics: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--ontology" => {
                let name = argv.next().ok_or("--ontology needs a name")?;
                args.ontology = Some(match name.as_str() {
                    "obituary" | "obituaries" => domains::obituaries(),
                    "car-ad" | "car-ads" | "cars" => domains::car_ads(),
                    "job-ad" | "job-ads" | "jobs" => domains::job_ads(),
                    "course" | "courses" => domains::courses(),
                    other => return Err(format!("unknown built-in ontology `{other}`")),
                });
            }
            "--ontology-file" => {
                let path = argv.next().ok_or("--ontology-file needs a path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let ontology = parse_ontology(&text).map_err(|e| format!("{path}: {e}"))?;
                let problems = ontology.validate();
                if !problems.is_empty() {
                    return Err(format!("{path}: {}", problems.join("; ")));
                }
                args.ontology = Some(ontology);
            }
            "--json" => args.json = true,
            "--xml" => args.xml = true,
            "--trace" => args.trace = Some(argv.next().ok_or("--trace needs a path")?),
            "--metrics" => args.metrics = true,
            other if args.file.is_none() && !other.starts_with('-') => {
                args.file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn read_input(file: Option<&str>) -> Result<String, String> {
    match file {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buf)
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes `text` to stdout, ignoring errors — `rbd … | head` must not
/// panic when the pipe closes early.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Writes the sink's collected trace to `path` (when `--trace` was given)
/// and its metrics snapshot to stderr (when `--metrics` was given).
fn finish_observability(
    sink: Option<&Arc<CollectingSink>>,
    trace_path: Option<&str>,
    metrics: bool,
) -> Result<(), String> {
    let Some(sink) = sink else { return Ok(()) };
    if let Some(path) = trace_path {
        let json = sink.trace_json().to_pretty();
        std::fs::write(path, json.as_bytes()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if metrics {
        eprintln!("{}", sink.registry_snapshot().to_pretty());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let html = read_input(args.file.as_deref())?;
    let mut out = String::new();

    let sink: Option<Arc<CollectingSink>> =
        (args.trace.is_some() || args.metrics).then(|| Arc::new(CollectingSink::new()));

    if args.command == "tree" {
        let builder = if args.xml {
            TagTreeBuilder::default().xml()
        } else {
            TagTreeBuilder::default()
        };
        emit(&builder.build(&html).outline());
        return finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics);
    }

    let mut config = ExtractorConfig::default();
    if args.xml {
        config = config.xml();
    }
    if let Some(ontology) = args.ontology.clone() {
        config = config.with_ontology(ontology);
    }
    if let Some(sink) = &sink {
        config = config.with_sink(Arc::clone(sink) as Arc<dyn rbd::trace::TraceSink>);
    }

    if args.command == "check" {
        let report = check_assumptions(&html, &config).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "class: {}", report.class);
        let _ = writeln!(out, "max fan-out: {}", report.max_fanout);
        let _ = writeln!(out, "candidate tags: {}", report.candidate_count);
        match report.estimated_records {
            Some(est) => {
                let _ = writeln!(out, "estimated records: {est:.1}");
            }
            None => {
                let _ = writeln!(out, "estimated records: (no ontology)");
            }
        }
        emit(&out);
        return finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics);
    }

    let extractor = RecordExtractor::new(config).map_err(|e| e.to_string())?;

    match args.command.as_str() {
        "discover" => {
            let outcome = extractor.discover(&html).map_err(|e| e.to_string())?;
            if args.json {
                let scored: Vec<String> = outcome
                    .consensus
                    .scored
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"tag\":\"{}\",\"certainty\":{:.6}}}",
                            json_escape(&s.tag),
                            s.certainty.value()
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"separator\":\"{sep}\",\"subtree\":\"{sub}\",\"candidates\":{n},\"scored\":[{scored}]}}",
                    sep = json_escape(&outcome.separator),
                    sub = json_escape(&outcome.subtree_tag),
                    n = outcome.candidates.len(),
                    scored = scored.join(",")
                );
            } else {
                let _ = writeln!(out, "highest-fan-out subtree: <{}>", outcome.subtree_tag);
                for ranking in &outcome.rankings {
                    let _ = writeln!(out, "{}", ranking.to_paper_string());
                }
                for s in &outcome.consensus.scored {
                    let _ = writeln!(out, "  {:<6} {}", s.tag, s.certainty);
                }
                let _ = writeln!(out, "separator: <{}>", outcome.separator);
            }
        }
        "extract" => {
            let extraction = extractor
                .extract_records(&html)
                .map_err(|e| e.to_string())?;
            if args.json {
                let records: Vec<String> = extraction
                    .records
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"start\":{},\"end\":{},\"text\":\"{}\"}}",
                            r.start,
                            r.end,
                            json_escape(&r.text)
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{{\"separator\":\"{}\",\"records\":[{}]}}",
                    json_escape(&extraction.outcome.separator),
                    records.join(",")
                );
            } else {
                for (i, r) in extraction.records.iter().enumerate() {
                    let _ = writeln!(out, "--- record {i} ---");
                    let _ = writeln!(out, "{}", r.text);
                }
            }
        }
        "pipeline" => {
            let ontology = args
                .ontology
                .ok_or("pipeline requires --ontology or --ontology-file")?;
            let extraction = extractor
                .extract_records(&html)
                .map_err(|e| e.to_string())?;
            let recognizer = Recognizer::new(&ontology).map_err(|e| e.to_string())?;
            let tables: Vec<_> = extraction
                .records
                .iter()
                .map(|r| recognizer.recognize(&r.text))
                .collect();
            let db = InstanceGenerator::new(&ontology).populate(&tables);
            if args.json {
                // One object per entity row.
                let entity = db.table(&db.scheme().entity_relation).expect("entity");
                let cols: Vec<&str> = entity
                    .relation()
                    .columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect();
                let rows: Vec<String> = entity
                    .rows()
                    .iter()
                    .map(|row| {
                        let fields: Vec<String> = cols
                            .iter()
                            .zip(row)
                            .map(|(c, v)| match v {
                                Some(v) => {
                                    format!("\"{}\":\"{}\"", json_escape(c), json_escape(v))
                                }
                                None => format!("\"{}\":null", json_escape(c)),
                            })
                            .collect();
                        format!("{{{}}}", fields.join(","))
                    })
                    .collect();
                let _ = writeln!(out, "[{}]", rows.join(","));
            } else {
                let _ = write!(out, "{db}");
            }
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    emit(&out);
    finish_observability(sink.as_ref(), args.trace.as_deref(), args.metrics)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
