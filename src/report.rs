//! Stable machine-readable shapes for CLI output.
//!
//! `rbd batch --json` is consumed by scripts, so its per-document entries
//! are built here — as [`Json`](rbd_json::Json) values with a tested
//! contract — instead of ad-hoc `format!` strings in the binary. The key
//! robustness property: a document that *panicked* or was *shed* inside
//! the pipeline produces a typed `"error"` object naming the failure kind,
//! not a bare string a consumer has to pattern-match.

use rbd_core::Extraction;
use rbd_json::Json;
use rbd_pipeline::{BatchError, CachedResult};

/// One `rbd batch --json` entry: `{"file", "records", "separator"}` on
/// success, `{"file", "error": {"kind", "message", …}}` on failure.
///
/// Error kinds are `"discovery"` (the extractor ran and failed, same as a
/// serial run), `"shed"` (dropped by the load-shedding policy before it
/// ran; carries `watermark` and `depth`), and `"panic"` (the extraction
/// panicked; the pool isolated it and the batch carried on).
pub fn batch_entry_json(file: &str, outcome: &Result<Extraction, BatchError>) -> Json {
    match outcome {
        Ok(extraction) => Json::object([
            ("file", Json::Str(file.to_string())),
            ("records", Json::UInt(extraction.records.len() as u64)),
            ("separator", Json::Str(extraction.outcome.separator.clone())),
        ]),
        Err(error) => Json::object([
            ("file", Json::Str(file.to_string())),
            ("error", batch_error_json(error)),
        ]),
    }
}

/// One `rbd batch --store --json` entry: the plain-batch shape plus a
/// `"cache"` field (`"hit"` or `"miss"`) on every entry, and — when a
/// committed store frame failed to read back — a typed `"store_error"`
/// object (`{"kind", "message"}` with kinds `"io"`, `"corrupt"`,
/// `"json"`, `"too_large"`) instead of a panic or a silent re-run.
pub fn cached_batch_entry_json(file: &str, result: &CachedResult) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![("file", Json::Str(file.to_string()))];
    match &result.outcome {
        Ok(stored) => {
            fields.push(("records", Json::UInt(stored.records.len() as u64)));
            fields.push(("separator", Json::Str(stored.separator.clone())));
        }
        Err(error) => fields.push(("error", batch_error_json(error))),
    }
    fields.push(("cache", Json::Str(result.cache.as_str().to_string())));
    if let Some(store_error) = &result.store_error {
        fields.push((
            "store_error",
            Json::object([
                ("kind", Json::Str(store_error.kind().to_string())),
                ("message", Json::Str(store_error.to_string())),
            ]),
        ));
    }
    Json::object(fields)
}

fn batch_error_json(error: &BatchError) -> Json {
    match error {
        BatchError::Discovery(e) => Json::object([
            ("kind", Json::Str("discovery".to_string())),
            ("message", Json::Str(e.to_string())),
        ]),
        BatchError::Shed { watermark, depth } => Json::object([
            ("kind", Json::Str("shed".to_string())),
            ("message", Json::Str(error.to_string())),
            ("watermark", Json::UInt(*watermark as u64)),
            ("depth", Json::UInt(*depth as u64)),
        ]),
        BatchError::Panicked(message) => Json::object([
            ("kind", Json::Str("panic".to_string())),
            ("message", Json::Str(message.clone())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicked_doc_serializes_as_typed_error() {
        let outcome: Result<Extraction, BatchError> =
            Err(BatchError::Panicked("index out of bounds".to_string()));
        let entry = batch_entry_json("docs/a.html", &outcome);
        assert_eq!(
            entry.to_string(),
            r#"{"file":"docs/a.html","error":{"kind":"panic","message":"index out of bounds"}}"#
        );
    }

    #[test]
    fn shed_doc_carries_watermark_and_depth() {
        let outcome: Result<Extraction, BatchError> = Err(BatchError::Shed {
            watermark: 32,
            depth: 40,
        });
        let entry = batch_entry_json("b.html", &outcome);
        assert_eq!(
            entry.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("shed".into()))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("watermark")),
            Some(&Json::UInt(32))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("depth")),
            Some(&Json::UInt(40))
        );
    }

    #[test]
    fn cached_entry_carries_cache_field_and_typed_store_error() {
        use rbd_pipeline::CacheStatus;
        use rbd_store::{ContentHash, StoreError, StoredDoc, StoredRecord};
        let hash = ContentHash::of(b"<html>doc</html>");
        let stored = StoredDoc {
            hash,
            source: Some("a.html".to_string()),
            separator: "hr".to_string(),
            subtree_tag: "td".to_string(),
            preamble: None,
            records: vec![StoredRecord {
                start: 0,
                end: 4,
                text: "text".to_string(),
            }],
            degraded: 0,
        };
        let result = CachedResult {
            doc_id: 0,
            hash,
            cache: CacheStatus::Hit,
            outcome: Ok(stored),
            store_error: None,
        };
        let entry = cached_batch_entry_json("a.html", &result);
        assert_eq!(
            entry.to_string(),
            r#"{"file":"a.html","records":1,"separator":"hr","cache":"hit"}"#
        );

        let degraded = CachedResult {
            doc_id: 1,
            hash,
            cache: CacheStatus::Miss,
            outcome: Err(BatchError::Panicked("boom".to_string())),
            store_error: Some(StoreError::Corrupt {
                offset: 12,
                reason: "checksum mismatch".to_string(),
            }),
        };
        let entry = cached_batch_entry_json("b.html", &degraded);
        assert_eq!(
            entry.get("cache"),
            Some(&Json::Str("miss".into())),
            "{entry}"
        );
        assert_eq!(
            entry.get("store_error").and_then(|e| e.get("kind")),
            Some(&Json::Str("corrupt".into())),
            "{entry}"
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("panic".into())),
            "{entry}"
        );
    }

    #[test]
    fn discovery_error_keeps_the_serial_message() {
        let outcome: Result<Extraction, BatchError> = Err(BatchError::Discovery(
            rbd_core::DiscoveryError::EmptyDocument,
        ));
        let entry = batch_entry_json("c.html", &outcome);
        assert_eq!(
            entry.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("discovery".into()))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("message")),
            Some(&Json::Str("document contains no tags".into()))
        );
    }
}
