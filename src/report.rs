//! Stable machine-readable shapes for CLI output.
//!
//! `rbd batch --json` is consumed by scripts, so its per-document entries
//! are built here — as [`Json`](rbd_json::Json) values with a tested
//! contract — instead of ad-hoc `format!` strings in the binary. The key
//! robustness property: a document that *panicked* or was *shed* inside
//! the pipeline produces a typed `"error"` object naming the failure kind,
//! not a bare string a consumer has to pattern-match.

use rbd_core::Extraction;
use rbd_json::Json;
use rbd_pipeline::BatchError;

/// One `rbd batch --json` entry: `{"file", "records", "separator"}` on
/// success, `{"file", "error": {"kind", "message", …}}` on failure.
///
/// Error kinds are `"discovery"` (the extractor ran and failed, same as a
/// serial run), `"shed"` (dropped by the load-shedding policy before it
/// ran; carries `watermark` and `depth`), and `"panic"` (the extraction
/// panicked; the pool isolated it and the batch carried on).
pub fn batch_entry_json(file: &str, outcome: &Result<Extraction, BatchError>) -> Json {
    match outcome {
        Ok(extraction) => Json::object([
            ("file", Json::Str(file.to_string())),
            ("records", Json::UInt(extraction.records.len() as u64)),
            ("separator", Json::Str(extraction.outcome.separator.clone())),
        ]),
        Err(error) => Json::object([
            ("file", Json::Str(file.to_string())),
            ("error", batch_error_json(error)),
        ]),
    }
}

fn batch_error_json(error: &BatchError) -> Json {
    match error {
        BatchError::Discovery(e) => Json::object([
            ("kind", Json::Str("discovery".to_string())),
            ("message", Json::Str(e.to_string())),
        ]),
        BatchError::Shed { watermark, depth } => Json::object([
            ("kind", Json::Str("shed".to_string())),
            ("message", Json::Str(error.to_string())),
            ("watermark", Json::UInt(*watermark as u64)),
            ("depth", Json::UInt(*depth as u64)),
        ]),
        BatchError::Panicked(message) => Json::object([
            ("kind", Json::Str("panic".to_string())),
            ("message", Json::Str(message.clone())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicked_doc_serializes_as_typed_error() {
        let outcome: Result<Extraction, BatchError> =
            Err(BatchError::Panicked("index out of bounds".to_string()));
        let entry = batch_entry_json("docs/a.html", &outcome);
        assert_eq!(
            entry.to_string(),
            r#"{"file":"docs/a.html","error":{"kind":"panic","message":"index out of bounds"}}"#
        );
    }

    #[test]
    fn shed_doc_carries_watermark_and_depth() {
        let outcome: Result<Extraction, BatchError> = Err(BatchError::Shed {
            watermark: 32,
            depth: 40,
        });
        let entry = batch_entry_json("b.html", &outcome);
        assert_eq!(
            entry.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("shed".into()))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("watermark")),
            Some(&Json::UInt(32))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("depth")),
            Some(&Json::UInt(40))
        );
    }

    #[test]
    fn discovery_error_keeps_the_serial_message() {
        let outcome: Result<Extraction, BatchError> = Err(BatchError::Discovery(
            rbd_core::DiscoveryError::EmptyDocument,
        ));
        let entry = batch_entry_json("c.html", &outcome);
        assert_eq!(
            entry.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("discovery".into()))
        );
        assert_eq!(
            entry.get("error").and_then(|e| e.get("message")),
            Some(&Json::Str("document contains no tags".into()))
        );
    }
}
