//! Quickstart: discover the record separator of the paper's Figure 2
//! document and print every intermediate artifact.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rbd::prelude::*;
use rbd_ontology::domains;

const FIGURE_2: &str = r##"<html><head><title>Classifieds</title></head>
<body bgcolor="#FFFFFF">
<table><tr><td>
<h1 align="left">Funeral Notices - </h1> October 1, 1998
<hr>
<b>Lemar K. Adamson</b><br> died on September 30, 1998. Lemar was born on
September 5, 1913 and was a faithful member of his church. Services are at the
<b>MEMORIAL CHAPEL</b>, where friends may call. <br>
<hr>
Our beloved <b>Brian Fielding Frost</b>, age 41, passed away on September 30,
1998. A viewing will be held in the <b>Howard Stake Center</b>, under the
direction of <b>Carrillo's Tucson Mortuary</b>, with interment at
Holy Hope Cemetery<br>, on Tuesday.
<hr>
<b>Leonard Kenneth Gunther</b><br> passed away on September 30, 1998. Friends
may visit at <b>HEATHER MORTUARY</b>. Services will be held at 11:00 a.m. at
<b>HEATHER MORTUARY</b>, on Tuesday, October 6, 1998.<br>
<hr>
</td></tr></table>
All material is copyrighted.
</body></html>"##;

fn main() {
    // 1. The tag tree (paper Figure 2(b)).
    let tree = TagTreeBuilder::default().build(FIGURE_2);
    println!("Tag tree:\n{}", tree.outline());

    // 2. Highest-fan-out subtree and candidate tags (§3).
    let fanout = tree.highest_fanout();
    println!(
        "Highest-fan-out subtree: <{}> with {} children",
        tree.name(fanout),
        tree.node(fanout).fanout()
    );
    for c in tree.candidate_tags(fanout, 0.10) {
        println!("  candidate <{}> ({} appearances)", c.name, c.count);
    }

    // 3. Full discovery with the obituary ontology enabled (§4–§5).
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(domains::obituaries()))
            .expect("built-in ontology compiles");
    let outcome = extractor.discover(FIGURE_2).expect("document has records");

    println!("\nIndividual heuristics:");
    for ranking in &outcome.rankings {
        println!("  {}", ranking.to_paper_string());
    }

    println!("\nCompound (ORSIH) certainties:");
    for scored in &outcome.consensus.scored {
        println!("  {:<4} {}", scored.tag, scored.certainty);
    }
    println!("\nConsensus separator: <{}>", outcome.separator);

    // 4. Chunk the records.
    let extraction = extractor.extract_records(FIGURE_2).expect("extractable");
    println!("\n{} records:", extraction.records.len());
    for (i, record) in extraction.records.iter().enumerate() {
        let preview: String = record.text.chars().take(60).collect();
        println!("  [{i}] {preview}…");
    }
}
