//! Miniature run of the paper's evaluation: calibrate certainty factors on
//! the initial corpus, sweep the 26 compound heuristics, and score the four
//! test sets. The full regeneration lives in the `experiments` binary
//! (`cargo run -p rbd-eval --bin experiments -- --all`).
//!
//! ```sh
//! cargo run --example experiments_demo
//! ```

use rbd_eval::{calibrate, combination_sweep, run_test_sets, HeuristicRunner, DEFAULT_SEED};

fn main() {
    let runner = HeuristicRunner::new().expect("domain ontologies compile");

    println!("Calibrating on 100 synthetic documents (Tables 2–4)…\n");
    let calibration = calibrate(&runner, DEFAULT_SEED);
    println!("{calibration}");

    let table = calibration.certainty_table();
    let combos = combination_sweep(&calibration, &table);
    let orsih = combos.get("ORSIH").expect("ORSIH swept");
    println!(
        "Best combinations: {:?} (ORSIH: {:.2}%)\n",
        combos
            .best()
            .iter()
            .map(|r| r.combination.as_str())
            .collect::<Vec<_>>(),
        orsih.success_rate
    );

    println!("Scoring the four test sets (Tables 6–10)…\n");
    let tests = run_test_sets(&runner, &table, DEFAULT_SEED);
    println!("{tests}");
}
