//! Car-classifieds extraction with relational queries over the result —
//! the paper's motivating scenario ("in a Web document that lists multiple
//! car advertisements, we need to identify each individual advertisement").
//!
//! ```sh
//! cargo run --example car_ads
//! ```

use rbd::prelude::*;
use rbd_corpus::{generate_document, sites, Domain};
use rbd_db::InstanceGenerator;
use rbd_ontology::domains;
use rbd_recognizer::Recognizer;

fn main() {
    let ontology = domains::car_ads();
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
            .expect("ontology compiles");
    let recognizer = Recognizer::new(&ontology).expect("rules compile");
    let generator = InstanceGenerator::new(&ontology);

    // Extract from several synthetic classifieds sites into one database.
    let mut all_tables = Vec::new();
    for (i, style) in sites::initial_sites(Domain::CarAds)
        .iter()
        .enumerate()
        .take(4)
    {
        let doc = generate_document(style, Domain::CarAds, i, 77);
        match extractor.extract_records(&doc.html) {
            Ok(extraction) => {
                println!(
                    "{:<26} separator <{}> ({} ads)",
                    doc.site,
                    extraction.outcome.separator,
                    extraction.records.len()
                );
                all_tables.extend(
                    extraction
                        .records
                        .iter()
                        .map(|r| recognizer.recognize(&r.text)),
                );
            }
            Err(e) => println!("{:<26} failed: {e}", doc.site),
        }
    }

    let db = generator.populate(&all_tables);
    let cars = db.table("CarForSale").expect("entity table");
    println!("\nExtracted {} car ads in total.", cars.len());

    // Aggregate: make frequencies.
    let by_make = cars.query().group_count("Make");
    println!("\nTop makes:");
    for (make, n) in by_make.iter().take(5) {
        println!("  {make:<12} {n}");
    }

    // Query: the most common make's ads under $15,000, cheapest first.
    use rbd::db::Predicate;
    let top_make = by_make.first().map(|(m, _)| m.clone()).unwrap_or_default();
    println!("\n{top_make}s under $15,000, cheapest first:");
    for row in cars
        .query()
        .eq("Make", top_make.as_str())
        .filter("Price", Predicate::NumLt(15_000.0))
        .order_by_number("Price", true)
        .select(&["Year", "Model", "Price", "Phone"])
    {
        let cell = |i: usize| row[i].as_deref().unwrap_or("?");
        println!(
            "  {} {top_make} {:<10} {:<8} {}",
            cell(0),
            cell(1),
            cell(2),
            cell(3)
        );
    }
}
