//! Extending the system to a *new* application domain — apartment rental
//! listings — without writing any Rust: the ontology is declared in the
//! text DSL, exactly the paper's claim that "when we change applications …
//! we change the ontology, and everything else remains the same".
//!
//! ```sh
//! cargo run --example custom_ontology
//! ```

use rbd::prelude::*;
use rbd_db::InstanceGenerator;
use rbd_ontology::parse_ontology;
use rbd_recognizer::Recognizer;

/// An application ontology for apartment rentals, in the DSL of
/// `rbd_ontology::dsl`.
const RENTALS_ONTOLOGY: &str = r#"
ontology rental entity Apartment

object Bedrooms one-to-one {
    keyword "[0-9] (bdrm|bedroom|br\b)"
}

object Rent one-to-one type money {
    keyword "\$[0-9][0-9,]*/mo|rent"
    value "\$[0-9][0-9,]*"
}

object Deposit functional type money {
    keyword "deposit"
}

object Available functional {
    keyword "available (now|immediately|[A-Z][a-z]+ [0-9]{1,2})"
}

object Phone functional type phone {
    keyword "call"
    value "\(?[0-9]{3}\)?[- ][0-9]{3}-[0-9]{4}"
}

object Amenity many {
    keyword "w/d hookups|covered parking|pool|dishwasher|fireplace|no pets"
}
"#;

const LISTINGS_PAGE: &str = r#"<html><head><title>Apartments</title></head><body>
<h1>Apartments For Rent</h1>
<hr><b>Downtown studio</b><br> 1 bdrm, $450/mo, deposit $200. Covered parking,
no pets. Available now. Call (801) 555-0101.
<hr><b>East bench duplex</b><br> 3 bedroom, $795/mo plus deposit. W/D hookups,
dishwasher, fireplace. Available October 15. Call (801) 555-0188.
<hr><b>Campus condo</b><br> 2 bdrm, $625/mo, deposit $300. Pool, dishwasher.
Available immediately. Call (801) 555-0175.
<hr></body></html>"#;

fn main() {
    // 1. Parse the ontology from text.
    let ontology = parse_ontology(RENTALS_ONTOLOGY).expect("DSL parses");
    assert!(ontology.validate().is_empty());
    println!(
        "Parsed ontology `{}` with {} object sets; record-identifying fields:",
        ontology.name,
        ontology.len()
    );
    for f in ontology.record_identifying_fields() {
        println!(
            "  {} ({}, via {})",
            f.object_set.name,
            f.object_set.cardinality,
            if f.via_keywords { "keywords" } else { "values" }
        );
    }

    // 2. Everything downstream is unchanged.
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
            .expect("ontology compiles");
    let extraction = extractor.extract_records(LISTINGS_PAGE).expect("records");
    println!(
        "\nSeparator <{}>; {} listings found.",
        extraction.outcome.separator,
        extraction.records.len()
    );

    let recognizer = Recognizer::new(&ontology).expect("rules compile");
    let tables: Vec<_> = extraction
        .records
        .iter()
        .map(|r| recognizer.recognize(&r.text))
        .collect();
    let db = InstanceGenerator::new(&ontology).populate(&tables);
    println!("\n{db}");
}
