//! Record-boundary discovery over XML — the paper's footnote 1 ("most of
//! this work should carry over directly to other document type definitions,
//! such as XML"), demonstrated on a classifieds feed.
//!
//! ```sh
//! cargo run --example xml_feed
//! ```

use rbd::core::{ExtractorConfig, RecordExtractor};
use rbd::ontology::domains;
use rbd::tagtree::TagTreeBuilder;

const FEED: &str = r#"<?xml version="1.0"?>
<classifieds>
  <header>Autos for sale - October 1998</header>
  <Ad>1995 Ford Taurus, white, one owner, 62,000 miles. asking $6,500. Call (801) 555-1234.</Ad>
  <Ad>1996 Honda Accord, teal, CD player, 40,000 miles. $8,900 obo. Call (801) 555-2222.</Ad>
  <Ad>1997 Dodge Neon, red, auto, 31,000 miles. asking $7,100. Call (801) 555-3333.</Ad>
  <Ad><![CDATA[1993 Toyota Corolla, blue < great value >, 98,000 miles. $3,400 obo. Call (801) 555-4444.]]></Ad>
  <Ad>1994 Jeep Cherokee, green, 4x4, 88,000 miles. asking $9,200. Call (801) 555-5555.</Ad>
</classifieds>"#;

fn main() {
    // XML-mode tag tree: case-sensitive names, CDATA as text.
    let tree = TagTreeBuilder::default().xml().build(FEED);
    println!("XML tag tree:\n{}", tree.outline());

    let fanout = tree.highest_fanout();
    println!(
        "Highest fan-out: <{}> with {} children",
        tree.name(fanout),
        tree.node(fanout).fanout()
    );
    for c in tree.candidate_tags(fanout, 0.10) {
        println!("  candidate <{}> ({}×)", c.name, c.count);
    }

    // Full discovery + extraction with the car ontology, in XML mode
    // (case-sensitive names, CDATA text survives intact).
    let extractor = RecordExtractor::new(
        ExtractorConfig::default()
            .with_ontology(domains::car_ads())
            .xml(),
    )
    .expect("ontology compiles");
    let extraction = extractor.extract_records(FEED).expect("feed has records");
    println!(
        "\nSeparator: <{}>; {} ads extracted:",
        extraction.outcome.separator,
        extraction.records.len()
    );
    for record in &extraction.records {
        println!("  - {}", record.text);
    }
}
