//! The complete Figure-1 pipeline on a generated obituary page:
//! ontology → record extraction → constant/keyword recognition →
//! database-instance generation.
//!
//! ```sh
//! cargo run --example obituaries
//! ```

use rbd::prelude::*;
use rbd_corpus::{generate_document, sites, Domain};
use rbd_db::InstanceGenerator;
use rbd_ontology::domains;
use rbd_recognizer::Recognizer;

fn main() {
    // A synthetic Salt Lake Tribune-style obituary page.
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, 1998);
    println!(
        "Generated {} page from {} ({} records, separator <{}>)\n",
        doc.domain, doc.site, doc.truth.record_count, doc.truth.separator
    );

    // The application ontology drives everything else (Figure 1).
    let ontology = domains::obituaries();
    println!("Database scheme generated from the ontology:\n");
    println!("{}", ontology.database_scheme().to_ddl());

    // Record extractor: discover boundaries, chunk, clean.
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
            .expect("ontology compiles");
    let extraction = extractor.extract_records(&doc.html).expect("records found");
    println!(
        "Discovered separator <{}> — {} record chunks (ground truth: <{}> / {})",
        extraction.outcome.separator,
        extraction.records.len(),
        doc.truth.separator,
        doc.truth.record_count
    );

    // Constant/keyword recognizer: one Data-Record Table per record.
    let recognizer = Recognizer::new(&ontology).expect("rules compile");
    let tables: Vec<_> = extraction
        .records
        .iter()
        .map(|r| recognizer.recognize(&r.text))
        .collect();
    println!("\nData-Record Table of the first record:\n{}", tables[0]);

    // Database-instance generator: populate the scheme.
    let db = InstanceGenerator::new(&ontology).populate(&tables);
    println!("Populated database:\n{db}");

    // Query it.
    let deceased = db.table("Deceased").expect("entity table");
    println!(
        "Rows: {}; death dates recognized: {}",
        deceased.len(),
        deceased.project("DeathDate").len()
    );
}
