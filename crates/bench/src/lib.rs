//! Benchmark-only crate; see `benches/`.
