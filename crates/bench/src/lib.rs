//! Std-only benchmark harness for the `benches/` targets.
//!
//! The workspace builds offline with no external crates, so the benches run
//! on a small [`std::time::Instant`]-based harness instead of criterion:
//!
//! * each measurement **sample** times a batch of `iters` iterations, with
//!   `iters` auto-calibrated so one batch runs long enough for the clock's
//!   resolution not to dominate;
//! * a warm-up period runs (and discards) batches before sampling;
//! * per-iteration statistics (min / median / p95 / mean) are reported per
//!   benchmark and written as machine-readable JSON to
//!   `BENCH_<name>.json` in the working directory via `rbd-json`.
//!
//! Usage mirrors criterion closely enough that a port is mechanical:
//!
//! ```no_run
//! use rbd_bench::Harness;
//!
//! let mut h = Harness::new("example");
//! let mut group = h.group("sums");
//! group.sample_size(20);
//! group.throughput_bytes(1024);
//! group.bench_function("sum_1k", |b| {
//!     b.iter(|| (0u64..1024).sum::<u64>());
//! });
//! group.finish();
//! h.finish();
//! ```

#![forbid(unsafe_code)]

use rbd_json::{Json, ToJson};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one calibrated measurement batch.
const TARGET_BATCH: Duration = Duration::from_millis(10);
/// Minimum time spent warming up before sampling starts.
const WARMUP: Duration = Duration::from_millis(50);
/// Default number of measurement samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Runs one batch of iterations and records the elapsed time.
///
/// Passed to the closure given to [`Group::bench_function`]; call
/// [`Bencher::iter`] exactly once with the routine under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (results are passed through
    /// [`black_box`] so the optimizer cannot delete the work).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-iteration timing statistics for one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

impl Stats {
    fn from_samples(samples: &mut [f64]) -> Self {
        assert!(!samples.is_empty(), "at least one sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples.len();
        let pick = |q: f64| {
            // Nearest-rank percentile; q in [0, 1].
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_precision_loss)]
            let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
            samples[idx]
        };
        #[allow(clippy::cast_precision_loss)]
        let mean_ns = samples.iter().sum::<f64>() / n as f64;
        Self {
            min_ns: samples[0],
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns,
        }
    }
}

/// One finished benchmark: identity, sampling parameters, and stats.
#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    name: String,
    iters: u64,
    samples: usize,
    throughput_bytes: Option<u64>,
    stats: Stats,
}

impl BenchResult {
    fn throughput_mib_s(&self) -> Option<f64> {
        self.throughput_bytes.map(|bytes| {
            #[allow(clippy::cast_precision_loss)]
            let per_second = bytes as f64 / (self.stats.median_ns / 1e9);
            per_second / (1024.0 * 1024.0)
        })
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("group", self.group.to_json()),
            ("name", self.name.to_json()),
            ("iters", self.iters.to_json()),
            ("samples", self.samples.to_json()),
            ("throughput_bytes", self.throughput_bytes.to_json()),
            ("min_ns", self.stats.min_ns.to_json()),
            ("median_ns", self.stats.median_ns.to_json()),
            ("p95_ns", self.stats.p95_ns.to_json()),
            ("mean_ns", self.stats.mean_ns.to_json()),
            ("throughput_mib_s", self.throughput_mib_s().to_json()),
        ])
    }
}

/// Collects benchmark results for one bench target and writes the final
/// report.
#[derive(Debug)]
pub struct Harness {
    name: String,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness; `name` becomes the `BENCH_<name>.json` stem.
    #[must_use]
    pub fn new(name: &str) -> Self {
        eprintln!("benchmarking {name} (std harness; see rbd-bench)");
        Self {
            name: name.to_owned(),
            results: Vec::new(),
        }
    }

    /// Looks up the measured throughput (MiB/s, from the median sample) of
    /// an already-run benchmark — `None` if it has not run or declared no
    /// [`Group::throughput_bytes`]. The `hotpath` bench's regression gate
    /// reads its arms back through this before [`Harness::finish`].
    #[must_use]
    pub fn throughput_mib_s(&self, group: &str, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.group == group && r.name == name)
            .and_then(BenchResult::throughput_mib_s)
    }

    /// Like [`Harness::throughput_mib_s`] but computed from the *fastest*
    /// sample (`min_ns`). Best-case throughput is far less sensitive to
    /// scheduler noise than the median — one clean sample suffices — which
    /// is what a pass/fail regression gate needs.
    #[must_use]
    pub fn peak_throughput_mib_s(&self, group: &str, name: &str) -> Option<f64> {
        let r = self
            .results
            .iter()
            .find(|r| r.group == group && r.name == name)?;
        r.throughput_bytes.map(|bytes| {
            #[allow(clippy::cast_precision_loss)]
            let per_second = bytes as f64 / (r.stats.min_ns / 1e9);
            per_second / (1024.0 * 1024.0)
        })
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLES,
            throughput_bytes: None,
        }
    }

    /// Prints the summary table and writes `BENCH_<name>.json`.
    ///
    /// # Panics
    ///
    /// Panics if the JSON report cannot be written — benches are developer
    /// tools, and a silently missing report is worse than an abort.
    pub fn finish(self) {
        let path = format!("BENCH_{}.json", self.name);
        let blob = Json::object([
            ("bench", self.name.to_json()),
            (
                "results",
                Json::Array(self.results.iter().map(BenchResult::to_json).collect()),
            ),
        ]);
        std::fs::write(&path, blob.to_pretty() + "\n").expect("write bench report");
        eprintln!("wrote {path} ({} benchmarks)", self.results.len());
    }
}

/// A group of related benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of measurement samples (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the bytes processed per iteration; enables MiB/s reporting
    /// for subsequent benchmarks in this group.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Runs one benchmark: calibrate the batch size, warm up, then collect
    /// `sample_size` timed batches.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: double the batch size until one batch reaches the
        // target duration (slow routines stay at one iteration per batch).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            f(&mut b);
            if b.elapsed >= TARGET_BATCH || b.iters >= 1 << 20u64 {
                break;
            }
            b.iters *= 2;
        }
        // Warm up (caches, branch predictors, lazy allocations).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            f(&mut b);
        }
        // Measure.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            #[allow(clippy::cast_precision_loss)]
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        let stats = Stats::from_samples(&mut samples);
        let result = BenchResult {
            group: self.name.clone(),
            name: id.to_owned(),
            iters: b.iters,
            samples: self.sample_size,
            throughput_bytes: self.throughput_bytes,
            stats,
        };
        let throughput = result
            .throughput_mib_s()
            .map_or(String::new(), |t| format!("  {t:8.1} MiB/s"));
        eprintln!(
            "{:<44} min {:>9}  median {:>9}  p95 {:>9}{throughput}",
            format!("{}/{id}", self.name),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
        );
        self.harness.results.push(result);
        self
    }

    /// Ends the group (provided for call-site symmetry; dropping works too).
    pub fn finish(self) {}
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_and_percentiles() {
        let mut samples = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Stats::from_samples(&mut samples);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.p95_ns, 5.0);
        assert!((s.mean_ns - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(750.0), "750ns");
        assert_eq!(fmt_ns(1_500.0), "1.50µs");
        assert_eq!(fmt_ns(2_250_000.0), "2.25ms");
        assert_eq!(fmt_ns(3.5e9), "3.500s");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn result_json_shape() {
        let r = BenchResult {
            group: "g".into(),
            name: "n".into(),
            iters: 4,
            samples: 2,
            throughput_bytes: Some(1024 * 1024),
            stats: Stats {
                min_ns: 1e6,
                median_ns: 2e6,
                p95_ns: 3e6,
                mean_ns: 2e6,
            },
        };
        let json = r.to_json().to_compact();
        assert!(json.contains("\"group\":\"g\""), "{json}");
        assert!(json.contains("\"median_ns\":2000000"), "{json}");
        // 1 MiB per 2ms median = 500 MiB/s.
        assert!(json.contains("\"throughput_mib_s\":500"), "{json}");
    }
}
