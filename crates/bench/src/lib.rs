//! Benchmark-only crate; see `benches/`.

#![forbid(unsafe_code)]
