//! End-to-end Figure-1 pipeline throughput: page in, populated relational
//! database out.

use rbd_bench::{black_box, Harness};
use rbd_core::{ExtractorConfig, RecordExtractor};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_db::InstanceGenerator;
use rbd_ontology::domains;
use rbd_recognizer::Recognizer;

fn bench_full_pipeline(h: &mut Harness) {
    let ontology = domains::obituaries();
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
            .expect("compiles");
    let recognizer = Recognizer::new(&ontology).expect("compiles");
    let generator = InstanceGenerator::new(&ontology);
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, 1998);

    let mut group = h.group("pipeline");
    group.throughput_bytes(doc.html.len() as u64);
    group.bench_function("page_to_database", |b| {
        b.iter(|| {
            let extraction = extractor.extract_records(&doc.html).expect("records");
            let tables: Vec<_> = extraction
                .records
                .iter()
                .map(|r| recognizer.recognize(&r.text))
                .collect();
            let db = generator.populate(&tables);
            assert_eq!(
                db.table("Deceased").expect("entity").len(),
                doc.truth.record_count
            );
            black_box(db)
        });
    });
    group.finish();
}

fn bench_recognizer(h: &mut Harness) {
    let ontology = domains::obituaries();
    let recognizer = Recognizer::new(&ontology).expect("compiles");
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, 1998);
    let text = rbd_html::tokenize(&doc.html).plain_text();

    let mut group = h.group("pipeline");
    group.throughput_bytes(text.len() as u64);
    group.bench_function("recognize_data_record_table", |b| {
        b.iter(|| black_box(recognizer.recognize(black_box(&text))));
    });
    group.finish();
}

/// The §4.5 amortization claim, measured: separate passes (discovery's OM
/// re-scans the text, then recognition scans it again, per record) vs the
/// integrated pipeline (one recognition pass feeds OM and the Data-Record
/// Table both).
fn bench_integration_ablation(h: &mut Harness) {
    let ontology = domains::obituaries();
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(ontology.clone()))
            .expect("compiles");
    let recognizer = Recognizer::new(&ontology).expect("compiles");
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, 1998);

    let mut group = h.group("integration");
    group.sample_size(20);
    group.bench_function("separate_passes", |b| {
        b.iter(|| {
            let extraction = extractor.extract_records(&doc.html).expect("records");
            let tables: Vec<_> = extraction
                .records
                .iter()
                .map(|r| recognizer.recognize(&r.text))
                .collect();
            black_box(tables)
        });
    });
    group.bench_function("integrated_single_pass", |b| {
        b.iter(|| {
            let integrated = extractor
                .discover_and_recognize(&doc.html, &recognizer)
                .expect("records");
            black_box(integrated.record_tables())
        });
    });
    // The one-pass recognizer vs per-rule scanning, same text.
    let text = rbd_html::tokenize(&doc.html).plain_text();
    group.bench_function("recognize_one_pass", |b| {
        b.iter(|| black_box(recognizer.recognize(black_box(&text))));
    });
    group.bench_function("recognize_per_rule", |b| {
        b.iter(|| black_box(recognizer.recognize_separately(black_box(&text))));
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("pipeline");
    bench_full_pipeline(&mut h);
    bench_recognizer(&mut h);
    bench_integration_ablation(&mut h);
    h.finish();
}
