//! Cost of resource governance: pipeline throughput with limits off,
//! at [`Limits::default`], and at [`Limits::strict`].
//!
//! The governed pipeline adds one length check before tokenizing, two
//! integer comparisons per tree node, one candidate-cap pass, and one
//! deadline read per heuristic — the target is < 3 % overhead at default
//! limits on legitimate documents (EXPERIMENTS.md records the measured
//! numbers).

use rbd_bench::{black_box, Harness};
use rbd_core::{ExtractorConfig, Limits, RecordExtractor};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_ontology::domains;

fn extractor_with(limits: Limits) -> RecordExtractor {
    RecordExtractor::new(
        ExtractorConfig::default()
            .with_ontology(domains::obituaries())
            .with_limits(limits),
    )
    .expect("compiles")
}

fn bench_limit_profiles(h: &mut Harness) {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let doc = generate_document(style, Domain::Obituaries, 0, 1998);
    let unbounded = extractor_with(Limits::unbounded());
    let default = extractor_with(Limits::default());
    let strict = extractor_with(Limits::strict());

    let mut group = h.group("profiles");
    group.throughput_bytes(doc.html.len() as u64);
    group.bench_function("limits_off", |b| {
        b.iter(|| black_box(unbounded.extract_records(&doc.html).expect("records")));
    });
    group.bench_function("limits_default", |b| {
        b.iter(|| {
            let e = default.extract_records(&doc.html).expect("records");
            assert!(e.degradation.is_empty(), "defaults must not degrade");
            black_box(e)
        });
    });
    group.bench_function("limits_strict", |b| {
        b.iter(|| black_box(strict.extract_records(&doc.html).expect("records")));
    });
    group.finish();
}

/// Rejection must be cheap: an over-budget bomb should cost far less than
/// extracting from it would.
fn bench_rejection_cost(h: &mut Harness) {
    let strict = extractor_with(Limits::strict());
    let bomb = "<b>".repeat(200_000);
    let tower = {
        let mut t = "<div>".repeat(2_000);
        t.push('x');
        t.push_str(&"</div>".repeat(2_000));
        t
    };

    let mut group = h.group("rejection");
    group.throughput_bytes(bomb.len() as u64);
    group.bench_function("tag_bomb_rejected", |b| {
        b.iter(|| black_box(strict.discover(&bomb).expect_err("over the node cap")));
    });
    group.bench_function("nesting_tower_rejected", |b| {
        b.iter(|| black_box(strict.discover(&tower).expect_err("over the depth cap")));
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("limits");
    bench_limit_profiles(&mut h);
    bench_rejection_cost(&mut h);
    h.finish();
}
