//! Hot-path benchmarks and regression gate for the zero-copy
//! tokenize → tree pipeline (DESIGN.md §11).
//!
//! Three groups:
//!
//! * `reference` — a scalar byte-sum over the 1 MiB document. This is a
//!   machine-speed anchor: its throughput moves with the host's memory
//!   bandwidth and clock, not with this repository's code.
//! * `tokenize` — [`rbd_html::Tokenizer`] alone, over 16 KiB – 1 MiB
//!   documents.
//! * `tokenize_tree` — tokenize plus tag-tree construction
//!   ([`TagTreeBuilder::build_from_tokens`]): the full hot path every
//!   extraction pays before the heuristics run.
//!
//! ## The regression gate
//!
//! After measuring, each hot arm's throughput is divided by the reference
//! arm's, and the resulting *ratios* are compared against the committed
//! baseline in `crates/bench/baselines/hotpath.json`. Ratios cancel out
//! machine speed, so the same baseline holds on a laptop and in CI; what
//! they cannot cancel is a code-level slowdown. Any arm whose ratio drops
//! more than 15 % below its baseline fails the bench process (exit 1).
//!
//! To regenerate after an intentional performance change (mirroring the
//! `RBD_UPDATE_GOLDEN` pattern of the golden-trace tests):
//!
//! ```text
//! RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench hotpath
//! ```
//!
//! then review the diff like any other code change — the baseline is the
//! performance contract the tentpole optimization landed.

use rbd_bench::{black_box, Harness};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_html::Tokenizer;
use rbd_json::{Json, ToJson};
use rbd_tagtree::TagTreeBuilder;
use std::path::PathBuf;

/// Document sizes the hot arms sweep, in KiB.
const SIZES_KIB: [usize; 4] = [16, 64, 256, 1024];

/// Allowed drop below the baseline ratio before the gate fails: generous
/// enough for scheduler noise on shared CI runners, tight enough that an
/// accidental return to per-byte scanning or per-node allocation (3×+
/// swings) cannot slip through.
const TOLERANCE: f64 = 0.15;

/// Builds a document of roughly `target_bytes` by concatenating generated
/// record areas (same construction as the `complexity` bench, so the two
/// report comparable numbers).
fn document_of_size(target_bytes: usize) -> String {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let mut html = String::with_capacity(target_bytes + 4096);
    let mut i = 0;
    while html.len() < target_bytes {
        let doc = generate_document(style, Domain::Obituaries, i, 1998);
        if html.is_empty() {
            let end = doc.html.rfind("</td>").unwrap_or(doc.html.len());
            html.push_str(&doc.html[..end]);
        } else {
            let start = doc.html.find("<hr>").unwrap_or(0);
            let end = doc.html.rfind("</td>").unwrap_or(doc.html.len());
            html.push_str(&doc.html[start..end]);
        }
        i += 1;
    }
    html.push_str("</td></tr></table></body></html>");
    html
}

/// The machine-speed anchor: sum every byte of the document. Deliberately
/// scalar (no SWAR) so it tracks raw memory traversal speed, the same
/// resource the tokenizer's scanning is bound by.
fn byte_sum(doc: &str) -> u64 {
    doc.bytes().map(u64::from).sum()
}

fn bench_reference(h: &mut Harness, docs: &[(usize, String)]) {
    let mut group = h.group("reference");
    let Some((kb, doc)) = docs.last() else {
        return;
    };
    group.throughput_bytes(doc.len() as u64);
    group.bench_function(&format!("byte_sum_{kb}KiB"), |b| {
        b.iter(|| black_box(byte_sum(black_box(doc))));
    });
    group.finish();
}

fn bench_tokenize(h: &mut Harness, docs: &[(usize, String)]) {
    let mut group = h.group("tokenize");
    for (kb, doc) in docs {
        group.throughput_bytes(doc.len() as u64);
        group.bench_function(&format!("{kb}KiB"), |b| {
            b.iter(|| black_box(Tokenizer::new(black_box(doc)).run()));
        });
    }
    group.finish();
}

fn bench_tokenize_tree(h: &mut Harness, docs: &[(usize, String)]) {
    let mut group = h.group("tokenize_tree");
    let builder = TagTreeBuilder::default();
    for (kb, doc) in docs {
        group.throughput_bytes(doc.len() as u64);
        group.bench_function(&format!("{kb}KiB"), |b| {
            b.iter(|| {
                let tokens = Tokenizer::new(black_box(doc)).run();
                black_box(builder.build_from_tokens(doc.len(), &tokens))
            });
        });
    }
    group.finish();
}

/// The `(group, name)` pairs the gate tracks.
fn gated_arms() -> Vec<(String, String)> {
    let mut arms = Vec::new();
    for kb in SIZES_KIB {
        arms.push(("tokenize".to_owned(), format!("{kb}KiB")));
        arms.push(("tokenize_tree".to_owned(), format!("{kb}KiB")));
    }
    arms
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("hotpath.json")
}

/// Collects `arm throughput / reference throughput` for every gated arm.
///
/// Both sides use *peak* (best-sample) throughput: one clean sample is
/// enough to prove the code can reach a speed, so the ratio barely moves
/// under scheduler noise that shifts medians by double-digit percentages.
fn measured_ratios(h: &Harness, reference: f64) -> Vec<(String, String, f64)> {
    gated_arms()
        .into_iter()
        .filter_map(|(group, name)| {
            let t = h.peak_throughput_mib_s(&group, &name)?;
            Some((group, name, t / reference))
        })
        .collect()
}

fn write_baseline(ratios: &[(String, String, f64)], reference: f64) {
    let arms = ratios
        .iter()
        .map(|(group, name, ratio)| {
            Json::object([
                ("group", group.to_json()),
                ("name", name.to_json()),
                ("ratio", ratio.to_json()),
            ])
        })
        .collect::<Vec<_>>();
    let blob = Json::object([
        (
            "comment",
            "throughput ratios vs the reference byte-sum arm; regenerate with \
             RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench hotpath"
                .to_json(),
        ),
        ("reference_mib_s_at_capture", reference.to_json()),
        ("tolerance", TOLERANCE.to_json()),
        ("arms", Json::Array(arms)),
    ]);
    let path = baseline_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(&path, blob.to_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote baseline {}", path.display());
}

/// Reads the committed baseline back as `(group, name) -> ratio`.
fn read_baseline() -> Vec<(String, String, f64)> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}\nrun `RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench hotpath` \
             to create it",
            path.display()
        )
    });
    let root = Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    let arms = root
        .get("arms")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{} has no `arms` array", path.display()));
    arms.iter()
        .filter_map(|arm| {
            Some((
                arm.get("group")?.as_str()?.to_owned(),
                arm.get("name")?.as_str()?.to_owned(),
                arm.get("ratio")?.as_f64()?,
            ))
        })
        .collect()
}

/// Compares measured ratios to the baseline; returns the failures.
fn gate(measured: &[(String, String, f64)]) -> Vec<String> {
    let baseline = read_baseline();
    let mut failures = Vec::new();
    for (group, name, want) in &baseline {
        let Some((_, _, got)) = measured.iter().find(|(g, n, _)| g == group && n == name) else {
            failures.push(format!("{group}/{name}: baseline arm was not measured"));
            continue;
        };
        let floor = want * (1.0 - TOLERANCE);
        let status = if *got < floor { "FAIL" } else { "ok" };
        eprintln!(
            "gate {group}/{name}: ratio {got:.3} vs baseline {want:.3} (floor {floor:.3}) {status}"
        );
        if *got < floor {
            failures.push(format!(
                "{group}/{name}: throughput ratio {got:.3} fell more than \
                 {:.0}% below baseline {want:.3}",
                TOLERANCE * 100.0
            ));
        }
    }
    failures
}

/// Runs one full measurement pass and returns `(reference MiB/s, ratios)`.
///
/// Only the final attempt's harness report survives as `BENCH_hotpath.json`
/// (each pass overwrites it), which is the report a human wants anyway.
fn run_measurement(docs: &[(usize, String)]) -> (f64, Vec<(String, String, f64)>) {
    let mut h = Harness::new("hotpath");
    bench_reference(&mut h, docs);
    bench_tokenize(&mut h, docs);
    bench_tokenize_tree(&mut h, docs);
    let reference = h
        .peak_throughput_mib_s("reference", &format!("byte_sum_{}KiB", 1024))
        .expect("reference arm always runs");
    let measured = measured_ratios(&h, reference);
    h.finish();
    (reference, measured)
}

/// Measurement attempts: the baseline takes the per-arm median of this
/// many passes; the gate takes the per-arm best, stopping early once every
/// arm clears its floor. Run-to-run swings on allocation-heavy arms reach
/// double digits even with best-sample timing, so a single pass cannot
/// honor a 15 % tolerance — three can.
const ATTEMPTS: usize = 3;

fn main() {
    let docs: Vec<(usize, String)> = SIZES_KIB
        .iter()
        .map(|&kb| (kb, document_of_size(kb * 1024)))
        .collect();

    if std::env::var_os("RBD_UPDATE_BENCH_BASELINE").is_some() {
        // Per-arm median over the attempts, so an unusually lucky (or
        // unlucky) pass cannot skew the committed contract.
        let mut per_arm: Vec<(String, String, Vec<f64>)> = Vec::new();
        let mut last_reference = 0.0;
        for _ in 0..ATTEMPTS {
            let (reference, measured) = run_measurement(&docs);
            last_reference = reference;
            for (group, name, ratio) in measured {
                match per_arm
                    .iter_mut()
                    .find(|(g, n, _)| *g == group && *n == name)
                {
                    Some((_, _, rs)) => rs.push(ratio),
                    None => per_arm.push((group, name, vec![ratio])),
                }
            }
        }
        let medians = per_arm
            .into_iter()
            .map(|(group, name, mut rs)| {
                rs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                (group, name, rs[rs.len() / 2])
            })
            .collect::<Vec<_>>();
        write_baseline(&medians, last_reference);
        return;
    }

    // Gate mode: per-arm best across attempts, finishing early once every
    // baseline arm clears its floor.
    let mut best: Vec<(String, String, f64)> = Vec::new();
    let mut failures = Vec::new();
    for attempt in 1..=ATTEMPTS {
        let (_, measured) = run_measurement(&docs);
        for (group, name, ratio) in measured {
            match best.iter_mut().find(|(g, n, _)| *g == group && *n == name) {
                Some((_, _, r)) => *r = r.max(ratio),
                None => best.push((group, name, ratio)),
            }
        }
        eprintln!("gate attempt {attempt}/{ATTEMPTS}:");
        failures = gate(&best);
        if failures.is_empty() {
            eprintln!("bench-regression gate passed ({} arms)", best.len());
            return;
        }
    }
    eprintln!("bench-regression gate FAILED:");
    for f in &failures {
        eprintln!("  {f}");
    }
    eprintln!(
        "if the slowdown is intentional, regenerate the baseline with \
         RBD_UPDATE_BENCH_BASELINE=1 and review the diff"
    );
    std::process::exit(1);
}
