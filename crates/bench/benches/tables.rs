//! One benchmark per paper table: each measures regenerating that table's
//! data from scratch (corpus generation + evaluation), so `cargo bench`
//! doubles as a reproducibility smoke test — a panic in any experiment
//! fails the bench.

use rbd_bench::{black_box, Harness};
use rbd_certainty::CertaintyTable;
use rbd_corpus::{initial_corpus, test_corpus, Domain};
use rbd_eval::{calibrate, combination_sweep, run_test_sets, HeuristicRunner, DEFAULT_SEED};

fn bench_table_2_3_calibration(h: &mut Harness) {
    let runner = HeuristicRunner::new().expect("ontologies compile");
    let mut group = h.group("tables");
    group.sample_size(10);
    // Tables 2–4 come from one calibration pass over 100 documents.
    group.bench_function("table2_3_4_calibration", |b| {
        b.iter(|| black_box(calibrate(&runner, DEFAULT_SEED)));
    });
    group.finish();
}

fn bench_table_5_sweep(h: &mut Harness) {
    let runner = HeuristicRunner::new().expect("ontologies compile");
    let calibration = calibrate(&runner, DEFAULT_SEED);
    let table = calibration.certainty_table();
    let mut group = h.group("tables");
    group.sample_size(10);
    group.bench_function("table5_combination_sweep", |b| {
        b.iter(|| black_box(combination_sweep(&calibration, &table)));
    });
    group.finish();
}

fn bench_table_6_to_10_test_sets(h: &mut Harness) {
    let runner = HeuristicRunner::new().expect("ontologies compile");
    let table = CertaintyTable::paper_table4();
    let mut group = h.group("tables");
    group.sample_size(10);
    group.bench_function("table6_to_10_test_sets", |b| {
        b.iter(|| {
            let report = run_test_sets(&runner, &table, DEFAULT_SEED);
            assert!(report.compound_success >= 95.0, "headline must hold");
            black_box(report)
        });
    });
    group.finish();
}

fn bench_corpus_generation(h: &mut Harness) {
    let mut group = h.group("corpus");
    group.sample_size(20);
    group.bench_function("initial_corpus_100_docs", |b| {
        b.iter(|| {
            let a = initial_corpus(Domain::Obituaries, DEFAULT_SEED);
            let z = initial_corpus(Domain::CarAds, DEFAULT_SEED);
            black_box((a, z))
        });
    });
    group.bench_function("test_corpus_20_docs", |b| {
        b.iter(|| {
            let docs: Vec<_> = Domain::ALL
                .into_iter()
                .flat_map(|d| test_corpus(d, DEFAULT_SEED))
                .collect();
            black_box(docs)
        });
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("tables");
    bench_table_2_3_calibration(&mut h);
    bench_table_5_sweep(&mut h);
    bench_table_6_to_10_test_sets(&mut h);
    bench_corpus_generation(&mut h);
    h.finish();
}
