//! `rbd-serve` end-to-end throughput: documents per second through the
//! full service path — TCP connect, HTTP parse, pool admission, governed
//! extraction, response write, close — at 1/2/4 workers.
//!
//! This is the number EXPERIMENTS.md's soak table quotes: it prices the
//! whole fault-tolerant front (socket deadlines, caps, panic isolation)
//! against the raw engine throughput the `batch` bench reports. Clients
//! run on threads so worker scaling is actually observable; each client
//! reuses the serial extraction corpus the batch bench uses.

use rbd_bench::{black_box, Harness};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const WORKERS: [usize; 3] = [1, 2, 4];
const CORPUS_DOCS: usize = 24;
const CLIENTS: usize = 4;

fn corpus() -> Vec<String> {
    let styles = sites::initial_sites(Domain::Obituaries);
    (0..CORPUS_DOCS)
        .map(|i| {
            let style = &styles[i % styles.len()];
            generate_document(style, Domain::Obituaries, i, 1998).html
        })
        .collect()
}

fn request_for(doc: &str) -> Vec<u8> {
    let mut raw = format!(
        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        doc.len()
    )
    .into_bytes();
    raw.extend_from_slice(doc.as_bytes());
    raw
}

/// One full exchange; returns true on HTTP 200.
fn exchange(addr: SocketAddr, raw: &[u8]) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let armed = stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))));
    if armed.is_err() || stream.write_all(raw).is_err() {
        return false;
    }
    let mut out = String::new();
    stream.read_to_string(&mut out).is_ok() && out.starts_with("HTTP/1.1 200")
}

fn bench_serve(h: &mut Harness) {
    let docs = corpus();
    let requests: Vec<Vec<u8>> = docs.iter().map(|d| request_for(d)).collect();
    let bytes: u64 = docs
        .iter()
        .map(|d| u64::try_from(d.len()).expect("small doc"))
        .sum();

    let mut group = h.group("serve_extract");
    group.sample_size(10);
    group.throughput_bytes(bytes);
    for workers in WORKERS {
        let server = Server::bind(
            ServeConfig {
                workers,
                queue_capacity: 64,
                max_connections: 256,
                io_timeout: Duration::from_secs(10),
                request_deadline: Duration::from_secs(30),
                ..ServeConfig::default()
            },
            None,
        )
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run());

        group.bench_function(&format!("workers_{workers}"), |b| {
            b.iter(|| {
                let mut clients = Vec::with_capacity(CLIENTS);
                for c in 0..CLIENTS {
                    let slice: Vec<Vec<u8>> =
                        requests.iter().skip(c).step_by(CLIENTS).cloned().collect();
                    clients.push(std::thread::spawn(move || {
                        slice.iter().filter(|raw| exchange(addr, raw)).count()
                    }));
                }
                let ok: usize = clients
                    .into_iter()
                    .map(|c| c.join().expect("client thread"))
                    .sum();
                assert_eq!(ok, CORPUS_DOCS, "every request must succeed");
                black_box(ok)
            });
        });

        shutdown.trigger();
        let report = server_thread.join().expect("server thread");
        assert_eq!(report.worker_panics, 0);
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("serve");
    bench_serve(&mut h);
    h.finish();
}
