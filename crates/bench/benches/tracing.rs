//! Cost of observability: extraction throughput with no sink configured
//! (the [`rbd_trace::NullSink`] fast path), and with a live
//! [`rbd_trace::CollectingSink`] recording the full audit trail.
//!
//! The NullSink path costs one `enabled()` branch per event site plus the
//! unconditional span/counter no-ops — the gate is < 1 % overhead against
//! the untraced baseline, measured here over the four-domain corpus
//! (EXPERIMENTS.md records the numbers). The harness prints per-variant
//! stats; this bench additionally interleaves the two variants and prints
//! min- and median-based overhead ratios directly, so the gate needs no
//! external arithmetic.

use rbd_bench::{black_box, Harness};
use rbd_core::{ExtractorConfig, RecordExtractor};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_ontology::domains;
use rbd_trace::CollectingSink;
use std::sync::Arc;
use std::time::Instant;

const DOMAINS: [Domain; 4] = [
    Domain::Obituaries,
    Domain::CarAds,
    Domain::JobAds,
    Domain::Courses,
];

fn corpus() -> Vec<String> {
    DOMAINS
        .iter()
        .map(|&domain| {
            let style = &sites::initial_sites(domain)[0];
            generate_document(style, domain, 0, 1998).html
        })
        .collect()
}

fn ontology_for(domain: Domain) -> rbd_ontology::Ontology {
    match domain {
        Domain::Obituaries => domains::obituaries(),
        Domain::CarAds => domains::car_ads(),
        Domain::JobAds => domains::job_ads(),
        Domain::Courses => domains::courses(),
    }
}

fn extractors(sink: Option<&Arc<CollectingSink>>) -> Vec<RecordExtractor> {
    DOMAINS
        .iter()
        .map(|&domain| {
            let mut config = ExtractorConfig::default().with_ontology(ontology_for(domain));
            if let Some(sink) = sink {
                config = config.with_sink(Arc::clone(sink) as Arc<dyn rbd_trace::TraceSink>);
            }
            RecordExtractor::new(config).expect("compiles")
        })
        .collect()
}

fn sweep(extractors: &[RecordExtractor], docs: &[String]) {
    for (extractor, html) in extractors.iter().zip(docs) {
        black_box(extractor.extract_records(html).expect("records"));
    }
}

fn bench_sink_variants(h: &mut Harness, docs: &[String]) {
    let baseline = extractors(None);
    let collecting_sink = Arc::new(CollectingSink::new());
    let collecting = extractors(Some(&collecting_sink));

    let bytes: usize = docs.iter().map(String::len).sum();
    let mut group = h.group("sink");
    group.throughput_bytes(bytes as u64);
    group.bench_function("null_sink", |b| b.iter(|| sweep(&baseline, docs)));
    group.bench_function("collecting_sink", |b| b.iter(|| sweep(&collecting, docs)));
    group.finish();
}

fn time_once<F: FnMut()>(routine: &mut F) -> u128 {
    let start = Instant::now();
    routine();
    start.elapsed().as_nanos()
}

/// Per-routine stats from strict alternation, so slow drift in machine
/// load (frequency scaling, noisy neighbours) hits both sides equally
/// instead of biasing whichever ran second.
struct Paired {
    a_min: u128,
    a_median: u128,
    b_min: u128,
    b_median: u128,
    /// Median of the per-iteration `b/a` ratios — each pair runs
    /// back-to-back, so whatever interference one side saw, its partner
    /// saw nearly the same; this is the drift-robust overhead estimate.
    ratio_median: f64,
}

fn interleaved<A: FnMut(), B: FnMut()>(mut a: A, mut b: B, runs: usize) -> Paired {
    let mut a_samples = Vec::with_capacity(runs);
    let mut b_samples = Vec::with_capacity(runs);
    let mut ratios = Vec::with_capacity(runs);
    for _ in 0..runs {
        let a_ns = time_once(&mut a);
        let b_ns = time_once(&mut b);
        a_samples.push(a_ns);
        b_samples.push(b_ns);
        ratios.push(b_ns as f64 / a_ns as f64);
    }
    a_samples.sort_unstable();
    b_samples.sort_unstable();
    ratios.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite"));
    Paired {
        a_min: a_samples[0],
        a_median: a_samples[runs / 2],
        b_min: b_samples[0],
        b_median: b_samples[runs / 2],
        ratio_median: ratios[runs / 2],
    }
}

/// The < 1 % NullSink gate, measured where an untraced path still exists:
/// [`rbd_tagtree::TagTreeBuilder::try_build`] (no instrumentation at all)
/// against [`rbd_tagtree::TagTreeBuilder::try_build_traced`] with
/// [`rbd_trace::NullSink`] — tokenize + tree build is the pipeline's hot
/// path, and every traced stage uses the same one-branch-per-event shape.
fn measure_null_sink_overhead(docs: &[String]) {
    let builder = rbd_tagtree::TagTreeBuilder::default();
    let untraced = || {
        for html in docs {
            black_box(builder.try_build(html).expect("tree"));
        }
    };
    let nulled = || {
        for html in docs {
            black_box(
                builder
                    .try_build_traced(html, &rbd_trace::NullSink)
                    .expect("tree"),
            );
        }
    };

    // Noise floor first: the identical workload on both sides. Whatever
    // ratio this arm reports is pure measurement bias (scheduler, cache,
    // code layout) — the real comparison below is only meaningful down to
    // this floor.
    interleaved(&untraced, &untraced, 20); // warm-up
    let floor = interleaved(&untraced, &untraced, 400);
    println!(
        "tracing-overhead/noise_floor               paired-ratio {:+.2} %",
        (floor.ratio_median - 1.0) * 100.0
    );

    let p = interleaved(untraced, nulled, 400);
    println!(
        "tracing-overhead/untraced_ns               min {} median {}",
        p.a_min, p.a_median
    );
    println!(
        "tracing-overhead/null_sink_ns              min {} median {}",
        p.b_min, p.b_median
    );
    println!(
        "tracing-overhead/null_vs_untraced          paired-ratio {:+.2} %",
        (p.ratio_median - 1.0) * 100.0
    );
}

/// Rolling windows add one `record()` per request in `rbd serve`; a
/// disabled ring must reduce that to a single relaxed atomic load.
/// Measured as the hot-path workload plus one disabled `record()` per
/// document against the bare workload — the same shape batch mode pays
/// when windows are off.
fn measure_disabled_windows_overhead(docs: &[String]) {
    let builder = rbd_tagtree::TagTreeBuilder::default();
    let windows = rbd_trace::RollingWindows::disabled();
    let bare = || {
        for html in docs {
            black_box(builder.try_build(html).expect("tree"));
        }
    };
    let gated = || {
        for html in docs {
            black_box(builder.try_build(html).expect("tree"));
            windows.record(black_box(1_000), false);
        }
    };
    interleaved(&bare, &bare, 20); // warm-up
    let p = interleaved(bare, gated, 400);
    println!(
        "tracing-overhead/disabled_windows_vs_bare  paired-ratio {:+.2} %",
        (p.ratio_median - 1.0) * 100.0
    );
}

/// Cost of actually collecting: the full audit trail against the NullSink
/// fast path, end to end through `extract_records`.
fn measure_collecting_overhead(docs: &[String]) {
    let baseline = extractors(None);
    let collecting = extractors(Some(&Arc::new(CollectingSink::new())));

    let null_sweep = || sweep(&baseline, docs);
    let collect_sweep = || sweep(&collecting, docs);
    interleaved(&null_sweep, &collect_sweep, 5); // warm-up
    let p = interleaved(null_sweep, collect_sweep, 60);

    println!(
        "tracing-overhead/no_sink_extract_ns        min {} median {}",
        p.a_min, p.a_median
    );
    println!(
        "tracing-overhead/collecting_extract_ns     min {} median {}",
        p.b_min, p.b_median
    );
    println!(
        "tracing-overhead/collecting_vs_null        paired-ratio {:+.2} %",
        (p.ratio_median - 1.0) * 100.0
    );
}

fn main() {
    let docs = corpus();
    let mut h = Harness::new("tracing");
    bench_sink_variants(&mut h, &docs);
    h.finish();
    measure_null_sink_overhead(&docs);
    measure_disabled_windows_overhead(&docs);
    measure_collecting_overhead(&docs);
}
