//! rbd-pipeline batch throughput at 1/2/4/8 workers.
//!
//! Two arms, because "does the pool scale" has two different answers:
//!
//! * **batch_extract** — CPU-bound: a 32-document corpus through
//!   [`run_batch`]'s governed extraction. Scaling here tracks the number
//!   of physical cores; on a single-core host the expected curve is flat
//!   (the pool must merely not *lose* throughput to queueing overhead).
//! * **batch_fetch_sim** — latency-bound: each job parks for a simulated
//!   2 ms network fetch before a trivial computation. Workers overlap the
//!   waits, so this arm scales with the worker count even on one core —
//!   the regime a real crawl-and-extract batch lives in.

use rbd_bench::{black_box, Harness};
use rbd_core::RecordExtractor;
use rbd_corpus::{generate_document, sites, Domain};
use rbd_pipeline::{run_batch, BatchConfig, Pool, PoolConfig};
use rbd_trace::{NullSink, TraceSink};
use std::sync::Arc;
use std::time::Duration;

const JOBS: [usize; 4] = [1, 2, 4, 8];
const CORPUS_DOCS: usize = 32;

/// A mixed obituary corpus: every initial site style, cycled.
fn corpus() -> Vec<(u64, String)> {
    let styles = sites::initial_sites(Domain::Obituaries);
    (0..CORPUS_DOCS)
        .map(|i| {
            let style = &styles[i % styles.len()];
            let doc = generate_document(style, Domain::Obituaries, i, 1998);
            (u64::try_from(i).expect("small corpus"), doc.html)
        })
        .collect()
}

fn bench_cpu_bound(h: &mut Harness) {
    let ex = RecordExtractor::default();
    let docs = corpus();
    let bytes: u64 = docs
        .iter()
        .map(|(_, html)| u64::try_from(html.len()).expect("small doc"))
        .sum();
    let sink: Arc<dyn TraceSink> = Arc::new(NullSink);

    let mut group = h.group("batch_extract");
    group.sample_size(10);
    group.throughput_bytes(bytes);
    for jobs in JOBS {
        group.bench_function(&format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                let report = run_batch(&ex, docs.clone(), &BatchConfig::with_jobs(jobs), &sink)
                    .expect("valid batch config");
                assert_eq!(report.results.len(), docs.len());
                black_box(report.succeeded())
            });
        });
    }
    group.finish();
}

fn bench_latency_bound(h: &mut Harness) {
    const FETCH: Duration = Duration::from_millis(2);
    let sink: Arc<dyn TraceSink> = Arc::new(NullSink);

    let mut group = h.group("batch_fetch_sim");
    group.sample_size(10);
    for jobs in JOBS {
        group.bench_function(&format!("jobs_{jobs}"), |b| {
            b.iter(|| {
                // Queue sized to the whole batch so the blocking submit
                // loop below can never wedge on its own completions.
                let config = PoolConfig::with_workers(jobs).with_queue_capacity(CORPUS_DOCS);
                let pool = Pool::new(
                    config,
                    |i: u64, _| {
                        std::thread::sleep(FETCH);
                        i.wrapping_mul(i)
                    },
                    Arc::clone(&sink),
                )
                .expect("valid pool config");
                for i in 0..u64::try_from(CORPUS_DOCS).expect("small corpus") {
                    pool.submit(i).expect("pool open");
                }
                let mut received = 0usize;
                while received < CORPUS_DOCS {
                    match pool.recv_result() {
                        Some(result) => {
                            black_box(result.output.expect("no panics"));
                            received += 1;
                        }
                        None => break,
                    }
                }
                let report = pool.shutdown();
                assert!(report.unclaimed.is_empty(), "clean drain");
                black_box(received)
            });
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("batch");
    bench_cpu_bound(&mut h);
    bench_latency_bound(&mut h);
    h.finish();
}
