//! Store benchmarks and regression gate for the persistent extraction
//! cache (DESIGN.md §14).
//!
//! Three groups:
//!
//! * `reference` — full extraction (tokenize → tree → heuristics →
//!   chunking) over the whole document set: the price a cache miss pays.
//! * `store/cold_write` — opening a fresh log and committing every
//!   extraction in one `append_batch` (write + index + fsync'd commit).
//! * `store/warm_hit` — the serve-path hit: content-hash, indexed read,
//!   and canonical response JSON for every document, no extraction at all.
//!
//! All groups report throughput over the same document bytes, so each
//! arm's ratio against the reference *is* its speedup (or cost) relative
//! to a fresh extraction. The gate compares those ratios against
//! `crates/bench/baselines/store.json` exactly like the hotpath gate, and
//! additionally enforces the store's acceptance floor: a warm cache hit
//! must be at least [`MIN_WARM_SPEEDUP`]× faster than full extraction.
//!
//! Regenerate the baseline after an intentional performance change:
//!
//! ```text
//! RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench store
//! ```

use rbd_bench::{black_box, Harness};
use rbd_core::{ExtractorConfig, RecordExtractor};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_json::{Json, ToJson};
use rbd_store::{ContentHash, Store, StoredDoc};
use std::cell::RefCell;
use std::path::PathBuf;

/// Documents in the working set; enough to dwarf per-batch constant costs
/// while keeping the fsync-heavy cold arm in milliseconds.
const DOCS: usize = 32;

/// Allowed drop below the baseline ratio before the gate fails (same
/// rationale as the hotpath gate).
const TOLERANCE: f64 = 0.15;

/// Acceptance floor: a warm cache hit must beat full extraction by at
/// least this factor, on any machine — ratios cancel host speed.
const MIN_WARM_SPEEDUP: f64 = 10.0;

/// Measurement attempts; baseline takes medians, the gate takes bests.
const ATTEMPTS: usize = 3;

fn corpus() -> Vec<String> {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    (0..DOCS)
        .map(|i| generate_document(style, Domain::Obituaries, i, 1998).html)
        .collect()
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rbd-bench-store-{name}-{}.rbd", std::process::id()))
}

/// Extracts every document and pairs it with its content hash — the
/// stored form both store arms replay.
fn extract_all(ex: &RecordExtractor, docs: &[String]) -> Vec<StoredDoc> {
    docs.iter()
        .map(|html| {
            let extraction = ex
                .extract_records(html)
                .unwrap_or_else(|e| panic!("corpus document failed to extract: {e}"));
            StoredDoc::from_extraction(ContentHash::of(html.as_bytes()), None, &extraction)
        })
        .collect()
}

fn bench_reference(h: &mut Harness, ex: &RecordExtractor, docs: &[String], total: u64) {
    let mut group = h.group("reference");
    group.throughput_bytes(total);
    group.bench_function(&format!("extract_{DOCS}docs"), |b| {
        b.iter(|| {
            for html in docs {
                black_box(ex.extract_records(black_box(html)).ok());
            }
        });
    });
    group.finish();
}

fn bench_cold_write(h: &mut Harness, stored: &[StoredDoc], total: u64) {
    let path = scratch_path("cold");
    let mut group = h.group("store");
    group.throughput_bytes(total);
    group.bench_function("cold_write", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&path);
            let mut store = Store::open(&path).unwrap_or_else(|e| panic!("open: {e}"));
            let appended = store
                .append_batch(black_box(stored))
                .unwrap_or_else(|e| panic!("append: {e}"));
            black_box(appended);
        });
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_warm_hit(h: &mut Harness, docs: &[String], stored: &[StoredDoc], total: u64) {
    let path = scratch_path("warm");
    let _ = std::fs::remove_file(&path);
    let mut store = Store::open(&path).unwrap_or_else(|e| panic!("open: {e}"));
    store
        .append_batch(stored)
        .unwrap_or_else(|e| panic!("append: {e}"));
    let store = RefCell::new(store);

    let mut group = h.group("store");
    group.throughput_bytes(total);
    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            for html in docs {
                // The serve-path hit: hash the request body, then the
                // memoized hit layer hands back the canonical response.
                let hash = ContentHash::of(black_box(html).as_bytes());
                let entry = store
                    .borrow_mut()
                    .hit(&hash)
                    .unwrap_or_else(|e| panic!("read-back: {e}"))
                    .unwrap_or_else(|| panic!("warm store missed a committed doc"));
                black_box(entry.response.len());
            }
        });
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn gated_arms() -> Vec<(String, String)> {
    vec![
        ("store".to_owned(), "cold_write".to_owned()),
        ("store".to_owned(), "warm_hit".to_owned()),
    ]
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("store.json")
}

fn measured_ratios(h: &Harness, reference: f64) -> Vec<(String, String, f64)> {
    gated_arms()
        .into_iter()
        .filter_map(|(group, name)| {
            let t = h.peak_throughput_mib_s(&group, &name)?;
            Some((group, name, t / reference))
        })
        .collect()
}

fn write_baseline(ratios: &[(String, String, f64)], reference: f64) {
    let arms = ratios
        .iter()
        .map(|(group, name, ratio)| {
            Json::object([
                ("group", group.to_json()),
                ("name", name.to_json()),
                ("ratio", ratio.to_json()),
            ])
        })
        .collect::<Vec<_>>();
    let blob = Json::object([
        (
            "comment",
            "throughput ratios vs full extraction over the same bytes; \
             regenerate with RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench store"
                .to_json(),
        ),
        ("reference_mib_s_at_capture", reference.to_json()),
        ("tolerance", TOLERANCE.to_json()),
        ("min_warm_speedup", MIN_WARM_SPEEDUP.to_json()),
        ("arms", Json::Array(arms)),
    ]);
    let path = baseline_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    std::fs::write(&path, blob.to_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote baseline {}", path.display());
}

fn read_baseline() -> Vec<(String, String, f64)> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}\nrun `RBD_UPDATE_BENCH_BASELINE=1 cargo bench --bench store` \
             to create it",
            path.display()
        )
    });
    let root = Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    let arms = root
        .get("arms")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{} has no `arms` array", path.display()));
    arms.iter()
        .filter_map(|arm| {
            Some((
                arm.get("group")?.as_str()?.to_owned(),
                arm.get("name")?.as_str()?.to_owned(),
                arm.get("ratio")?.as_f64()?,
            ))
        })
        .collect()
}

/// Baseline drift plus the absolute warm-hit floor; returns the failures.
fn gate(measured: &[(String, String, f64)]) -> Vec<String> {
    let baseline = read_baseline();
    let mut failures = Vec::new();
    for (group, name, want) in &baseline {
        let Some((_, _, got)) = measured.iter().find(|(g, n, _)| g == group && n == name) else {
            failures.push(format!("{group}/{name}: baseline arm was not measured"));
            continue;
        };
        let floor = want * (1.0 - TOLERANCE);
        let status = if *got < floor { "FAIL" } else { "ok" };
        eprintln!(
            "gate {group}/{name}: ratio {got:.3} vs baseline {want:.3} (floor {floor:.3}) {status}"
        );
        if *got < floor {
            failures.push(format!(
                "{group}/{name}: throughput ratio {got:.3} fell more than \
                 {:.0}% below baseline {want:.3}",
                TOLERANCE * 100.0
            ));
        }
    }
    match measured
        .iter()
        .find(|(g, n, _)| g == "store" && n == "warm_hit")
    {
        Some((_, _, warm)) if *warm >= MIN_WARM_SPEEDUP => {
            eprintln!("warm_hit speedup {warm:.1}x >= required {MIN_WARM_SPEEDUP:.0}x");
        }
        Some((_, _, warm)) => failures.push(format!(
            "store/warm_hit: speedup {warm:.1}x below the required {MIN_WARM_SPEEDUP:.0}x \
             cache-hit floor"
        )),
        None => failures.push("store/warm_hit: arm was not measured".to_owned()),
    }
    failures
}

fn run_measurement(
    ex: &RecordExtractor,
    docs: &[String],
    stored: &[StoredDoc],
    total: u64,
) -> (f64, Vec<(String, String, f64)>) {
    let mut h = Harness::new("store");
    bench_reference(&mut h, ex, docs, total);
    bench_cold_write(&mut h, stored, total);
    bench_warm_hit(&mut h, docs, stored, total);
    let reference = h
        .peak_throughput_mib_s("reference", &format!("extract_{DOCS}docs"))
        .expect("reference arm always runs");
    let measured = measured_ratios(&h, reference);
    h.finish();
    (reference, measured)
}

fn main() {
    let docs = corpus();
    let total: u64 = docs.iter().map(|d| d.len() as u64).sum();
    let ex = RecordExtractor::new(ExtractorConfig::default())
        .unwrap_or_else(|e| panic!("default extractor: {e}"));
    let stored = extract_all(&ex, &docs);

    if std::env::var_os("RBD_UPDATE_BENCH_BASELINE").is_some() {
        let mut per_arm: Vec<(String, String, Vec<f64>)> = Vec::new();
        let mut last_reference = 0.0;
        for _ in 0..ATTEMPTS {
            let (reference, measured) = run_measurement(&ex, &docs, &stored, total);
            last_reference = reference;
            for (group, name, ratio) in measured {
                match per_arm
                    .iter_mut()
                    .find(|(g, n, _)| *g == group && *n == name)
                {
                    Some((_, _, rs)) => rs.push(ratio),
                    None => per_arm.push((group, name, vec![ratio])),
                }
            }
        }
        let medians = per_arm
            .into_iter()
            .map(|(group, name, mut rs)| {
                rs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                (group, name, rs[rs.len() / 2])
            })
            .collect::<Vec<_>>();
        write_baseline(&medians, last_reference);
        return;
    }

    let mut best: Vec<(String, String, f64)> = Vec::new();
    let mut failures = Vec::new();
    for attempt in 1..=ATTEMPTS {
        let (_, measured) = run_measurement(&ex, &docs, &stored, total);
        for (group, name, ratio) in measured {
            match best.iter_mut().find(|(g, n, _)| *g == group && *n == name) {
                Some((_, _, r)) => *r = r.max(ratio),
                None => best.push((group, name, ratio)),
            }
        }
        eprintln!("gate attempt {attempt}/{ATTEMPTS}:");
        failures = gate(&best);
        if failures.is_empty() {
            eprintln!("store bench gate passed ({} arms)", best.len());
            return;
        }
    }
    eprintln!("store bench gate FAILED:");
    for f in &failures {
        eprintln!("  {f}");
    }
    eprintln!(
        "if the slowdown is intentional, regenerate the baseline with \
         RBD_UPDATE_BENCH_BASELINE=1 and review the diff"
    );
    std::process::exit(1);
}
