//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the 10 % candidate-irrelevance threshold (§3) — sweep 1 %–30 %;
//! * highest-fan-out subtree selection vs. naively using the root;
//! * the heuristic subset — ORSIH vs. the strongest pair (SI) vs. IT alone.
//!
//! Each variant asserts its accuracy side effect where the outcome is
//! stable, so the bench run also documents *why* the paper's choices win.

use rbd_bench::{black_box, Harness};
use rbd_certainty::CertaintyTable;
use rbd_core::{ExtractorConfig, RecordExtractor};
use rbd_corpus::{test_corpus, Domain, GeneratedDoc};

fn all_test_docs() -> Vec<GeneratedDoc> {
    Domain::ALL
        .into_iter()
        .flat_map(|d| test_corpus(d, rbd_eval::DEFAULT_SEED))
        .collect()
}

/// Fraction of test documents whose separator the extractor names exactly.
fn accuracy(extractor: &RecordExtractor, docs: &[GeneratedDoc]) -> f64 {
    let hits = docs
        .iter()
        .filter(|d| {
            extractor
                .discover(&d.html)
                .map(|o| o.separator == d.truth.separator)
                .unwrap_or(false)
        })
        .count();
    #[allow(clippy::cast_precision_loss)]
    let acc = hits as f64 / docs.len() as f64;
    acc
}

fn bench_candidate_threshold(h: &mut Harness) {
    let docs = all_test_docs();
    let mut group = h.group("ablation_threshold");
    group.sample_size(10);
    for threshold in [0.01, 0.05, 0.10, 0.20, 0.30] {
        let extractor =
            RecordExtractor::new(ExtractorConfig::default().with_candidate_threshold(threshold))
                .expect("config valid");
        group.bench_function(&format!("{threshold:.2}"), |b| {
            b.iter(|| black_box(accuracy(&extractor, &docs)));
        });
    }
    group.finish();
}

fn bench_heuristic_subsets(h: &mut Harness) {
    let docs = all_test_docs();
    let mut group = h.group("ablation_subset");
    group.sample_size(10);
    for subset in ["ORSIH", "SI", "I", "OH", "RS"] {
        let extractor = RecordExtractor::new(
            ExtractorConfig::default()
                .with_heuristics(subset.parse().expect("valid letters"))
                .with_certainty_table(CertaintyTable::paper_table4()),
        )
        .expect("config valid");
        group.bench_function(subset, |b| {
            b.iter(|| {
                let acc = accuracy(&extractor, &docs);
                if subset == "ORSIH" {
                    assert!(acc >= 0.95, "ORSIH accuracy fell to {acc}");
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("ablations");
    bench_candidate_threshold(&mut h);
    bench_heuristic_subsets(&mut h);
    h.finish();
}
