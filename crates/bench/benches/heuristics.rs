//! Per-heuristic cost on a fixed document view — the empirical counterpart
//! of §4's cost analysis (HT/IT "negligible"; SD/RP/OM bounded by `O(n)`;
//! OM's regex pass is the most expensive component, which is why the paper
//! amortizes it into the recognizer).

use rbd_bench::{black_box, Harness};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_heuristics::{
    ht::HighestCount, it::IdentifiableTags, om::OntologyMatching, rp::RepeatingPattern,
    sd::StandardDeviation, Heuristic, SubtreeView,
};
use rbd_ontology::domains;
use rbd_tagtree::{TagTree, TagTreeBuilder};

fn fixture() -> (TagTree, String) {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    // Concatenate several generated pages' record areas into one large one.
    let mut html = String::new();
    for i in 0..20 {
        let doc = generate_document(style, Domain::Obituaries, i, 1998);
        if html.is_empty() {
            html = doc.html[..doc.html.rfind("</td>").expect("wrapper")].to_owned();
        } else {
            let start = doc.html.find("<hr>").expect("separator");
            let end = doc.html.rfind("</td>").expect("wrapper");
            html.push_str(&doc.html[start..end]);
        }
    }
    html.push_str("</td></tr></table></body></html>");
    let tree = TagTreeBuilder::default().build(&html);
    (tree, html)
}

fn bench_individual_heuristics(h: &mut Harness) {
    let (tree, _html) = fixture();
    let view = SubtreeView::from_tree(&tree, 0.10);
    let om = OntologyMatching::new(domains::obituaries()).expect("compiles");

    let mut group = h.group("heuristics");
    group.bench_function("HT", |b| {
        b.iter(|| black_box(HighestCount.rank(black_box(&view))));
    });
    let it = IdentifiableTags::default();
    group.bench_function("IT", |b| {
        b.iter(|| black_box(it.rank(black_box(&view))));
    });
    group.bench_function("SD", |b| {
        b.iter(|| black_box(StandardDeviation.rank(black_box(&view))));
    });
    let rp = RepeatingPattern::default();
    group.bench_function("RP", |b| {
        b.iter(|| black_box(rp.rank(black_box(&view))));
    });
    group.sample_size(20);
    group.bench_function("OM", |b| b.iter(|| black_box(om.rank(black_box(&view)))));
    group.finish();
}

fn bench_view_construction(h: &mut Harness) {
    let (tree, _html) = fixture();
    let mut group = h.group("heuristics");
    group.bench_function("subtree_view", |b| {
        b.iter(|| black_box(SubtreeView::from_tree(black_box(&tree), 0.10)));
    });
    group.finish();
}

fn bench_pattern_engine(h: &mut Harness) {
    // The OM/recognizer substrate: regex matching throughput.
    let (_, html) = fixture();
    let text = rbd_html::tokenize(&html).plain_text();
    let kw = rbd_pattern::Pattern::case_insensitive("died on|passed away on|passed away")
        .expect("compiles");
    let date = rbd_pattern::Pattern::new(r"[A-Z][a-z]+ [0-9]{1,2}, [0-9]{4}").expect("compiles");

    let mut group = h.group("pattern");
    group.throughput_bytes(text.len() as u64);
    group.bench_function("keyword_count", |b| {
        b.iter(|| black_box(kw.count_matches(black_box(&text))));
    });
    group.bench_function("date_count", |b| {
        b.iter(|| black_box(date.count_matches(black_box(&text))));
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("heuristics");
    bench_individual_heuristics(&mut h);
    bench_view_construction(&mut h);
    bench_pattern_engine(&mut h);
    h.finish();
}
