//! Complexity benchmarks: the paper's central performance claim is that
//! tag-tree construction (Appendix A) and the entire record-boundary
//! discovery process are `O(n)` in the document size "for practical cases
//! within the context of the larger data-extraction problem" (§3, §5.3).
//!
//! The `tag_tree_construction` and `full_discovery` groups sweep document
//! sizes over two orders of magnitude; linear scaling shows as constant
//! per-byte throughput in the harness's MiB/s column.

use rbd_bench::{black_box, Harness};
use rbd_core::{ExtractorConfig, RecordExtractor};
use rbd_corpus::{generate_document, sites, Domain};
use rbd_ontology::domains;
use rbd_tagtree::TagTreeBuilder;

/// Builds a document of roughly `target_bytes` by concatenating generated
/// record areas.
fn document_of_size(target_bytes: usize) -> String {
    let style = &sites::initial_sites(Domain::Obituaries)[0];
    let mut html = String::with_capacity(target_bytes + 4096);
    let mut i = 0;
    while html.len() < target_bytes {
        let doc = generate_document(style, Domain::Obituaries, i, 1998);
        // Strip the outer html/body shell from all but the first chunk so
        // the result remains one plausible document.
        if html.is_empty() {
            let end = doc.html.rfind("</td>").unwrap_or(doc.html.len());
            html.push_str(&doc.html[..end]);
        } else {
            let start = doc.html.find("<hr>").unwrap_or(0);
            let end = doc.html.rfind("</td>").unwrap_or(doc.html.len());
            html.push_str(&doc.html[start..end]);
        }
        i += 1;
    }
    html.push_str("</td></tr></table></body></html>");
    html
}

fn bench_tag_tree_construction(h: &mut Harness) {
    let mut group = h.group("tag_tree_construction");
    for kb in [16usize, 64, 256, 1024] {
        let doc = document_of_size(kb * 1024);
        group.throughput_bytes(doc.len() as u64);
        let builder = TagTreeBuilder::default();
        group.bench_function(&format!("{kb}KiB"), |b| {
            b.iter(|| black_box(builder.build(black_box(&doc))));
        });
    }
    group.finish();
}

fn bench_full_discovery(h: &mut Harness) {
    let mut group = h.group("full_discovery");
    group.sample_size(20);
    let extractor =
        RecordExtractor::new(ExtractorConfig::default().with_ontology(domains::obituaries()))
            .expect("ontology compiles");
    for kb in [16usize, 64, 256, 1024] {
        let doc = document_of_size(kb * 1024);
        group.throughput_bytes(doc.len() as u64);
        group.bench_function(&format!("{kb}KiB"), |b| {
            b.iter(|| black_box(extractor.discover(black_box(&doc)).expect("discovers")));
        });
    }
    group.finish();
}

fn bench_record_chunking(h: &mut Harness) {
    let mut group = h.group("record_extraction");
    group.sample_size(20);
    let extractor = RecordExtractor::default();
    let doc = document_of_size(256 * 1024);
    group.throughput_bytes(doc.len() as u64);
    group.bench_function("extract_records_256KiB", |b| {
        b.iter(|| {
            black_box(
                extractor
                    .extract_records(black_box(&doc))
                    .expect("extracts"),
            )
        });
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("complexity");
    bench_tag_tree_construction(&mut h);
    bench_full_discovery(&mut h);
    bench_record_chunking(&mut h);
    h.finish();
}
