//! # rbd-limits — shared resource-governance primitives
//!
//! The substrate crates (`rbd-html`, `rbd-tagtree`, `rbd-heuristics`,
//! `rbd-recognizer`) each enforce a slice of the extractor's resource
//! budget, but none of them may depend on `rbd-core` where the user-facing
//! [`Limits`](https://docs.rs/) configuration lives. This crate holds the
//! three primitives they all share:
//!
//! - [`LimitKind`] — *which* budget tripped,
//! - [`LimitExceeded`] — a structured, typed error carrying the cap and the
//!   observed value, so a breach is never reported as a bare string or a
//!   silent truncation,
//! - [`Deadline`] — a cheap coarse-grained wall-clock budget checked
//!   *between* units of work (never mid-unit), so overshoot is bounded by
//!   one unit.
//!
//! The crate is deliberately dependency-free and tiny; everything heavier
//! (default caps, degradation reports, configuration plumbing) lives in
//! `rbd-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// The resource whose budget was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Total bytes of input handed to the tokenizer.
    InputBytes,
    /// Nodes in the tag tree (one per surviving start tag, plus the root).
    TreeNodes,
    /// Depth of the open-element stack while building the tag tree.
    NestingDepth,
    /// Candidate separator tags considered by the heuristics.
    CandidateTags,
    /// Plain-text bytes scanned by ontology matching or the recognizer.
    TextBytes,
    /// Wall-clock budget for the whole discovery pass.
    WallClock,
    /// Depth of the batch pipeline's submission queue (the load-shedding
    /// watermark of `rbd-pipeline`).
    QueueDepth,
}

impl LimitKind {
    /// Stable lower-case name, used in error messages and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LimitKind::InputBytes => "input-bytes",
            LimitKind::TreeNodes => "tree-nodes",
            LimitKind::NestingDepth => "nesting-depth",
            LimitKind::CandidateTags => "candidate-tags",
            LimitKind::TextBytes => "text-bytes",
            LimitKind::WallClock => "wall-clock",
            LimitKind::QueueDepth => "queue-depth",
        }
    }

    /// Unit suffix for human-readable messages (`bytes`, `nodes`, ...).
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            LimitKind::InputBytes | LimitKind::TextBytes => "bytes",
            LimitKind::TreeNodes => "nodes",
            LimitKind::NestingDepth => "levels",
            LimitKind::CandidateTags => "tags",
            LimitKind::WallClock => "ms",
            LimitKind::QueueDepth => "jobs",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A resource budget was exceeded.
///
/// `observed` is the value that tripped the check — for incremental checks
/// (node counts, stack depth) it is the count at the moment of the breach,
/// i.e. usually `cap + 1`, not the total the input would have produced had
/// it run unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitExceeded {
    /// Which budget tripped.
    pub limit: LimitKind,
    /// The configured cap.
    pub cap: usize,
    /// The observed value at the moment of the breach.
    pub observed: usize,
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} limit exceeded: observed {} {} against a cap of {}",
            self.limit,
            self.observed,
            self.limit.unit(),
            self.cap
        )
    }
}

impl std::error::Error for LimitExceeded {}

/// A coarse-grained wall-clock budget.
///
/// A `Deadline` is checked *between* units of work (one heuristic, one
/// recognizer pass), never inside one, so a single [`is_expired`] call
/// costs one `Instant::now()` read (~tens of nanoseconds) and overshoot is
/// bounded by the longest single unit. Expiry is sticky: once observed,
/// every later check reports expired without reading the clock again.
///
/// [`is_expired`]: Deadline::is_expired
#[derive(Debug, Clone)]
pub struct Deadline {
    /// `None` means unbounded: `is_expired` is always `false`.
    at: Option<Instant>,
    start: Instant,
    budget: Duration,
    expired: Cell<bool>,
}

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub fn unbounded() -> Self {
        let now = Instant::now();
        Deadline {
            at: None,
            start: now,
            budget: Duration::ZERO,
            expired: Cell::new(false),
        }
    }

    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        let now = Instant::now();
        Deadline {
            at: now.checked_add(budget),
            start: now,
            budget,
            expired: Cell::new(false),
        }
    }

    /// From an optional budget: `None` gives [`Deadline::unbounded`].
    #[must_use]
    pub fn from_budget(budget: Option<Duration>) -> Self {
        match budget {
            Some(b) => Deadline::after(b),
            None => Deadline::unbounded(),
        }
    }

    /// `true` when the budget is spent. Sticky: once expired, stays
    /// expired (and skips the clock read).
    #[must_use]
    pub fn is_expired(&self) -> bool {
        if self.expired.get() {
            return true;
        }
        match self.at {
            None => false,
            Some(at) => {
                let hit = Instant::now() >= at;
                if hit {
                    self.expired.set(true);
                }
                hit
            }
        }
    }

    /// `true` when this deadline can never expire.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none()
    }

    /// The configured budget in whole milliseconds (0 when unbounded).
    #[must_use]
    pub fn budget_ms(&self) -> usize {
        duration_ms(self.budget)
    }

    /// Whole milliseconds elapsed since the deadline was created.
    #[must_use]
    pub fn elapsed_ms(&self) -> usize {
        duration_ms(self.start.elapsed())
    }

    /// The structured error describing this deadline's expiry, for
    /// degradation reports: cap = budget, observed = elapsed, both in ms.
    #[must_use]
    pub fn exceeded(&self) -> LimitExceeded {
        LimitExceeded {
            limit: LimitKind::WallClock,
            cap: self.budget_ms(),
            observed: self.elapsed_ms(),
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::unbounded()
    }
}

/// Saturating conversion of a duration to whole milliseconds as `usize`.
fn duration_ms(d: Duration) -> usize {
    usize::try_from(d.as_millis()).unwrap_or(usize::MAX)
}

/// Truncates `text` to at most `max_bytes`, backing the cut up to a UTF-8
/// character boundary so the prefix is always valid.
///
/// Returns the prefix plus, when the text was actually cut, the
/// [`LimitExceeded`] describing the truncation ([`LimitKind::TextBytes`],
/// `observed` = the full length) — callers surface it as a degradation
/// event so a capped scan is never a *silent* truncation.
#[must_use]
pub fn truncate_at_char_boundary(text: &str, max_bytes: usize) -> (&str, Option<LimitExceeded>) {
    if text.len() <= max_bytes {
        return (text, None);
    }
    let mut end = max_bytes;
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    let prefix = text.get(..end).unwrap_or("");
    (
        prefix,
        Some(LimitExceeded {
            limit: LimitKind::TextBytes,
            cap: max_bytes,
            observed: text.len(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_cap_and_observed() {
        let e = LimitExceeded {
            limit: LimitKind::TreeNodes,
            cap: 100,
            observed: 101,
        };
        let msg = e.to_string();
        assert!(msg.contains("tree-nodes"), "{msg}");
        assert!(msg.contains("101"), "{msg}");
        assert!(msg.contains("100"), "{msg}");
    }

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::unbounded();
        assert!(!d.is_expired());
        assert!(d.is_unbounded());
        assert_eq!(d.budget_ms(), 0);
    }

    #[test]
    fn zero_budget_expires_immediately_and_sticks() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_expired());
        assert!(d.is_expired(), "expiry is sticky");
        let e = d.exceeded();
        assert_eq!(e.limit, LimitKind::WallClock);
        assert_eq!(e.cap, 0);
    }

    #[test]
    fn generous_budget_does_not_expire_now() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_expired());
        assert_eq!(d.budget_ms(), 3_600_000);
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        // 'é' is two bytes; a cap landing mid-char must back up.
        let text = "aéb";
        let (prefix, cut) = truncate_at_char_boundary(text, 2);
        assert_eq!(prefix, "a");
        let cut = cut.expect("text was cut");
        assert_eq!(cut.limit, LimitKind::TextBytes);
        assert_eq!(cut.cap, 2);
        assert_eq!(cut.observed, 4);
        // Within budget: untouched, no notice.
        assert_eq!(truncate_at_char_boundary(text, 4), (text, None));
        // Zero cap on non-empty text: empty prefix, still reported.
        let (p, c) = truncate_at_char_boundary("x", 0);
        assert_eq!(p, "");
        assert!(c.is_some());
    }

    #[test]
    fn from_budget_maps_none_to_unbounded() {
        assert!(Deadline::from_budget(None).is_unbounded());
        assert!(!Deadline::from_budget(Some(Duration::from_secs(1))).is_unbounded());
    }
}
