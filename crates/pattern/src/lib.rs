//! # rbd-pattern — a lightweight regular-expression engine
//!
//! The paper's ontology "data frames" describe constants and keywords with
//! regular expressions ("We check for the existence of a keyword or constant
//! value by matching a regular expression with the plain text…", §4.5).
//! The reproduction's permitted dependency set does not include the `regex`
//! crate, so this crate implements the required engine from scratch:
//!
//! * a recursive-descent **parser** ([`ast`]) for a practical subset of
//!   regex syntax: literals, `.`, character classes, escapes
//!   (`\d \w \s \b` …), alternation, grouping, greedy/lazy quantifiers
//!   (`* + ? {m,n}`), and anchors (`^ $ \b \B`);
//! * a **Thompson NFA compiler** ([`program`]);
//! * a **Pike-style virtual machine** ([`vm`]) giving guaranteed
//!   `O(len · program)` matching with *leftmost-longest* semantics — no
//!   catastrophic backtracking regardless of the pattern.
//!
//! ## Example
//!
//! ```
//! use rbd_pattern::Pattern;
//!
//! let date = Pattern::new(r"[A-Z][a-z]+ \d{1,2}, \d{4}").unwrap();
//! let text = "Brian Frost died on September 30, 1998, at home.";
//! let m = date.find(text).unwrap();
//! assert_eq!(m.as_str(text), "September 30, 1998");
//! assert_eq!(date.find_iter(text).count(), 1);
//!
//! let kw = Pattern::case_insensitive(r"\b(died|passed away)\b").unwrap();
//! assert!(kw.is_match("Our beloved friend PASSED AWAY on Tuesday"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod multi;
pub mod program;
pub mod vm;

use std::fmt;

pub use ast::{parse, Ast, ClassSet};
pub use multi::{MultiMatch, MultiPattern};
pub use program::{compile, Inst, Program};

/// A successful match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

impl Match {
    /// The matched substring of `haystack`.
    pub fn as_str<'h>(&self, haystack: &'h str) -> &'h str {
        &haystack[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for an empty match.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Errors produced while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the pattern where the problem was detected.
    pub position: usize,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for PatternError {}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Pattern {
    program: Program,
    source: String,
}

impl Pattern {
    /// Compiles `pattern` (case-sensitive).
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        Self::with_case(pattern, false)
    }

    /// Compiles `pattern` with ASCII case-insensitive matching.
    pub fn case_insensitive(pattern: &str) -> Result<Self, PatternError> {
        Self::with_case(pattern, true)
    }

    fn with_case(pattern: &str, ci: bool) -> Result<Self, PatternError> {
        let ast = ast::parse(pattern)?;
        let program = program::compile(&ast, ci);
        Ok(Pattern {
            program,
            source: pattern.to_owned(),
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// `true` if the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        vm::search(&self.program, haystack, 0).is_some()
    }

    /// Leftmost-longest match in `haystack`, if any.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        vm::search(&self.program, haystack, 0)
    }

    /// Leftmost-longest match at or after byte offset `from`.
    pub fn find_at(&self, haystack: &str, from: usize) -> Option<Match> {
        vm::search(&self.program, haystack, from)
    }

    /// Iterator over non-overlapping matches, left to right.
    pub fn find_iter<'p, 'h>(&'p self, haystack: &'h str) -> Matches<'p, 'h> {
        Matches {
            pattern: self,
            haystack,
            at: 0,
        }
    }

    /// Number of non-overlapping matches — the count the OM heuristic needs.
    pub fn count_matches(&self, haystack: &str) -> usize {
        self.find_iter(haystack).count()
    }
}

/// Iterator over non-overlapping matches.
pub struct Matches<'p, 'h> {
    pattern: &'p Pattern,
    haystack: &'h str,
    at: usize,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = vm::search(&self.pattern.program, self.haystack, self.at)?;
        // Advance past the match; for empty matches step one character so
        // the iterator always terminates.
        self.at = if m.is_empty() {
            next_char_boundary(self.haystack, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, at: usize) -> usize {
    if at >= s.len() {
        return s.len() + 1;
    }
    let mut i = at + 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all<'h>(p: &str, hay: &'h str) -> Vec<&'h str> {
        Pattern::new(p)
            .unwrap()
            .find_iter(hay)
            .map(|m| m.as_str(hay))
            .collect()
    }

    #[test]
    fn literal_match() {
        let p = Pattern::new("died on").unwrap();
        assert!(p.is_match("he died on Tuesday"));
        assert!(!p.is_match("he is alive"));
        let m = p.find("he died on Tuesday").unwrap();
        assert_eq!(m.as_str("he died on Tuesday"), "died on");
        assert_eq!(m.start, 3);
    }

    #[test]
    fn dot_and_classes() {
        assert_eq!(all("a.c", "abc axc a\nc"), vec!["abc", "axc"]); // `.` excludes \n
        assert_eq!(all("[0-9]+", "a1 22 b333"), vec!["1", "22", "333"]);
        assert_eq!(all("[^ ]+", "ab cd"), vec!["ab", "cd"]);
    }

    #[test]
    fn escapes() {
        assert_eq!(
            all(r"\d{2,4}", "7 19 1998 12345"),
            vec!["19", "1998", "1234"]
        );
        assert_eq!(all(r"\w+", "a_b c!"), vec!["a_b", "c"]);
        assert_eq!(all(r"\s+", "a  b\tc"), vec!["  ", "\t"]);
        assert_eq!(all(r"\$\d+", "$100 and $5"), vec!["$100", "$5"]);
    }

    #[test]
    fn alternation_and_groups() {
        assert_eq!(
            all("(died|passed away) on", "x died on y passed away on z"),
            vec!["died on", "passed away on"]
        );
    }

    #[test]
    fn quantifiers() {
        assert_eq!(all("ab*c", "ac abc abbbc"), vec!["ac", "abc", "abbbc"]);
        assert_eq!(all("ab+c", "ac abc abbbc"), vec!["abc", "abbbc"]);
        assert_eq!(all("ab?c", "ac abc abbc"), vec!["ac", "abc"]);
        assert_eq!(all("a{3}", "aa aaa aaaa"), vec!["aaa", "aaa"]);
        assert_eq!(all("a{2,}", "a aa aaaa"), vec!["aa", "aaaa"]);
    }

    #[test]
    fn leftmost_longest() {
        // Alternation picks the longest match at the leftmost position.
        let p = Pattern::new("a|ab").unwrap();
        let m = p.find("ab").unwrap();
        assert_eq!(m.end, 2, "leftmost-longest semantics");
    }

    #[test]
    fn anchors() {
        assert!(Pattern::new("^abc").unwrap().is_match("abcdef"));
        assert!(!Pattern::new("^abc").unwrap().is_match("xabc"));
        assert!(Pattern::new("def$").unwrap().is_match("abcdef"));
        assert!(!Pattern::new("def$").unwrap().is_match("defx"));
        assert!(Pattern::new("^$").unwrap().is_match(""));
    }

    #[test]
    fn word_boundaries() {
        let p = Pattern::new(r"\bcat\b").unwrap();
        assert!(p.is_match("a cat sat"));
        assert!(p.is_match("cat"));
        assert!(!p.is_match("concatenate"));
        assert!(!p.is_match("cats"));
        let nb = Pattern::new(r"\Bcat").unwrap();
        assert!(nb.is_match("concat"));
        assert!(!nb.is_match("a cat"));
    }

    #[test]
    fn case_insensitive() {
        let p = Pattern::case_insensitive("memorial chapel").unwrap();
        assert!(p.is_match("at the MEMORIAL CHAPEL today"));
        assert!(p.is_match("Memorial Chapel"));
        let cs = Pattern::new("memorial chapel").unwrap();
        assert!(!cs.is_match("MEMORIAL CHAPEL"));
    }

    #[test]
    fn case_insensitive_classes() {
        let p = Pattern::case_insensitive("[a-z]+").unwrap();
        assert_eq!(p.find("XYZ").unwrap().len(), 3);
    }

    #[test]
    fn find_iter_nonoverlapping() {
        assert_eq!(all("aa", "aaaa"), vec!["aa", "aa"]);
    }

    #[test]
    fn empty_match_terminates() {
        let p = Pattern::new("x*").unwrap();
        let n = p.find_iter("abc").count();
        assert_eq!(n, 4); // empty match at each position incl. end
    }

    #[test]
    fn count_matches_keywords() {
        let text = "A died on 1/1. B died on 2/2. C passed away on 3/3.";
        let p = Pattern::new("died on|passed away on").unwrap();
        assert_eq!(p.count_matches(text), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::new("(unclosed").is_err());
        assert!(Pattern::new("[unclosed").is_err());
        assert!(Pattern::new("*dangling").is_err());
        assert!(Pattern::new("a{5,2}").is_err());
        assert!(Pattern::new(r"trailing\").is_err());
    }

    #[test]
    fn unicode_haystack() {
        let p = Pattern::new("é+").unwrap();
        let hay = "café établé";
        let m = p.find(hay).unwrap();
        assert_eq!(m.as_str(hay), "é");
    }

    #[test]
    fn find_at_offsets() {
        let p = Pattern::new("a").unwrap();
        let hay = "a..a";
        assert_eq!(p.find_at(hay, 1).unwrap().start, 3);
        assert!(p.find_at(hay, 4).is_none());
    }

    #[test]
    fn lazy_quantifier() {
        let p = Pattern::new("<.+?>").unwrap();
        let hay = "<a><b>";
        // Leftmost-longest engine note: laziness affects thread priority,
        // but the longest match at the leftmost start still wins; `.` can
        // cross `>` so the full string matches.
        let m = p.find(hay).unwrap();
        assert_eq!(m.start, 0);
    }

    #[test]
    fn realistic_price_pattern() {
        let p = Pattern::new(r"\$[0-9][0-9,]*").unwrap();
        let hay = "asking $12,500 obo or $900";
        assert_eq!(
            p.find_iter(hay).map(|m| m.as_str(hay)).collect::<Vec<_>>(),
            vec!["$12,500", "$900"]
        );
    }

    #[test]
    fn realistic_phone_pattern() {
        let p = Pattern::new(r"\(?\d{3}\)?[- ]\d{3}-\d{4}").unwrap();
        assert!(p.is_match("call (801) 555-1234 today"));
        assert!(p.is_match("call 801-555-1234 today"));
    }
}
