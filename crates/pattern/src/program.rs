//! Thompson NFA compilation.

use crate::ast::{Ast, ClassSet};

/// One NFA instruction. Program counters are indices into
/// [`Program::insts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match a single literal character, then advance.
    Char(char),
    /// Match any character except `\n`, then advance.
    AnyChar,
    /// Match any character in the class, then advance.
    Class(ClassSet),
    /// Try `a` first (higher priority), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Successful match.
    Match,
}

/// Zero-width assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `^` — at offset 0.
    Start,
    /// `$` — at end of haystack.
    End,
    /// `\b`.
    WordBoundary,
    /// `\B`.
    NotWordBoundary,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction list; entry point is instruction 0.
    pub insts: Vec<Inst>,
    /// `true` if compiled for ASCII case-insensitive matching.
    pub case_insensitive: bool,
    /// `true` if the pattern starts with `^` (enables a search fast path).
    pub anchored_start: bool,
}

impl Program {
    /// Number of instructions (the VM's per-position work bound).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program is empty (never happens for valid patterns —
    /// even `""` compiles to a `Match`).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Compiles an [`Ast`] into a [`Program`]. When `case_insensitive` is set,
/// literal characters and classes are ASCII-case-folded at compile time.
pub fn compile(ast: &Ast, case_insensitive: bool) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        ci: case_insensitive,
    };
    c.emit(ast);
    c.insts.push(Inst::Match);
    let anchored_start = starts_anchored(ast);
    Program {
        insts: c.insts,
        case_insensitive,
        anchored_start,
    }
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(items) => items.first().is_some_and(starts_anchored),
        Ast::Alternate(arms) => arms.iter().all(starts_anchored),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    ci: bool,
}

impl Compiler {
    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                if self.ci && c.is_ascii_alphabetic() {
                    let mut set = ClassSet::new();
                    set.push_char(c.to_ascii_lowercase());
                    set.push_char(c.to_ascii_uppercase());
                    self.insts.push(Inst::Class(set));
                } else {
                    self.insts.push(Inst::Char(*c));
                }
            }
            Ast::AnyChar => self.insts.push(Inst::AnyChar),
            Ast::Class(set) => {
                let mut set = set.clone();
                if self.ci {
                    set.case_fold();
                }
                self.insts.push(Inst::Class(set));
            }
            Ast::Concat(items) => {
                for item in items {
                    self.emit(item);
                }
            }
            Ast::Alternate(arms) => self.emit_alternate(arms),
            Ast::Repeat {
                inner,
                min,
                max,
                greedy,
            } => self.emit_repeat(inner, *min, *max, *greedy),
            Ast::StartAnchor => self.insts.push(Inst::Assert(Assertion::Start)),
            Ast::EndAnchor => self.insts.push(Inst::Assert(Assertion::End)),
            Ast::WordBoundary => self.insts.push(Inst::Assert(Assertion::WordBoundary)),
            Ast::NotWordBoundary => self.insts.push(Inst::Assert(Assertion::NotWordBoundary)),
        }
    }

    /// `a|b|c` compiles to a chain of splits; each arm jumps to the common
    /// exit.
    fn emit_alternate(&mut self, arms: &[Ast]) {
        let mut jmp_exits = Vec::new();
        let mut last_split: Option<usize> = None;
        for (i, arm) in arms.iter().enumerate() {
            if let Some(s) = last_split.take() {
                let here = self.insts.len();
                self.patch_split_second(s, here);
            }
            if i + 1 < arms.len() {
                let s = self.insts.len();
                self.insts.push(Inst::Split(s + 1, 0)); // second patched later
                last_split = Some(s);
            }
            self.emit(arm);
            if i + 1 < arms.len() {
                let j = self.insts.len();
                self.insts.push(Inst::Jmp(0)); // patched to exit
                jmp_exits.push(j);
            }
        }
        let exit = self.insts.len();
        for j in jmp_exits {
            self.insts[j] = Inst::Jmp(exit);
        }
    }

    fn patch_split_second(&mut self, at: usize, target: usize) {
        if let Inst::Split(a, _) = self.insts[at] {
            self.insts[at] = Inst::Split(a, target);
        } else {
            unreachable!("patch target is always a Split");
        }
    }

    /// Repetition via expansion + the classic star/quest loops.
    fn emit_repeat(&mut self, inner: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit(inner);
        }
        match max {
            None => {
                // `inner*` (or `inner+` with the prefix above):
                //   L: split(body, exit)   [greedy]
                //      body…
                //      jmp L
                //   exit:
                let l = self.insts.len();
                self.insts.push(Inst::Split(0, 0));
                self.emit(inner);
                self.insts.push(Inst::Jmp(l));
                let exit = self.insts.len();
                self.insts[l] = if greedy {
                    Inst::Split(l + 1, exit)
                } else {
                    Inst::Split(exit, l + 1)
                };
            }
            Some(max) => {
                // `(max - min)` optional copies, each guarded by a split to
                // the common exit.
                let optional = (max - min) as usize;
                let mut splits = Vec::with_capacity(optional);
                for _ in 0..optional {
                    let s = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    splits.push(s);
                    self.emit(inner);
                }
                let exit = self.insts.len();
                for s in splits {
                    self.insts[s] = if greedy {
                        Inst::Split(s + 1, exit)
                    } else {
                        Inst::Split(exit, s + 1)
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn empty_pattern_is_just_match() {
        assert_eq!(prog("").insts, vec![Inst::Match]);
    }

    #[test]
    fn literal_chain() {
        let p = prog("ab");
        assert_eq!(p.insts, vec![Inst::Char('a'), Inst::Char('b'), Inst::Match]);
    }

    #[test]
    fn star_loop_shape() {
        let p = prog("a*");
        assert_eq!(
            p.insts,
            vec![
                Inst::Split(1, 3),
                Inst::Char('a'),
                Inst::Jmp(0),
                Inst::Match
            ]
        );
    }

    #[test]
    fn lazy_star_swaps_priorities() {
        let p = prog("a*?");
        assert_eq!(p.insts[0], Inst::Split(3, 1));
    }

    #[test]
    fn plus_is_one_then_star() {
        let p = prog("a+");
        assert_eq!(p.insts[0], Inst::Char('a'));
        assert!(matches!(p.insts[1], Inst::Split(2, 4)));
    }

    #[test]
    fn bounded_repeat_expansion() {
        let p = prog("a{2,4}");
        // 2 mandatory chars + 2 guarded optionals + match
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 4);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(_, _)))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn alternation_structure_matches() {
        let p = prog("a|b|c");
        // Must contain 2 splits and 2 jumps to a common exit.
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(_, _)))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn ci_literal_becomes_class() {
        let p = compile(&parse("a").unwrap(), true);
        let Inst::Class(set) = &p.insts[0] else {
            panic!()
        };
        assert!(set.contains('a') && set.contains('A'));
    }

    #[test]
    fn ci_nonalpha_stays_char() {
        let p = compile(&parse("5").unwrap(), true);
        assert_eq!(p.insts[0], Inst::Char('5'));
    }

    #[test]
    fn anchored_start_detection() {
        assert!(prog("^abc").anchored_start);
        assert!(prog("^a|^b").anchored_start);
        assert!(!prog("abc").anchored_start);
        assert!(!prog("^a|b").anchored_start);
    }
}
