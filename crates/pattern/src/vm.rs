//! Pike-style NFA virtual machine.
//!
//! Runs a compiled [`Program`] over a haystack in `O(len · insts)` time with
//! no backtracking. Matching semantics are **leftmost-longest**: among all
//! matches, the one starting earliest wins, and among those, the longest.

use crate::program::{Assertion, Inst, Program};
use crate::Match;

/// A live NFA thread: program counter plus the byte offset where its match
/// attempt began.
#[derive(Debug, Clone, Copy)]
struct Thread {
    pc: usize,
    start: usize,
}

/// Dense thread list with generation-marked dedup by program counter.
struct ThreadList {
    dense: Vec<Thread>,
    mark: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn new(len: usize) -> Self {
        ThreadList {
            dense: Vec::with_capacity(len),
            mark: vec![0; len],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.generation += 1;
    }

    fn seen(&mut self, pc: usize) -> bool {
        if self.mark[pc] == self.generation {
            true
        } else {
            self.mark[pc] = self.generation;
            false
        }
    }
}

/// Zero-width context at a position: the characters on either side.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    /// Absolute byte offset in the haystack.
    byte: usize,
    /// Total haystack length in bytes.
    hay_len: usize,
    prev: Option<char>,
    next: Option<char>,
}

impl Ctx {
    fn holds(&self, a: Assertion) -> bool {
        match a {
            Assertion::Start => self.byte == 0,
            Assertion::End => self.byte == self.hay_len,
            Assertion::WordBoundary => is_word(self.prev) != is_word(self.next),
            Assertion::NotWordBoundary => is_word(self.prev) == is_word(self.next),
        }
    }
}

fn is_word(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Adds `pc`'s epsilon closure to `list` in priority order.
fn add_thread(list: &mut ThreadList, prog: &Program, pc: usize, start: usize, ctx: Ctx) {
    // Explicit stack; `Split(a, b)` pushes `b` first so `a` pops (and is
    // therefore added) first, preserving thread priority.
    let mut stack = vec![pc];
    while let Some(pc) = stack.pop() {
        if list.seen(pc) {
            continue;
        }
        match &prog.insts[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*b);
                stack.push(*a);
            }
            Inst::Assert(k) => {
                if ctx.holds(*k) {
                    stack.push(pc + 1);
                }
            }
            Inst::Char(_) | Inst::AnyChar | Inst::Class(_) | Inst::Match => {
                list.dense.push(Thread { pc, start });
            }
        }
    }
}

/// Searches `haystack` for the leftmost-longest match at or after byte
/// offset `from`.
///
/// # Panics
/// Panics if `from` is not a character boundary of `haystack`.
pub fn search(prog: &Program, haystack: &str, from: usize) -> Option<Match> {
    assert!(
        haystack.is_char_boundary(from.min(haystack.len())),
        "`from` must lie on a character boundary"
    );
    if from > haystack.len() {
        return None;
    }
    let hay_len = haystack.len();
    let prev_of_from = haystack[..from].chars().next_back();

    let mut clist = ThreadList::new(prog.len());
    let mut nlist = ThreadList::new(prog.len());
    clist.clear();
    nlist.clear();

    let mut best: Option<Match> = None;
    let mut chars = haystack[from..].char_indices().peekable();
    let mut prev = prev_of_from;
    let mut byte = from;

    loop {
        let cur: Option<char> = chars.peek().map(|&(_, c)| c);
        // The character after `cur`, for the successor position's context.
        let lookahead: Option<char> =
            cur.and_then(|c| haystack[byte + c.len_utf8()..].chars().next());
        let ctx = Ctx {
            byte,
            hay_len,
            prev,
            next: cur,
        };
        let nctx = cur.map(|c| Ctx {
            byte: byte + c.len_utf8(),
            hay_len,
            prev: cur,
            next: lookahead,
        });

        // Inject a fresh start thread unless a match already pins the
        // leftmost start (or the pattern is start-anchored and we're past
        // the only valid start).
        let inject = best.is_none() && (!prog.anchored_start || byte == 0 || byte == from);
        if inject {
            add_thread(&mut clist, prog, 0, byte, ctx);
        }

        // Process current threads in priority order.
        let mut i = 0;
        while i < clist.dense.len() {
            let th = clist.dense[i];
            i += 1;
            match &prog.insts[th.pc] {
                Inst::Match => {
                    let cand = Match {
                        start: th.start,
                        end: byte,
                    };
                    best = Some(match best {
                        None => cand,
                        Some(b)
                            if cand.start < b.start
                                || (cand.start == b.start && cand.end > b.end) =>
                        {
                            cand
                        }
                        Some(b) => b,
                    });
                }
                Inst::Char(c) => {
                    if cur == Some(*c) {
                        let nctx = nctx.expect("cur is Some");
                        add_thread(&mut nlist, prog, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::AnyChar => {
                    if cur.is_some_and(|c| c != '\n') {
                        let nctx = nctx.expect("cur is Some");
                        add_thread(&mut nlist, prog, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::Class(set) => {
                    if cur.is_some_and(|c| set.contains(c)) {
                        let nctx = nctx.expect("cur is Some");
                        add_thread(&mut nlist, prog, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::Jmp(_) | Inst::Split(_, _) | Inst::Assert(_) => {
                    unreachable!("epsilon instructions never enter the dense list")
                }
            }
        }

        // Advance one character.
        match chars.next() {
            None => break,
            Some((_, c)) => {
                prev = Some(c);
                byte += c.len_utf8();
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();

        if clist.dense.is_empty() && best.is_some() {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::program::compile;

    fn m(p: &str, hay: &str) -> Option<(usize, usize)> {
        let prog = compile(&parse(p).unwrap(), false);
        search(&prog, hay, 0).map(|m| (m.start, m.end))
    }

    #[test]
    fn simple_scan() {
        assert_eq!(m("bc", "abcd"), Some((1, 3)));
        assert_eq!(m("xyz", "abcd"), None);
    }

    #[test]
    fn leftmost_wins_over_longer_later() {
        assert_eq!(m("ab|cdef", "abcdef"), Some((0, 2)));
    }

    #[test]
    fn longest_at_same_start() {
        assert_eq!(m("a|ab|abc", "abc"), Some((0, 3)));
    }

    #[test]
    fn greedy_star_takes_all() {
        assert_eq!(m("a*", "aaa"), Some((0, 3)));
    }

    #[test]
    fn empty_pattern_matches_empty_at_zero() {
        assert_eq!(m("", "abc"), Some((0, 0)));
        assert_eq!(m("", ""), Some((0, 0)));
    }

    #[test]
    fn anchored_fast_path() {
        let prog = compile(&parse("^b").unwrap(), false);
        assert!(search(&prog, "abc", 0).is_none());
        // from>0 still honours ^ = absolute position 0.
        assert!(search(&prog, "bbc", 1).is_none());
        assert!(search(&prog, "bbc", 0).is_some());
    }

    #[test]
    fn end_anchor() {
        assert_eq!(m("c$", "abc"), Some((2, 3)));
        assert_eq!(m("b$", "abc"), None);
    }

    #[test]
    fn word_boundary_with_from_offset() {
        let prog = compile(&parse(r"\bbat").unwrap(), false);
        // At offset 4 of "wombat bat", prev char is 'b' → not a boundary.
        let hay = "wombat bat";
        let m = search(&prog, hay, 3);
        assert_eq!(m.map(|m| m.start), Some(7));
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // The classic exponential killer for backtrackers finishes instantly
        // on a Pike VM.
        let p = "a*a*a*a*a*a*a*a*a*b";
        let hay = "a".repeat(64);
        assert_eq!(m(p, &hay), None);
    }

    #[test]
    fn multibyte_spans() {
        let r = m("é", "café").unwrap();
        assert_eq!(&"café"[r.0..r.1], "é");
    }
}
