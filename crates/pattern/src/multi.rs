//! One-pass multi-pattern matching.
//!
//! The recognizer runs dozens of keyword/constant rules over the same plain
//! text. Running each pattern's Pike VM separately re-scans the text once
//! per rule; [`MultiPattern`] compiles all rules into a single NFA whose
//! `Match` instructions carry a pattern index, and one scan reports, for
//! every pattern, the same matches the individual engines would find.
//!
//! This realizes the paper's §4.5 integration argument: "we can run the
//! regular-expression matching process before separating records at no
//! additional cost" — one pass over the text serves every rule (and, via
//! `rbd-core`'s integrated pipeline, the OM heuristic too).

use crate::ast::parse;
use crate::program::{compile, Inst, Program};
use crate::{Match, PatternError};

/// A set of patterns compiled for simultaneous matching.
#[derive(Debug, Clone)]
pub struct MultiPattern {
    /// One program per pattern, merged: `programs[i]` retains its own
    /// instruction array; the scanner runs them in lock-step sharing the
    /// haystack traversal.
    programs: Vec<Program>,
    /// Per-program first-character prefilter: a fresh start thread at some
    /// position can only survive if the current character is in this set.
    /// Lets the lock-step scanner skip idle programs at most positions.
    first_chars: Vec<FirstChars>,
}

/// Conservative approximation of the characters a program can begin with.
#[derive(Debug, Clone)]
struct FirstChars {
    /// ASCII bitmap.
    ascii: [bool; 128],
    /// `true` if any non-ASCII character may begin a match, or the pattern
    /// can match without consuming (then the prefilter must not skip).
    any: bool,
}

impl FirstChars {
    fn of(prog: &Program) -> Self {
        let mut fc = FirstChars {
            ascii: [false; 128],
            any: false,
        };
        // Closure from pc 0 ignoring assertions (conservative: an assertion
        // is treated as passable).
        let mut seen = vec![false; prog.len()];
        let mut stack = vec![0usize];
        while let Some(pc) = stack.pop() {
            if seen[pc] {
                continue;
            }
            seen[pc] = true;
            match &prog.insts[pc] {
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Inst::Assert(_) => stack.push(pc + 1),
                Inst::Char(c) => {
                    if (*c as u32) < 128 {
                        fc.ascii[*c as usize] = true;
                    } else {
                        fc.any = true;
                    }
                }
                Inst::Class(set) => {
                    for b in 0u8..128 {
                        if set.contains(b as char) {
                            fc.ascii[b as usize] = true;
                        }
                    }
                    // Negated or wide classes may admit non-ASCII.
                    if set.negated || set.ranges.iter().any(|&(_, hi)| (hi as u32) >= 128) {
                        fc.any = true;
                    }
                }
                Inst::AnyChar => fc.any = true,
                // The program can match empty: never skip.
                Inst::Match => fc.any = true,
            }
        }
        fc
    }

    #[inline]
    fn admits(&self, c: Option<char>) -> bool {
        match c {
            None => true, // EOF step must run (zero-width matches)
            Some(c) => self.any || ((c as u32) < 128 && self.ascii[c as usize]),
        }
    }
}

/// A match attributed to one of the patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiMatch {
    /// Index of the pattern (order of [`MultiPattern::new`] input).
    pub pattern: usize,
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

impl MultiMatch {
    /// The matched substring.
    pub fn as_str<'h>(&self, haystack: &'h str) -> &'h str {
        &haystack[self.start..self.end]
    }

    /// As a plain [`Match`].
    pub fn to_match(self) -> Match {
        Match {
            start: self.start,
            end: self.end,
        }
    }
}

/// Per-pattern scanning state for the lock-step pass.
struct Scan {
    /// Dense thread list for the current position: `(pc, start_byte)`.
    threads: Vec<(usize, usize)>,
    /// Dedup for the closure phase, keyed by `(pc, start)`: two threads at
    /// the same program counter with different starts must both live — the
    /// earlier one may be killed by the non-overlap rule after its match
    /// resolves, at which point the later one takes over (dedup by `pc`
    /// alone would shadow it away). Implemented as per-pc generation marks
    /// plus a small per-pc list of starts: the list rarely holds more than
    /// one element, so a linear probe beats hashing by a wide margin.
    seen: DedupTable,
    /// Next byte offset at which a new match may start (non-overlap rule).
    min_start: usize,
    /// Unresolved candidate matches: start → longest end seen so far. A
    /// candidate resolves (moves to `done`) once no live thread with an
    /// equal-or-earlier start could still produce a longer or earlier
    /// match — the pointwise leftmost-longest rule.
    candidates: std::collections::BTreeMap<usize, usize>,
    /// Completed matches in order.
    done: Vec<(usize, usize)>,
}

impl Scan {
    fn new(prog_len: usize) -> Self {
        Scan {
            threads: Vec::new(),
            seen: DedupTable::new(prog_len),
            min_start: 0,
            candidates: std::collections::BTreeMap::new(),
            done: Vec::new(),
        }
    }

    /// Resolves every candidate no live thread can still affect.
    fn resolve(&mut self) {
        while let Some((&s, &e)) = self.candidates.first_key_value() {
            // A thread with start ≤ s may still yield an earlier or longer
            // match; the candidate must wait.
            if self.threads.iter().any(|&(_, ts)| ts <= s) {
                break;
            }
            self.candidates.remove(&s);
            if s < self.min_start {
                continue; // swallowed by a previously resolved match
            }
            self.done.push((s, e));
            self.min_start = if e > s { e } else { e + 1 };
            // Candidates and threads inside the consumed span are dead.
            let min = self.min_start;
            self.candidates.retain(|&cs, _| cs >= min);
            self.threads.retain(|&(_, ts)| ts >= min);
        }
    }
}

/// Generation-marked `(pc, start)` dedup table (see [`Scan::seen`]).
struct DedupTable {
    generation: u32,
    marks: Vec<u32>,
    starts: Vec<Vec<usize>>,
}

impl DedupTable {
    fn new(len: usize) -> Self {
        DedupTable {
            generation: 0,
            marks: vec![0; len],
            starts: vec![Vec::new(); len],
        }
    }

    fn clear(&mut self) {
        self.generation += 1;
    }

    /// Returns `true` if `(pc, start)` was not yet present this generation.
    fn insert(&mut self, pc: usize, start: usize) -> bool {
        if self.marks[pc] != self.generation {
            self.marks[pc] = self.generation;
            self.starts[pc].clear();
            self.starts[pc].push(start);
            return true;
        }
        if self.starts[pc].contains(&start) {
            return false;
        }
        self.starts[pc].push(start);
        true
    }
}

impl MultiPattern {
    /// Compiles `patterns`; each entry is `(source, case_insensitive)`.
    pub fn new<'a>(
        patterns: impl IntoIterator<Item = (&'a str, bool)>,
    ) -> Result<Self, PatternError> {
        let programs = patterns
            .into_iter()
            .map(|(src, ci)| Ok(compile(&parse(src)?, ci)))
            .collect::<Result<Vec<_>, PatternError>>()?;
        let first_chars = programs.iter().map(FirstChars::of).collect();
        Ok(MultiPattern {
            programs,
            first_chars,
        })
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when no patterns were compiled.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Finds, in one pass over `haystack`, every pattern's non-overlapping
    /// leftmost-longest matches — byte-for-byte what
    /// `Pattern::find_iter` yields per pattern. Results are ordered by
    /// `(pattern, start)`.
    pub fn find_all(&self, haystack: &str) -> Vec<MultiMatch> {
        let mut scans: Vec<Scan> = self.programs.iter().map(|p| Scan::new(p.len())).collect();

        let hay_len = haystack.len();
        let mut chars = haystack.char_indices().peekable();
        let mut prev: Option<char> = None;
        let mut byte = 0usize;

        loop {
            let cur: Option<char> = chars.peek().map(|&(_, c)| c);
            let lookahead: Option<char> =
                cur.and_then(|c| haystack[byte + c.len_utf8()..].chars().next());

            for ((prog, fc), scan) in self.programs.iter().zip(&self.first_chars).zip(&mut scans) {
                // Fast path: nothing live, nothing pending, and the current
                // character cannot begin a match — the step is a no-op.
                if scan.threads.is_empty() && scan.candidates.is_empty() && !fc.admits(cur) {
                    continue;
                }
                step_program(prog, scan, byte, hay_len, prev, cur, lookahead);
            }

            match chars.next() {
                None => break,
                Some((_, c)) => {
                    prev = Some(c);
                    byte += c.len_utf8();
                }
            }
        }

        // Final flush: with no live threads every candidate resolves, and a
        // pattern that matches empty at end-of-input contributes the final
        // zero-width match `find_iter` reports there.
        let mut out = Vec::new();
        for (i, (prog, scan)) in self.programs.iter().zip(&mut scans).enumerate() {
            scan.threads.clear();
            scan.resolve();
            if scan.min_start <= hay_len && nullable_at(prog, hay_len, prev, hay_len) {
                scan.done.push((hay_len, hay_len));
            }
            out.extend(scan.done.iter().map(|&(start, end)| MultiMatch {
                pattern: i,
                start,
                end,
            }));
        }
        out
    }

    /// Per-pattern match counts from one pass.
    pub fn count_all(&self, haystack: &str) -> Vec<usize> {
        let mut counts = vec![0usize; self.programs.len()];
        for m in self.find_all(haystack) {
            counts[m.pattern] += 1;
        }
        counts
    }
}

/// Advances one pattern's scan by one input position (mirrors
/// `vm::search`'s inner loop, extended with candidate resolution for the
/// non-overlapping multi-match semantics).
#[allow(clippy::too_many_arguments)]
fn step_program(
    prog: &Program,
    scan: &mut Scan,
    byte: usize,
    hay_len: usize,
    prev: Option<char>,
    cur: Option<char>,
    lookahead: Option<char>,
) {
    // Inject a fresh start whenever the non-overlap rule permits one here.
    // Injection continues even while candidates are unresolved: a
    // sequential `find_iter` rescans the window after each match, which a
    // single pass cannot; threads whose start lands inside a resolved
    // match are dropped at resolution time instead.
    let mut current = std::mem::take(&mut scan.threads);
    if byte >= scan.min_start {
        scan.seen.clear();
        for &(pc, start) in &current {
            scan.seen.insert(pc, start);
        }
        add_closure(
            prog,
            &mut current,
            &mut scan.seen,
            0,
            byte,
            (byte, hay_len, prev, cur),
        );
    }

    let mut next: Vec<(usize, usize)> = Vec::new();
    scan.seen.clear();
    let nctx = cur.map(|c| (byte + c.len_utf8(), hay_len, Some(c), lookahead));

    let mut i = 0;
    while i < current.len() {
        let (pc, start) = current[i];
        i += 1;
        match &prog.insts[pc] {
            Inst::Match => {
                if start >= scan.min_start {
                    let e = scan.candidates.entry(start).or_insert(byte);
                    *e = (*e).max(byte);
                }
            }
            Inst::Char(c) => {
                if cur == Some(*c) {
                    let ctx = nctx.expect("cur is Some");
                    add_closure(prog, &mut next, &mut scan.seen, pc + 1, start, ctx);
                }
            }
            Inst::AnyChar => {
                if cur.is_some_and(|c| c != '\n') {
                    let ctx = nctx.expect("cur is Some");
                    add_closure(prog, &mut next, &mut scan.seen, pc + 1, start, ctx);
                }
            }
            Inst::Class(set) => {
                if cur.is_some_and(|c| set.contains(c)) {
                    let ctx = nctx.expect("cur is Some");
                    add_closure(prog, &mut next, &mut scan.seen, pc + 1, start, ctx);
                }
            }
            Inst::Jmp(_) | Inst::Split(_, _) | Inst::Assert(_) => {
                unreachable!("epsilon instructions never enter the dense list")
            }
        }
    }

    scan.threads = next;
    scan.resolve();
}

/// Epsilon-closure insertion shared by injection and stepping. Dedup is by
/// `(pc, start)` — see [`Scan::seen`].
fn add_closure(
    prog: &Program,
    list: &mut Vec<(usize, usize)>,
    seen: &mut DedupTable,
    pc: usize,
    start: usize,
    ctx: (usize, usize, Option<char>, Option<char>),
) {
    use crate::program::Assertion;
    let holds = |a: Assertion| match a {
        Assertion::Start => ctx.0 == 0,
        Assertion::End => ctx.0 == ctx.1,
        Assertion::WordBoundary => is_word(ctx.2) != is_word(ctx.3),
        Assertion::NotWordBoundary => is_word(ctx.2) == is_word(ctx.3),
    };
    let mut stack = vec![pc];
    while let Some(pc) = stack.pop() {
        if !seen.insert(pc, start) {
            continue;
        }
        match &prog.insts[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*b);
                stack.push(*a);
            }
            Inst::Assert(k) => {
                if holds(*k) {
                    stack.push(pc + 1);
                }
            }
            _ => list.push((pc, start)),
        }
    }
}

/// `true` when `prog` accepts the empty string at end-of-input (position
/// `at`, preceded by `prev`).
fn nullable_at(prog: &Program, at: usize, prev: Option<char>, hay_len: usize) -> bool {
    let mut list: Vec<(usize, usize)> = Vec::new();
    let mut seen = DedupTable::new(prog.len());
    seen.clear();
    add_closure(prog, &mut list, &mut seen, 0, at, (at, hay_len, prev, None));
    list.iter()
        .any(|&(pc, _)| matches!(prog.insts[pc], Inst::Match))
}

fn is_word(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;

    /// Reference: each pattern run individually.
    fn reference(patterns: &[(&str, bool)], hay: &str) -> Vec<MultiMatch> {
        let mut out = Vec::new();
        for (i, (src, ci)) in patterns.iter().enumerate() {
            let p = if *ci {
                Pattern::case_insensitive(src).unwrap()
            } else {
                Pattern::new(src).unwrap()
            };
            for m in p.find_iter(hay) {
                out.push(MultiMatch {
                    pattern: i,
                    start: m.start,
                    end: m.end,
                });
            }
        }
        out
    }

    fn check(patterns: &[(&str, bool)], hay: &str) {
        let mp = MultiPattern::new(patterns.iter().copied()).unwrap();
        assert_eq!(
            mp.find_all(hay),
            reference(patterns, hay),
            "patterns {patterns:?} on {hay:?}"
        );
    }

    #[test]
    fn agrees_with_individual_engines() {
        check(&[("died on", false), ("ab", false)], "x died on y abab");
        check(&[("a+", false), ("ab", false)], "aaab aab");
        check(&[(r"\d{2}", false), (r"\d+", false)], "1 22 333 4444");
        check(&[("x", false)], "");
        check(&[("", false)], "ab");
        check(
            &[("MEMORIAL", true), (r"[A-Z][a-z]+", false)],
            "at the memorial Chapel on Monday",
        );
        check(
            &[(r"\bcat\b", false), ("cat", false)],
            "concatenate the cat",
        );
    }

    #[test]
    fn counts_match_reference() {
        let patterns = [("died on|passed away", true), (r"\d{4}", false)];
        let hay = "A died on May 1, 1998. B PASSED AWAY June 2, 1997.";
        let mp = MultiPattern::new(patterns.iter().copied()).unwrap();
        assert_eq!(mp.count_all(hay), vec![2, 2]);
    }

    #[test]
    fn empty_pattern_set() {
        let mp = MultiPattern::new(std::iter::empty()).unwrap();
        assert!(mp.is_empty());
        assert!(mp.find_all("anything").is_empty());
    }

    #[test]
    fn bad_pattern_propagates() {
        assert!(MultiPattern::new([("(unclosed", false)]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Pattern;
    use rbd_prop::{check_cases, gen, prop_assert_eq, prop_assume, Gen};

    fn arb_pattern() -> Gen<String> {
        let atom = Gen::select(vec!["a", "b", "c", ".", "[ab]", r"\d", r"\w"]).map(String::from);
        let unit = atom
            .zip(Gen::select(vec!["", "*", "+", "?"]))
            .map(|(a, q)| format!("{a}{q}"));
        gen::concat(unit, 1..=3)
    }

    /// The property behind `equivalent_to_individual_runs`, shared with the
    /// named regression cases below.
    fn matches_individual_runs(pats: &[String], hay: &str) -> Result<(), String> {
        // Shrinking can leave an invalid pattern fragment; skip those.
        prop_assume!(pats.iter().all(|p| Pattern::new(p).is_ok()));
        let specs: Vec<(&str, bool)> = pats.iter().map(|p| (p.as_str(), false)).collect();
        let mp = MultiPattern::new(specs.iter().copied()).expect("patterns compile");
        let got = mp.find_all(hay);
        let mut expected = Vec::new();
        for (i, p) in pats.iter().enumerate() {
            let engine = Pattern::new(p).expect("patterns compile");
            for m in engine.find_iter(hay) {
                expected.push(MultiMatch {
                    pattern: i,
                    start: m.start,
                    end: m.end,
                });
            }
        }
        prop_assert_eq!(got, expected, "patterns {pats:?} on {hay:?}");
        Ok(())
    }

    /// One-pass multi matching equals per-pattern `find_iter`.
    #[test]
    fn equivalent_to_individual_runs() {
        let inputs = Gen::vec(arb_pattern(), 1..=3).zip(gen::string_from("abc01 ", 0..=16));
        check_cases(
            "equivalent_to_individual_runs",
            256,
            &inputs,
            |(pats, hay)| matches_individual_runs(pats, hay),
        );
    }

    /// Regressions distilled from historical proptest runs (the former
    /// `proptest-regressions/multi.txt` cases), kept as explicit tests.
    #[test]
    fn regression_star_only_pattern() {
        // shrinks to: pats = ["a*"], hay = "a"
        matches_individual_runs(&["a*".to_owned()], "a").unwrap();
    }

    #[test]
    fn regression_star_dot_optional_overlap() {
        // shrinks to: pats = ["b*.?."], hay = " 000c00  "
        matches_individual_runs(&["b*.?.".to_owned()], " 000c00  ").unwrap();
    }
}
