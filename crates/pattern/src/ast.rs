//! Pattern syntax tree and recursive-descent parser.

use crate::PatternError;

/// Maximum allowed bound in `{m,n}` repetitions — guards against compiling
/// enormous programs from hostile patterns.
pub const MAX_REPEAT: u32 = 256;

/// A set of character ranges, possibly negated (`[^…]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Inclusive character ranges.
    pub ranges: Vec<(char, char)>,
    /// `true` for `[^…]`.
    pub negated: bool,
}

impl ClassSet {
    /// An empty, non-negated set.
    pub fn new() -> Self {
        ClassSet {
            ranges: Vec::new(),
            negated: false,
        }
    }

    /// Adds one inclusive range.
    pub fn push_range(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    /// Adds a single character.
    pub fn push_char(&mut self, c: char) {
        self.ranges.push((c, c));
    }

    /// Membership test honouring negation.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }

    /// Extends the set with both cases of every ASCII letter it contains —
    /// used for case-insensitive compilation.
    pub fn case_fold(&mut self) {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            // Intersect with a-z / A-Z and mirror.
            // Casts are lossless: operands stay within the ASCII letter
            // ranges, so `char as i32 + 32` always fits back in a `u8`.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let fold = |a: char, b: char, from: char, to: char, delta: i32| {
                let lo = a.max(from);
                let hi = b.min(to);
                if lo <= hi {
                    let l = (lo as i32 + delta) as u8 as char;
                    let h = (hi as i32 + delta) as u8 as char;
                    Some((l, h))
                } else {
                    None
                }
            };
            if let Some(r) = fold(lo, hi, 'a', 'z', -32) {
                extra.push(r);
            }
            if let Some(r) = fold(lo, hi, 'A', 'Z', 32) {
                extra.push(r);
            }
        }
        self.ranges.extend(extra);
    }
}

impl Default for ClassSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Built-in `\d \w \s` classes (negation handled by `ClassSet::negated`).
fn digit_class() -> Vec<(char, char)> {
    vec![('0', '9')]
}
fn word_class() -> Vec<(char, char)> {
    vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')]
}
fn space_class() -> Vec<(char, char)> {
    vec![('\t', '\r'), (' ', ' '), ('\u{A0}', '\u{A0}')]
}

/// Parsed pattern syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(ClassSet),
    /// Concatenation, in order.
    Concat(Vec<Ast>),
    /// Alternation (`a|b|c`).
    Alternate(Vec<Ast>),
    /// Repetition of the inner pattern.
    Repeat {
        /// Repeated subpattern.
        inner: Box<Ast>,
        /// Minimum count.
        min: u32,
        /// Maximum count, `None` = unbounded.
        max: Option<u32>,
        /// `false` for lazy (`*?`) variants.
        greedy: bool,
    },
    /// `^` — start of haystack.
    StartAnchor,
    /// `$` — end of haystack.
    EndAnchor,
    /// `\b` word boundary.
    WordBoundary,
    /// `\B` non-word-boundary.
    NotWordBoundary,
}

/// Parses a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, PatternError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
    };
    let ast = p.alternate()?;
    if p.pos != p.chars.len() {
        return Err(p.error("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> PatternError {
        PatternError {
            message: message.to_owned(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `alternate := concat ('|' concat)*`
    fn alternate(&mut self) -> Result<Ast, PatternError> {
        let mut arms = vec![self.concat()?];
        while self.eat('|') {
            arms.push(self.concat()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Ast::Alternate(arms)
        })
    }

    /// `concat := repeat*` — stops at `|`, `)` or end.
    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    /// `repeat := atom ('*'|'+'|'?'|'{m,n}')? '?'?`
    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => match self.try_bounded_repeat()? {
                Some(b) => b,
                None => return Ok(atom),
            },
            _ => return Ok(atom),
        };
        if matches!(
            atom,
            Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            return Err(self.error("cannot repeat an anchor"));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parses `{m}`, `{m,}` or `{m,n}`; returns `None` (and rewinds) when the
    /// braces don't form a repetition, treating `{` as a literal.
    fn try_bounded_repeat(&mut self) -> Result<Option<(u32, Option<u32>)>, PatternError> {
        let save = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let min = self.number();
        let Some(min) = min else {
            self.pos = save;
            return Ok(None);
        };
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                match self.number() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = save;
                        return Ok(None);
                    }
                }
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            self.pos = save;
            return Ok(None);
        }
        if min > MAX_REPEAT || max.is_some_and(|m| m > MAX_REPEAT) {
            return Err(self.error("repetition bound too large"));
        }
        if let Some(m) = max {
            if min > m {
                return Err(self.error("invalid repetition range (min > max)"));
            }
        }
        Ok(Some((min, max)))
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    /// `atom := '(' alternate ')' | class | escape | anchor | literal`
    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.peek() {
            None => Err(self.error("expected an atom")),
            Some('(') => {
                self.bump();
                // Accept and ignore the non-capturing group marker.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.bump();
                    if !self.eat(':') {
                        self.pos = save;
                        return Err(self.error("only (?: …) groups are supported"));
                    }
                }
                let inner = self.alternate()?;
                if !self.eat(')') {
                    return Err(self.error("missing closing ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.class()
            }
            Some('\\') => {
                self.bump();
                self.escape()
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('*') | Some('+') | Some('?') => Err(self.error("dangling quantifier")),
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    /// Body of a character class, after the opening `[`.
    fn class(&mut self) -> Result<Ast, PatternError> {
        let mut set = ClassSet::new();
        set.negated = self.eat('^');
        // A leading `]` is a literal.
        if self.eat(']') {
            set.push_char(']');
        }
        loop {
            let c = match self.bump() {
                None => return Err(self.error("missing closing ']'")),
                Some(']') => break,
                Some('\\') => match self.bump() {
                    None => return Err(self.error("trailing backslash in class")),
                    Some(e) => {
                        if let Some(ranges) = builtin_class(e) {
                            set.ranges.extend(ranges);
                            continue;
                        }
                        escape_char(e)
                    }
                },
                Some(c) => c,
            };
            // Possible range `c-d`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    None => return Err(self.error("missing closing ']'")),
                    Some('\\') => match self.bump() {
                        None => return Err(self.error("trailing backslash in class")),
                        Some(e) => escape_char(e),
                    },
                    Some(h) => h,
                };
                if c > hi {
                    return Err(self.error("invalid class range (lo > hi)"));
                }
                set.push_range(c, hi);
            } else {
                set.push_char(c);
            }
        }
        Ok(Ast::Class(set))
    }

    /// An escape outside a class, after the backslash.
    fn escape(&mut self) -> Result<Ast, PatternError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error("trailing backslash"))?;
        if let Some(ranges) = builtin_class(c) {
            let negated = c.is_ascii_uppercase();
            return Ok(Ast::Class(ClassSet { ranges, negated }));
        }
        match c {
            'b' => Ok(Ast::WordBoundary),
            'B' => Ok(Ast::NotWordBoundary),
            _ => Ok(Ast::Literal(escape_char(c))),
        }
    }
}

/// Ranges for `\d \D \w \W \s \S` (the uppercase variants return the same
/// ranges; the caller negates). `None` for non-class escapes.
fn builtin_class(c: char) -> Option<Vec<(char, char)>> {
    match c {
        'd' | 'D' => Some(digit_class()),
        'w' | 'W' => Some(word_class()),
        's' | 'S' => Some(space_class()),
        _ => None,
    }
}

/// Single-character escapes: `\n \t \r \0`; anything else is the character
/// itself (`\. \$ \\` …).
fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
        assert_eq!(parse("a").unwrap(), Ast::Literal('a'));
        assert_eq!(parse("").unwrap(), Ast::Empty);
    }

    #[test]
    fn alternation_precedence() {
        // `ab|c` is (ab)|(c), not a(b|c).
        let Ast::Alternate(arms) = parse("ab|c").unwrap() else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(
            arms[0],
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn repetition_forms() {
        let Ast::Repeat {
            min, max, greedy, ..
        } = parse("a{2,5}").unwrap()
        else {
            panic!()
        };
        assert_eq!((min, max, greedy), (2, Some(5), true));
        let Ast::Repeat { min, max, .. } = parse("a{3}").unwrap() else {
            panic!()
        };
        assert_eq!((min, max), (3, Some(3)));
        let Ast::Repeat { min, max, .. } = parse("a{3,}").unwrap() else {
            panic!()
        };
        assert_eq!((min, max), (3, None));
        let Ast::Repeat { greedy, .. } = parse("a*?").unwrap() else {
            panic!()
        };
        assert!(!greedy);
    }

    #[test]
    fn braces_without_number_are_literal() {
        // `{x}` is not a repetition: treat `{` literally, like most engines.
        let ast = parse("a{x}").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('x'),
                Ast::Literal('}'),
            ])
        );
    }

    #[test]
    fn class_parsing() {
        let Ast::Class(set) = parse("[a-z0-9_]").unwrap() else {
            panic!()
        };
        assert!(set.contains('q'));
        assert!(set.contains('5'));
        assert!(set.contains('_'));
        assert!(!set.contains('Q'));

        let Ast::Class(set) = parse("[^abc]").unwrap() else {
            panic!()
        };
        assert!(!set.contains('a'));
        assert!(set.contains('d'));
    }

    #[test]
    fn class_leading_bracket_literal() {
        let Ast::Class(set) = parse("[]a]").unwrap() else {
            panic!()
        };
        assert!(set.contains(']'));
        assert!(set.contains('a'));
    }

    #[test]
    fn class_trailing_dash_literal() {
        let Ast::Class(set) = parse("[a-]").unwrap() else {
            panic!()
        };
        assert!(set.contains('-'));
        assert!(set.contains('a'));
    }

    #[test]
    fn builtin_classes_inside_class() {
        let Ast::Class(set) = parse(r"[\d,]").unwrap() else {
            panic!()
        };
        assert!(set.contains('7'));
        assert!(set.contains(','));
    }

    #[test]
    fn negated_builtins() {
        let Ast::Class(set) = parse(r"\D").unwrap() else {
            panic!()
        };
        assert!(set.negated);
        assert!(!set.contains('5'));
        assert!(set.contains('x'));
    }

    #[test]
    fn non_capturing_group() {
        assert!(parse("(?:ab)+").is_ok());
        assert!(parse("(?<name>x)").is_err());
    }

    #[test]
    fn anchor_repeat_rejected() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }

    #[test]
    fn repeat_bound_limits() {
        assert!(parse("a{1000}").is_err());
        assert!(parse("a{256}").is_ok());
    }

    #[test]
    fn case_fold_classes() {
        let mut set = ClassSet::new();
        set.push_range('a', 'f');
        set.case_fold();
        assert!(set.contains('C'));
        assert!(set.contains('c'));
        assert!(!set.contains('g'));
        assert!(!set.contains('G'));
    }

    #[test]
    fn case_fold_partial_overlap() {
        let mut set = ClassSet::new();
        set.push_range('X', 'c'); // spans Z-a punctuation gap
        set.case_fold();
        assert!(set.contains('x'));
        assert!(set.contains('C'));
        assert!(set.contains('[')); // the original range includes it
    }
}
