//! Differential testing: the Pike VM against a naive backtracking reference
//! interpreter over the same AST. On small random patterns and haystacks,
//! `is_match` must agree exactly; leftmost-longest `find` spans are checked
//! against the reference's exhaustive enumeration.

use proptest::prelude::*;
use rbd_pattern::ast::{parse, Ast};
use rbd_pattern::Pattern;

/// Naive matcher: can `ast` match some prefix of `chars[pos..]`? Returns
/// every end position (exhaustive, exponential — fine for tiny inputs).
fn match_ends(ast: &Ast, chars: &[char], pos: usize, total: usize) -> Vec<usize> {
    match ast {
        Ast::Empty => vec![pos],
        Ast::Literal(c) => {
            if chars.get(pos) == Some(c) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::AnyChar => {
            if chars.get(pos).is_some_and(|&c| c != '\n') {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Class(set) => {
            if chars.get(pos).is_some_and(|&c| set.contains(c)) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Concat(items) => {
            let mut ends = vec![pos];
            for item in items {
                let mut next = Vec::new();
                for &e in &ends {
                    next.extend(match_ends(item, chars, e, total));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    return vec![];
                }
                ends = next;
            }
            ends
        }
        Ast::Alternate(arms) => {
            let mut ends: Vec<usize> = arms
                .iter()
                .flat_map(|a| match_ends(a, chars, pos, total))
                .collect();
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Ast::Repeat {
            inner, min, max, ..
        } => {
            // Breadth-first expansion with a visited set; greediness does
            // not matter for the set of reachable ends.
            let max = max.unwrap_or(u32::MAX).min(16);
            let mut layer = vec![pos];
            let mut all: Vec<(u32, usize)> = vec![(0, pos)];
            for depth in 1..=max {
                let mut next = Vec::new();
                for &e in &layer {
                    for e2 in match_ends(inner, chars, e, total) {
                        if !next.contains(&e2) {
                            next.push(e2);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                for &e in &next {
                    all.push((depth, e));
                }
                if next == layer {
                    break; // empty-width fixpoint
                }
                layer = next;
            }
            let mut ends: Vec<usize> = all
                .into_iter()
                .filter(|(d, _)| *d >= *min)
                .map(|(_, e)| e)
                .collect();
            if *min == 0 {
                ends.push(pos);
            }
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Ast::StartAnchor => {
            if pos == 0 {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::EndAnchor => {
            if pos == total {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::WordBoundary | Ast::NotWordBoundary => {
            let is_word = |c: Option<&char>| c.is_some_and(|c| c.is_alphanumeric() || *c == '_');
            let prev = if pos == 0 { None } else { chars.get(pos - 1) };
            let next = chars.get(pos);
            let boundary = is_word(prev) != is_word(next);
            let want = matches!(ast, Ast::WordBoundary);
            if boundary == want {
                vec![pos]
            } else {
                vec![]
            }
        }
    }
}

/// Reference leftmost-longest search.
fn reference_find(ast: &Ast, haystack: &str) -> Option<(usize, usize)> {
    let chars: Vec<char> = haystack.chars().collect();
    // Char index → byte offset map.
    let mut byte_of = Vec::with_capacity(chars.len() + 1);
    let mut b = 0;
    for c in &chars {
        byte_of.push(b);
        b += c.len_utf8();
    }
    byte_of.push(b);

    for start in 0..=chars.len() {
        let ends = match_ends(ast, &chars, start, chars.len());
        if let Some(&best) = ends.iter().max() {
            return Some((byte_of[start], byte_of[best]));
        }
    }
    None
}

/// A small pattern grammar that stays within the reference matcher's reach.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "x", "."]).prop_map(String::from),
        Just("[ab]".to_owned()),
        Just("[^a]".to_owned()),
        Just(r"\d".to_owned()),
        Just(r"\w".to_owned()),
    ];
    let unit = (
        atom,
        prop::sample::select(vec!["", "*", "+", "?", "{2}", "{1,3}"]),
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    prop::collection::vec(unit, 1..5).prop_map(|units| {
        // Sprinkle an alternation bar occasionally by joining halves.
        units.concat()
    })
}

fn arb_alt_pattern() -> impl Strategy<Value = String> {
    (arb_pattern(), arb_pattern(), any::<bool>()).prop_map(|(a, b, alt)| {
        if alt {
            format!("{a}|{b}")
        } else {
            format!("({a})({b})")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn is_match_agrees_with_reference(
        pattern in arb_alt_pattern(),
        haystack in "[abcx01 ]{0,10}",
    ) {
        let ast = parse(&pattern).expect("generated patterns are valid");
        let engine = Pattern::new(&pattern).expect("compiles");
        let expected = reference_find(&ast, &haystack).is_some();
        prop_assert_eq!(
            engine.is_match(&haystack),
            expected,
            "pattern {} on {:?}",
            pattern,
            haystack
        );
    }

    #[test]
    fn find_span_agrees_with_reference(
        pattern in arb_pattern(),
        haystack in "[abcx01 ]{0,10}",
    ) {
        let ast = parse(&pattern).expect("valid");
        let engine = Pattern::new(&pattern).expect("compiles");
        let expected = reference_find(&ast, &haystack);
        let got = engine.find(&haystack).map(|m| (m.start, m.end));
        prop_assert_eq!(got, expected, "pattern {} on {:?}", pattern, haystack);
    }

    #[test]
    fn count_matches_terminates_and_is_bounded(
        pattern in arb_pattern(),
        haystack in "[abcx01 ]{0,24}",
    ) {
        let engine = Pattern::new(&pattern).expect("compiles");
        let n = engine.count_matches(&haystack);
        // At most one match can start per character position plus the end.
        prop_assert!(n <= haystack.chars().count() + 1);
    }
}
