//! Differential testing: the Pike VM against a naive backtracking reference
//! interpreter over the same AST. On small random patterns and haystacks,
//! `is_match` must agree exactly; leftmost-longest `find` spans are checked
//! against the reference's exhaustive enumeration.

use rbd_pattern::ast::{parse, Ast};
use rbd_pattern::Pattern;
use rbd_prop::{check_cases, gen, prop_assert, prop_assert_eq, prop_assume, shrink, Gen};

/// Naive matcher: can `ast` match some prefix of `chars[pos..]`? Returns
/// every end position (exhaustive, exponential — fine for tiny inputs).
fn match_ends(ast: &Ast, chars: &[char], pos: usize, total: usize) -> Vec<usize> {
    match ast {
        Ast::Empty => vec![pos],
        Ast::Literal(c) => {
            if chars.get(pos) == Some(c) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::AnyChar => {
            if chars.get(pos).is_some_and(|&c| c != '\n') {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Class(set) => {
            if chars.get(pos).is_some_and(|&c| set.contains(c)) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Concat(items) => {
            let mut ends = vec![pos];
            for item in items {
                let mut next = Vec::new();
                for &e in &ends {
                    next.extend(match_ends(item, chars, e, total));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    return vec![];
                }
                ends = next;
            }
            ends
        }
        Ast::Alternate(arms) => {
            let mut ends: Vec<usize> = arms
                .iter()
                .flat_map(|a| match_ends(a, chars, pos, total))
                .collect();
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Ast::Repeat {
            inner, min, max, ..
        } => {
            // Breadth-first expansion with a visited set; greediness does
            // not matter for the set of reachable ends.
            let max = max.unwrap_or(u32::MAX).min(16);
            let mut layer = vec![pos];
            let mut all: Vec<(u32, usize)> = vec![(0, pos)];
            for depth in 1..=max {
                let mut next = Vec::new();
                for &e in &layer {
                    for e2 in match_ends(inner, chars, e, total) {
                        if !next.contains(&e2) {
                            next.push(e2);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                for &e in &next {
                    all.push((depth, e));
                }
                if next == layer {
                    break; // empty-width fixpoint
                }
                layer = next;
            }
            let mut ends: Vec<usize> = all
                .into_iter()
                .filter(|(d, _)| *d >= *min)
                .map(|(_, e)| e)
                .collect();
            if *min == 0 {
                ends.push(pos);
            }
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Ast::StartAnchor => {
            if pos == 0 {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::EndAnchor => {
            if pos == total {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::WordBoundary | Ast::NotWordBoundary => {
            let is_word = |c: Option<&char>| c.is_some_and(|c| c.is_alphanumeric() || *c == '_');
            let prev = if pos == 0 { None } else { chars.get(pos - 1) };
            let next = chars.get(pos);
            let boundary = is_word(prev) != is_word(next);
            let want = matches!(ast, Ast::WordBoundary);
            if boundary == want {
                vec![pos]
            } else {
                vec![]
            }
        }
    }
}

/// Reference leftmost-longest search.
fn reference_find(ast: &Ast, haystack: &str) -> Option<(usize, usize)> {
    let chars: Vec<char> = haystack.chars().collect();
    // Char index → byte offset map.
    let mut byte_of = Vec::with_capacity(chars.len() + 1);
    let mut b = 0;
    for c in &chars {
        byte_of.push(b);
        b += c.len_utf8();
    }
    byte_of.push(b);

    for start in 0..=chars.len() {
        let ends = match_ends(ast, &chars, start, chars.len());
        if let Some(&best) = ends.iter().max() {
            return Some((byte_of[start], byte_of[best]));
        }
    }
    None
}

/// A small pattern grammar that stays within the reference matcher's reach.
///
/// Shrinking removes characters from the rendered pattern, which can leave
/// an invalid pattern (e.g. a leading quantifier) — the properties guard
/// with `prop_assume!` so such candidates are skipped, not failed.
fn arb_pattern() -> Gen<String> {
    let atom = Gen::one_of(vec![
        Gen::select(vec!["a", "b", "c", "x", "."]).map(String::from),
        Gen::just("[ab]".to_owned()),
        Gen::just("[^a]".to_owned()),
        Gen::just(r"\d".to_owned()),
        Gen::just(r"\w".to_owned()),
    ]);
    let unit = atom
        .zip(Gen::select(vec!["", "*", "+", "?", "{2}", "{1,3}"]))
        .map(|(a, q)| format!("{a}{q}"));
    gen::concat(unit, 1..=4)
}

fn arb_alt_pattern() -> Gen<String> {
    let alt = Gen::new(|rng| rng.random_bool(0.5));
    gen::zip3(arb_pattern(), arb_pattern(), alt)
        .map(|(a, b, alt)| {
            if alt {
                format!("{a}|{b}")
            } else {
                format!("({a})({b})")
            }
        })
        .with_shrink(|s: &String| shrink::string(s))
}

fn haystack_gen(max: usize) -> Gen<String> {
    gen::string_from("abcx01 ", 0..=max)
}

#[test]
fn is_match_agrees_with_reference() {
    let inputs = arb_alt_pattern().zip(haystack_gen(10));
    check_cases(
        "is_match_agrees_with_reference",
        256,
        &inputs,
        |(pattern, haystack)| {
            let parsed = parse(pattern);
            prop_assume!(parsed.is_ok()); // shrunk patterns may be invalid
            let ast = parsed.expect("checked");
            let engine = Pattern::new(pattern).expect("parsed patterns compile");
            let expected = reference_find(&ast, haystack).is_some();
            prop_assert_eq!(
                engine.is_match(haystack),
                expected,
                "pattern {pattern} on {haystack:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn find_span_agrees_with_reference() {
    let inputs = arb_pattern().zip(haystack_gen(10));
    check_cases(
        "find_span_agrees_with_reference",
        256,
        &inputs,
        |(pattern, haystack)| {
            let parsed = parse(pattern);
            prop_assume!(parsed.is_ok());
            let ast = parsed.expect("checked");
            let engine = Pattern::new(pattern).expect("parsed patterns compile");
            let expected = reference_find(&ast, haystack);
            let got = engine.find(haystack).map(|m| (m.start, m.end));
            prop_assert_eq!(got, expected, "pattern {pattern} on {haystack:?}");
            Ok(())
        },
    );
}

#[test]
fn count_matches_terminates_and_is_bounded() {
    let inputs = arb_pattern().zip(haystack_gen(24));
    check_cases(
        "count_matches_terminates_and_is_bounded",
        256,
        &inputs,
        |(pattern, haystack)| {
            prop_assume!(parse(pattern).is_ok());
            let engine = Pattern::new(pattern).expect("parsed patterns compile");
            let n = engine.count_matches(haystack);
            // At most one match can start per character position plus the end.
            prop_assert!(n <= haystack.chars().count() + 1);
            Ok(())
        },
    );
}
