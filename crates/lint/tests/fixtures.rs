//! Every violation fixture must produce at least one deny-severity finding
//! for its rule, and every clean fixture must produce none — the acceptance
//! contract of `rbd-lint`.

use rbd_lint::{has_deny, lint_path, Rule};
use std::path::PathBuf;

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn assert_denies(rel: &str, rule: Rule) {
    let findings = lint_path(&fixture(rel)).unwrap_or_else(|e| panic!("reading {rel}: {e}"));
    assert!(
        has_deny(&findings),
        "{rel} should produce deny findings, got {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "{rel} should trigger `{rule}`, got {findings:?}"
    );
}

#[test]
fn unwrap_fixture_denies() {
    assert_denies("violations/unwrap.rs", Rule::Panic);
}

#[test]
fn expect_fixture_denies() {
    assert_denies("violations/expect.rs", Rule::Panic);
}

#[test]
fn panic_macro_fixture_denies() {
    assert_denies("violations/panic_macro.rs", Rule::Panic);
}

#[test]
fn indexing_fixture_denies() {
    assert_denies("violations/indexing.rs", Rule::Panic);
}

#[test]
fn cast_fixture_denies() {
    assert_denies("violations/cast.rs", Rule::Cast);
}

#[test]
fn wildcard_fixture_denies() {
    assert_denies("violations/wildcard_match.rs", Rule::WildcardMatch);
}

#[test]
fn bad_allow_fixture_denies_and_does_not_suppress() {
    assert_denies("violations/bad_allow.rs", Rule::BadAllow);
    assert_denies("violations/bad_allow.rs", Rule::Panic);
}

#[test]
fn missing_forbid_unsafe_fixture_denies() {
    assert_denies("violations/missing_forbid_unsafe", Rule::ForbidUnsafe);
}

#[test]
fn allowed_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/allowed.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn test_only_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/test_only.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn compliant_crate_root_is_clean() {
    let findings = lint_path(&fixture("clean/forbidden")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The workspace must pass its own linter: zero deny findings from the repo
/// this test compiles inside. This is the same check CI runs via
/// `cargo run -p rbd-lint`.
#[test]
fn workspace_is_deny_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let findings = rbd_lint::lint_workspace(&root).expect("workspace readable");
    let denies: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == rbd_lint::Severity::Deny)
        .collect();
    assert!(denies.is_empty(), "deny findings: {denies:#?}");
}

/// The in-tree dependency replacements (`rbd-json`, `rbd-prop`) are
/// workspace members like any other: the linter must classify and scan
/// them, and their sources must lint cleanly at library tier.
#[test]
fn in_tree_harness_crates_are_scanned() {
    use rbd_lint::{lint_crate_src, tier_of, Tier};

    assert_eq!(tier_of("json"), Tier::Library);
    assert_eq!(tier_of("prop"), Tier::Library);

    let crates_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("lint crate lives under crates/")
        .to_path_buf();
    for name in ["json", "prop"] {
        let src = crates_dir.join(name).join("src");
        assert!(src.is_dir(), "crates/{name}/src must exist");
        let findings = lint_crate_src(&src, tier_of(name)).expect("sources readable");
        assert!(
            !rbd_lint::has_deny(&findings),
            "crates/{name} has deny findings: {findings:#?}"
        );
    }
}

#[test]
fn degradation_drop_fixture_denies() {
    assert_denies("violations/degradation_drop.rs", Rule::Observability);
}

#[test]
fn degradation_emitted_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/degradation_emitted.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn concurrency_fixture_denies_spawn_and_unbounded_channel() {
    assert_denies("violations/concurrency.rs", Rule::Concurrency);
    let findings = lint_path(&fixture("violations/concurrency.rs")).expect("fixture readable");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::Concurrency)
        .collect();
    assert_eq!(hits.len(), 2, "spawn + unbounded channel: {hits:?}");
}

#[test]
fn bounded_concurrency_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/concurrency_bounded.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn serve_accept_without_timeouts_fixture_denies() {
    assert_denies("violations/serve/accept_no_timeout.rs", Rule::Concurrency);
}

#[test]
fn serve_accept_with_timeouts_fixture_is_clean() {
    let findings =
        lint_path(&fixture("clean/serve/accept_with_timeouts.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn budget_fixture_denies_allocation_and_recursion() {
    assert_denies("violations/budget.rs", Rule::Budget);
    let findings = lint_path(&fixture("violations/budget.rs")).expect("fixture readable");
    let budget: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Budget).collect();
    assert_eq!(budget.len(), 2, "allocation + recursion: {budget:?}");
}

#[test]
fn lock_order_fixture_denies() {
    assert_denies("violations/lock_order.rs", Rule::LockOrder);
}

#[test]
fn declared_lock_order_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/lock_order_declared.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn guard_blocking_fixture_denies_send_recv_and_join() {
    assert_denies("violations/guard_blocking.rs", Rule::GuardAcrossBlocking);
    let findings = lint_path(&fixture("violations/guard_blocking.rs")).expect("fixture readable");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::GuardAcrossBlocking)
        .collect();
    assert_eq!(hits.len(), 3, "send + recv + join under guard: {hits:?}");
}

#[test]
fn guard_released_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/guard_released.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn swallowed_error_fixture_denies_both_patterns() {
    assert_denies("violations/swallowed_error.rs", Rule::SwallowedError);
    let findings = lint_path(&fixture("violations/swallowed_error.rs")).expect("fixture readable");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SwallowedError)
        .collect();
    assert_eq!(hits.len(), 2, "`let _ =` + trailing `.ok();`: {hits:?}");
}

#[test]
fn error_traced_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/error_traced.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn metric_name_fixture_denies_each_bad_literal() {
    assert_denies("violations/metric_name.rs", Rule::MetricName);
    let findings = lint_path(&fixture("violations/metric_name.rs")).expect("fixture readable");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::MetricName)
        .collect();
    assert_eq!(hits.len(), 3, "unprefixed + colon + CamelCase: {hits:?}");
}

#[test]
fn metric_name_prefixed_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/metric_name.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn store_unsynced_commit_fixture_denies() {
    assert_denies("violations/store/unsynced_commit.rs", Rule::StoreDurability);
}

#[test]
fn store_synced_commit_fixture_is_clean() {
    let findings = lint_path(&fixture("clean/store/synced_commit.rs")).expect("fixture readable");
    assert!(findings.is_empty(), "{findings:?}");
}

/// The linter passes over itself at the strict tier — the same check CI
/// runs as the `lint-self` job.
#[test]
fn lint_crate_is_deny_clean_at_strict_tier() {
    let findings = lint_path(&PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src"))
        .expect("lint sources readable");
    assert!(
        !has_deny(&findings),
        "rbd-lint fails its own strict tier: {findings:#?}"
    );
}
