//! Token stream and block structure over the masked source.
//!
//! [`crate::source::analyze`] blanks string/char/comment interiors but keeps
//! every code byte in place; this module lexes that masked text into typed
//! tokens, matches `{}`/`()`/`[]` delimiter pairs over the token stream, and
//! indexes `fn` items with their body spans. The rules operate on these
//! tokens instead of raw substrings, so an identifier that merely *contains*
//! a rule keyword (`try_unwrap_or`, `unwrap_budget`, `recv_result`) can
//! never match, and whitespace between a method name and its parentheses no
//! longer defeats a needle.

use crate::source::is_ident_byte;

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including the lone underscore pattern `_`.
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// String, byte-string, or char literal (interior already masked).
    Literal,
    /// Numeric literal.
    Number,
    /// Punctuation; `::`, `->` and `=>` lex as a single token.
    Punct,
}

/// One token: its kind plus the byte span in the masked source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Start byte offset into the masked source (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

/// Lexes the masked source into tokens. Masking guarantees that every
/// remaining `'` is either a lifetime head or a char-literal quote with a
/// blanked interior, and that string quotes are balanced except at EOF.
pub fn lex(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'\'' {
            if bytes.get(i + 1).is_some_and(|&c| is_ident_byte(c)) {
                // Lifetime: masking blanked every char-literal interior, so
                // an ident byte after `'` can only start a lifetime name.
                let mut j = i + 1;
                while bytes.get(j).is_some_and(|&c| is_ident_byte(c)) {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Lifetime,
                    start: i,
                    end: j,
                });
                i = j;
            } else {
                // Masked char literal: scan to the closing quote on the
                // same line; a stray quote falls back to punctuation.
                let mut j = i + 1;
                let mut closed = false;
                while let Some(&c) = bytes.get(j) {
                    if c == b'\'' {
                        closed = true;
                        j += 1;
                        break;
                    }
                    if c == b'\n' {
                        break;
                    }
                    j += 1;
                }
                if closed {
                    toks.push(Token {
                        kind: TokenKind::Literal,
                        start: i,
                        end: j,
                    });
                    i = j;
                } else {
                    toks.push(Token {
                        kind: TokenKind::Punct,
                        start: i,
                        end: i + 1,
                    });
                    i += 1;
                }
            }
            continue;
        }
        if b == b'"' {
            let mut j = i + 1;
            while let Some(&c) = bytes.get(j) {
                j += 1;
                if c == b'"' {
                    break;
                }
            }
            toks.push(Token {
                kind: TokenKind::Literal,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }
        if b.is_ascii_digit() {
            let mut j = i + 1;
            while bytes.get(j).is_some_and(|&c| is_ident_byte(c)) {
                j += 1;
            }
            // A decimal point joins only when a digit follows, so `1..5`
            // stays three tokens while `1.5` and `1.0e3` stay one.
            if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                j += 2;
                while bytes.get(j).is_some_and(|&c| is_ident_byte(c)) {
                    j += 1;
                }
            }
            toks.push(Token {
                kind: TokenKind::Number,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }
        if is_ident_byte(b) {
            let mut j = i + 1;
            while bytes.get(j).is_some_and(|&c| is_ident_byte(c)) {
                j += 1;
            }
            toks.push(Token {
                kind: TokenKind::Ident,
                start: i,
                end: j,
            });
            i = j;
            continue;
        }
        let pair = [b, bytes.get(i + 1).copied().unwrap_or(b' ')];
        let len = match pair {
            [b':', b':'] | [b'-', b'>'] | [b'=', b'>'] => 2,
            _ => 1,
        };
        toks.push(Token {
            kind: TokenKind::Punct,
            start: i,
            end: i + len,
        });
        i += len;
    }
    toks
}

/// Matched `{}`/`()`/`[]` delimiter pairs over a token stream.
#[derive(Debug)]
pub struct Blocks {
    close_of: Vec<Option<usize>>,
    open_of: Vec<Option<usize>>,
}

impl Blocks {
    /// Pairs up delimiters with a stack; mismatched closers are ignored
    /// rather than force-matched, so one stray brace cannot skew every
    /// later pairing.
    pub fn build(masked: &str, toks: &[Token]) -> Blocks {
        let mut close_of = vec![None; toks.len()];
        let mut open_of = vec![None; toks.len()];
        let mut stack: Vec<(usize, u8)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Punct || t.end != t.start + 1 {
                continue;
            }
            let b = masked.as_bytes().get(t.start).copied().unwrap_or(b' ');
            match b {
                b'{' | b'(' | b'[' => stack.push((i, b)),
                b'}' | b')' | b']' => {
                    let want = match b {
                        b'}' => b'{',
                        b')' => b'(',
                        _ => b'[',
                    };
                    if stack.last().is_some_and(|&(_, o)| o == want) {
                        if let Some((open, _)) = stack.pop() {
                            if let Some(slot) = close_of.get_mut(open) {
                                *slot = Some(i);
                            }
                            if let Some(slot) = open_of.get_mut(i) {
                                *slot = Some(open);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Blocks { close_of, open_of }
    }

    /// Token index of the closer matching the opener at `open`.
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.close_of.get(open).copied().flatten()
    }

    /// Token index of the opener matching the closer at `close`.
    pub fn open_of(&self, close: usize) -> Option<usize> {
        self.open_of.get(close).copied().flatten()
    }
}

/// A `fn` item with its brace-delimited body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's `}`.
    pub body_close: usize,
}

/// Everything the token-level rules need for one file: the stream, the
/// delimiter pairing, and the function index, all over the masked source.
#[derive(Debug)]
pub struct Model<'a> {
    /// The masked source the spans index into.
    pub masked: &'a str,
    /// The token stream.
    pub toks: Vec<Token>,
    /// Delimiter pairing over [`Model::toks`].
    pub blocks: Blocks,
    /// Every `fn` item with a body, in document order.
    pub fns: Vec<FnItem>,
}

impl<'a> Model<'a> {
    /// Lexes and indexes one masked file.
    pub fn build(masked: &'a str) -> Model<'a> {
        let toks = lex(masked);
        let blocks = Blocks::build(masked, &toks);
        let fns = fn_items(masked, &toks, &blocks);
        Model {
            masked,
            toks,
            blocks,
            fns,
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// `true` when the file lexed to no tokens at all.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Text of token `i`; empty for out-of-range indexes.
    pub fn text(&self, i: usize) -> &'a str {
        self.toks
            .get(i)
            .and_then(|t| self.masked.get(t.start..t.end))
            .unwrap_or("")
    }

    /// Kind of token `i`, if in range.
    pub fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Start byte offset of token `i` (0 when out of range).
    pub fn start(&self, i: usize) -> usize {
        self.toks.get(i).map(|t| t.start).unwrap_or(0)
    }

    /// End byte offset of token `i` (0 when out of range). Masking
    /// preserves byte offsets, so the span is valid in the raw source too.
    pub fn end(&self, i: usize) -> usize {
        self.toks.get(i).map(|t| t.end).unwrap_or(0)
    }

    /// `true` when token `i` is the identifier `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.kind(i) == Some(TokenKind::Ident) && self.text(i) == s
    }

    /// `true` when token `i` is the punctuation `s`.
    pub fn is_punct(&self, i: usize, s: &str) -> bool {
        self.kind(i) == Some(TokenKind::Punct) && self.text(i) == s
    }

    /// The innermost `fn` whose body strictly contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body_open < i && i < f.body_close)
            .max_by_key(|f| f.body_open)
    }

    /// The masked text of a function's body, braces included.
    pub fn body_text(&self, f: &FnItem) -> &'a str {
        let s = self.start(f.body_open);
        let e = self.toks.get(f.body_close).map(|t| t.end).unwrap_or(s);
        self.masked.get(s..e).unwrap_or("")
    }
}

/// Indexes every `fn` item that has a body. The body opens at the first
/// `{` found at zero paren/bracket depth after the name (delimited groups
/// are skipped via [`Blocks`], so generic bounds like `Fn(u8)` cannot
/// confuse the scan); a `;` first means a bodyless signature. `fn` pointer
/// types (`fn(u8) -> u8`) have no name identifier and are skipped.
fn fn_items(masked: &str, toks: &[Token], blocks: &Blocks) -> Vec<FnItem> {
    let text = |i: usize| {
        toks.get(i)
            .and_then(|t| masked.get(t.start..t.end))
            .unwrap_or("")
    };
    let is_kind = |i: usize, k: TokenKind| toks.get(i).is_some_and(|t| t.kind == k);
    let is_punct = |i: usize, s: &str| is_kind(i, TokenKind::Punct) && text(i) == s;

    let mut items = Vec::new();
    for i in 0..toks.len() {
        if !(is_kind(i, TokenKind::Ident) && text(i) == "fn") {
            continue;
        }
        if !is_kind(i + 1, TokenKind::Ident) {
            continue;
        }
        let name = text(i + 1).to_owned();
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            if is_punct(j, "(") || is_punct(j, "[") {
                j = blocks.close_of(j).map(|c| c + 1).unwrap_or(toks.len());
                continue;
            }
            if is_punct(j, "{") {
                body = blocks.close_of(j).map(|close| (j, close));
                break;
            }
            if is_punct(j, ";") {
                break;
            }
            j += 1;
        }
        if let Some((body_open, body_close)) = body {
            items.push(FnItem {
                name,
                fn_tok: i,
                body_open,
                body_close,
            });
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze;

    fn model_of(src: &str) -> (String, Vec<Token>) {
        let a = analyze(src);
        let toks = lex(&a.masked);
        (a.masked, toks)
    }

    fn texts(src: &str) -> Vec<String> {
        let (masked, toks) = model_of(src);
        toks.iter()
            .map(|t| masked[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_numbers() {
        assert_eq!(
            texts("let x = foo(1, 2);"),
            ["let", "x", "=", "foo", "(", "1", ",", "2", ")", ";"]
        );
    }

    #[test]
    fn joins_multichar_puncts() {
        assert_eq!(
            texts("a::b -> c => d"),
            ["a", "::", "b", "->", "c", "=>", "d"]
        );
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        assert_eq!(texts("1..5"), ["1", ".", ".", "5"]);
        assert_eq!(texts("1.5"), ["1.5"]);
    }

    #[test]
    fn lifetimes_are_single_tokens() {
        let (masked, toks) = model_of("fn f<'a>(x: &'a str) {}");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| &masked[t.start..t.end])
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn char_and_string_literals_lex_as_literals() {
        let (_, toks) = model_of("let c = 'x'; let s = \"hi\";");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Literal));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn underscore_is_an_ident() {
        let (masked, toks) = model_of("let _ = x;");
        let t = toks.get(1).copied().expect("underscore token");
        assert_eq!(t.kind, TokenKind::Ident);
        assert_eq!(&masked[t.start..t.end], "_");
    }

    #[test]
    fn blocks_pair_delimiters() {
        let a = analyze("fn f() { g(h[0]); }");
        let toks = lex(&a.masked);
        let blocks = Blocks::build(&a.masked, &toks);
        // tokens: fn f ( ) { g ( h [ 0 ] ) ; }
        assert_eq!(blocks.close_of(2), Some(3));
        assert_eq!(blocks.close_of(4), Some(13));
        assert_eq!(blocks.open_of(13), Some(4));
        assert_eq!(blocks.close_of(8), Some(10));
    }

    #[test]
    fn fn_index_finds_bodies_and_skips_signatures() {
        let m =
            Model::build("fn a() { 1 } trait T { fn sig(&self); } fn b(x: [u8; 2]) -> u8 { 2 }");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let m = Model::build("type F = fn(u8) -> u8; fn real() {}");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let m = Model::build("fn outer() { fn inner() { marker(); } }");
        let marker = (0..m.len())
            .find(|&i| m.is_ident(i, "marker"))
            .expect("marker");
        assert_eq!(
            m.enclosing_fn(marker).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn generic_bounds_do_not_confuse_body_scan() {
        let m = Model::build("fn f<T: Fn(u8) -> u8>(g: T) -> u8 { g(1) }");
        assert_eq!(m.fns.len(), 1);
        let f = m.fns.first().expect("one fn");
        assert!(m.is_punct(f.body_open, "{"));
    }
}
