//! # rbd-lint — workspace static analysis for the rbd reproduction
//!
//! A std-only, dependency-free lint pass that enforces the domain rules the
//! paper's robustness story rests on (Section 3 + Appendix A: the pipeline
//! must survive arbitrary, malformed real-web HTML):
//!
//! | rule | what it flags | hot path | elsewhere |
//! |---|---|---|---|
//! | `panic` | `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` / slice indexing `[...]` in non-test code | deny | warn |
//! | `cast` | narrowing `as u8` / `as u16` / `as u32` casts on byte-offset arithmetic | deny | warn |
//! | `wildcard-match` | `_ =>` arms in `match`es over the crate-local `Token` / `Event` enums | deny | warn |
//! | `forbid-unsafe` | crate roots missing `#![forbid(unsafe_code)]` | deny | deny |
//! | `bad-allow` | malformed or unjustified allow directives | deny | deny |
//! | `budget` | unbounded `with_capacity` / recursion in the hot path | deny | warn |
//! | `observability` | `DegradationEvent` built in a function that never touches a trace sink | deny | deny |
//! | `concurrency` | `thread::spawn` / `thread::Builder` outside `crates/pipeline`; unbounded `mpsc::channel` anywhere | deny | deny |
//! | `lock-order` | a second lock acquired while another's guard is live, outside any declared canonical order | deny | deny |
//! | `guard-across-blocking` | a live lock guard spanning `Condvar::wait` on another lock, channel `send`/`recv`, `join()`, or `thread::sleep` | deny | deny |
//! | `swallowed-error` | `let _ = call(...)` / trailing `.ok();` discarding a `Result` in library code with no adjacent trace | deny | deny |
//! | `metric-name` | counter/histogram literals that are not snake_case with a `serve_`/`pipeline_`/`extract_`/`trace_`/`store_` prefix | deny | deny |
//! | `store-durability` | a file write in `store` paths whose function never calls `sync_all`/`sync_data` — an unsynced write is a torn-tail crash window | deny | deny |
//!
//! The first block of rules is lexical; the last three are *structural*:
//! they run on a typed token stream ([`tokens::Model`]) with a
//! delimiter-nesting tree and per-function spans, built zero-dependency on
//! top of the masking pass. Token matching is exact, so identifiers that
//! merely contain a keyword (`try_unwrap_or`, `recv_result`, `heatsink`)
//! can never trip a rule.
//!
//! The *hot path* is `crates/html` and `crates/tagtree` — the tokenizer →
//! tag-tree route every byte of untrusted input flows through. Code inside
//! `#[cfg(test)]` items is exempt from the panic-freedom rules, and any rule
//! can be waived per-line with a justified escape hatch:
//!
//! ```text
//! // rbd-lint: allow(panic) — index is bounds-checked by the loop guard above
//! let b = bytes[i];
//! ```
//!
//! Nested lock acquisition is declared rather than waived: a file-scoped
//! `// rbd-lint: lock-order(outer < inner)` comment names the canonical
//! order, and only pairs taken in that order pass.
//!
//! The justification string is mandatory; an allow without one is itself a
//! deny-level `bad-allow` finding. Run the pass with `cargo run -p rbd-lint`;
//! it exits non-zero when any deny-severity finding survives. Pass `--json`
//! for machine-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
pub mod rules;
pub mod source;
pub mod tokens;

pub use rules::{
    lint_source, lint_source_report, Finding, JustifiedAllow, Report, Rule, Severity, Tier,
};
pub use source::{analyze, AllowDirective, Analysis};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be provably panic-free: the parsing hot
/// path of the record-boundary pipeline.
pub const HOT_PATH_CRATES: &[&str] = &["html", "tagtree"];

/// Classifies a workspace member directory name into an enforcement tier.
pub fn tier_of(crate_name: &str) -> Tier {
    if HOT_PATH_CRATES.contains(&crate_name) {
        Tier::Hot
    } else {
        Tier::Library
    }
}

/// Recursively collects `*.rs` files under `dir`, sorted for deterministic
/// output.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `true` when `path` is a crate root relative to its `src` dir: `lib.rs`,
/// `main.rs`, or a `bin/*.rs` target.
fn is_crate_root(src_dir: &Path, path: &Path) -> bool {
    let Ok(rel) = path.strip_prefix(src_dir) else {
        return false;
    };
    rel == Path::new("lib.rs")
        || rel == Path::new("main.rs")
        || (rel.parent() == Some(Path::new("bin")) && rel.extension().is_some_and(|e| e == "rs"))
}

/// Lints every `.rs` file under a crate's `src` directory.
pub fn lint_crate_src(src_dir: &Path, tier: Tier) -> io::Result<Vec<Finding>> {
    lint_crate_src_report(src_dir, tier).map(|r| r.findings)
}

/// [`lint_crate_src`], keeping the justified-allow inventory.
pub fn lint_crate_src_report(src_dir: &Path, tier: Tier) -> io::Result<Report> {
    let mut report = Report::default();
    for file in rust_files(src_dir)? {
        let source = fs::read_to_string(&file)?;
        let root = is_crate_root(src_dir, &file);
        let r = lint_source_report(&file, &source, tier, root);
        report.findings.extend(r.findings);
        report.justified.extend(r.justified);
    }
    Ok(report)
}

/// Lints a single path: a `.rs` file, a crate `src` dir, or a crate dir
/// containing `src/`. Used by the CLI for fixtures and spot checks; always
/// runs at the strict [`Tier::Hot`] level.
pub fn lint_path(path: &Path) -> io::Result<Vec<Finding>> {
    lint_path_report(path).map(|r| r.findings)
}

/// [`lint_path`], keeping the justified-allow inventory.
pub fn lint_path_report(path: &Path) -> io::Result<Report> {
    if path.is_file() {
        let source = fs::read_to_string(path)?;
        let root = path
            .file_name()
            .is_some_and(|n| n == "lib.rs" || n == "main.rs");
        return Ok(lint_source_report(path, &source, Tier::Hot, root));
    }
    let src = path.join("src");
    let dir = if src.is_dir() {
        src
    } else {
        path.to_path_buf()
    };
    lint_crate_src_report(&dir, Tier::Hot)
}

/// Walks up from `start` to the workspace root (the first ancestor whose
/// `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints the whole workspace rooted at `root`: every member under `crates/`
/// (tiered by name) plus the umbrella crate's own `src/`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_report(root).map(|r| r.findings)
}

/// [`lint_workspace`], keeping the justified-allow inventory.
pub fn lint_workspace_report(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("src").is_dir())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let r = lint_crate_src_report(&member.join("src"), tier_of(&name))?;
        report.findings.extend(r.findings);
        report.justified.extend(r.justified);
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        let r = lint_crate_src_report(&root_src, Tier::Library)?;
        report.findings.extend(r.findings);
        report.justified.extend(r.justified);
    }
    Ok(report)
}

/// `true` when `findings` should fail the run.
pub fn has_deny(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_by_crate_name() {
        assert_eq!(tier_of("html"), Tier::Hot);
        assert_eq!(tier_of("tagtree"), Tier::Hot);
        assert_eq!(tier_of("pattern"), Tier::Library);
        assert_eq!(tier_of("lint"), Tier::Library);
    }

    #[test]
    fn crate_root_detection() {
        let src = Path::new("/x/src");
        assert!(is_crate_root(src, Path::new("/x/src/lib.rs")));
        assert!(is_crate_root(src, Path::new("/x/src/main.rs")));
        assert!(is_crate_root(src, Path::new("/x/src/bin/tool.rs")));
        assert!(!is_crate_root(src, Path::new("/x/src/helper.rs")));
        assert!(!is_crate_root(src, Path::new("/x/src/nested/lib.rs")));
    }

    #[test]
    fn has_deny_distinguishes_severities() {
        let warn = Finding {
            file: "a.rs".into(),
            line: 1,
            rule: Rule::Panic,
            severity: Severity::Warn,
            message: String::new(),
        };
        let deny = Finding {
            severity: Severity::Deny,
            ..warn.clone()
        };
        assert!(!has_deny(std::slice::from_ref(&warn)));
        assert!(has_deny(&[warn, deny]));
    }
}
