//! The rule catalog.
//!
//! Every rule runs over the typed token stream ([`crate::tokens::Model`])
//! built from the masked source of [`crate::source::analyze`], so
//! occurrences inside strings and comments never count, and identifiers
//! that merely *contain* a rule keyword (`try_unwrap_or`, `unwrap_budget`)
//! can never match — tokens compare whole, not by substring. Findings on
//! lines inside `#[cfg(test)]` items are dropped for the panic-freedom and
//! structural-concurrency rules — tests may unwrap and deadlock-race
//! freely — and a justified `// rbd-lint: allow(<rule>) — <why>` directive
//! suppresses any rule on its target line.

use crate::source::{is_ident_byte, Analysis};
use crate::tokens::{Model, TokenKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!` and slice
    /// indexing `[...]` in non-test code.
    Panic,
    /// Narrowing `as u8` / `as u16` / `as u32` casts.
    Cast,
    /// `_ =>` arms in `match`es over the crate-local `Token`/`Event` enums.
    WildcardMatch,
    /// Crate roots must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// An `rbd-lint` allow directive that is malformed or lacks its
    /// justification string.
    BadAllow,
    /// Hot-path growth without governance: a `with_capacity(` allocation or
    /// a self-recursive function in `crates/html`/`crates/tagtree` whose
    /// enclosing function never names a budget, limit, or cap.
    Budget,
    /// A `DegradationEvent` constructed in a function that never touches a
    /// trace sink — the degradation would be recorded in the result but
    /// silently dropped from the audit trail.
    Observability,
    /// Raw thread spawns (`thread::spawn`, `thread::Builder`) outside
    /// `crates/pipeline` — the worker pool must own every thread — and
    /// unbounded channel constructs (`mpsc::channel`) anywhere: a queue
    /// without a capacity is a memory limit waiting to be discovered in
    /// production.
    Concurrency,
    /// A second `Mutex`/`RwLock` acquired while another lock's guard is
    /// live in the same function, with no declared canonical order
    /// (`// rbd-lint: lock-order(a < b)`) covering the pair — the static
    /// shape of an ABBA deadlock.
    LockOrder,
    /// A live lock guard spanning a blocking call: a `Condvar::wait` on a
    /// different lock, a channel `send`/`recv`, a `JoinHandle::join`, or a
    /// `thread::sleep`.
    GuardAcrossBlocking,
    /// `let _ = call(...)` or a trailing `.ok();` discarding a `Result` in
    /// non-test library code with no adjacent trace emission.
    SwallowedError,
    /// A string literal registered as a counter/histogram name
    /// (`.add("…", n)` / `.observe("…", v)`) that is not snake_case over
    /// `[a-z0-9_]` with a `serve_`/`pipeline_`/`extract_`/`trace_`/`store_`
    /// subsystem prefix — the metric namespace dashboards scrape must stay
    /// uniform.
    MetricName,
    /// In persistence code (any path with a `store` component): a function
    /// that writes to a file (`.write(` / `.write_all(`) without also
    /// naming `sync_all` or `sync_data` in its body. An unsynced write on
    /// the commit path is a torn-tail crash window — the data can be
    /// acknowledged, then lost or half-written when power drops before the
    /// kernel flushes.
    StoreDurability,
}

impl Rule {
    /// The name used in `allow(...)` directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Cast => "cast",
            Rule::WildcardMatch => "wildcard-match",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::BadAllow => "bad-allow",
            Rule::Budget => "budget",
            Rule::Observability => "observability",
            Rule::Concurrency => "concurrency",
            Rule::LockOrder => "lock-order",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::SwallowedError => "swallowed-error",
            Rule::MetricName => "metric-name",
            Rule::StoreDurability => "store-durability",
        }
    }

    /// All rules an allow directive may name.
    pub fn all() -> [Rule; 12] {
        [
            Rule::Panic,
            Rule::Cast,
            Rule::WildcardMatch,
            Rule::ForbidUnsafe,
            Rule::Budget,
            Rule::Observability,
            Rule::Concurrency,
            Rule::LockOrder,
            Rule::GuardAcrossBlocking,
            Rule::SwallowedError,
            Rule::MetricName,
            Rule::StoreDurability,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but does not fail the run.
    Warn,
    /// Fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Enforcement tier of the crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The parsing hot path (`crates/html`, `crates/tagtree`): panic-freedom
    /// rules at deny.
    Hot,
    /// Every other library crate: panic-freedom rules at warn.
    Library,
}

impl Tier {
    /// Severity of `rule` under this tier.
    pub fn severity(self, rule: Rule) -> Severity {
        match (rule, self) {
            // Structural rules hold everywhere. Observability is among
            // them: a silently dropped degradation is wrong in any crate.
            // So is concurrency: a stray thread or an unbounded queue
            // undermines the pool's guarantees no matter which crate
            // spawned it. The flow rules join them: a potential deadlock,
            // a guard held across a blocking call, or a swallowed error is
            // a correctness bug wherever it lives, not a style preference.
            (
                Rule::ForbidUnsafe
                | Rule::BadAllow
                | Rule::Observability
                | Rule::Concurrency
                | Rule::LockOrder
                | Rule::GuardAcrossBlocking
                | Rule::SwallowedError
                | Rule::MetricName
                | Rule::StoreDurability,
                _,
            ) => Severity::Deny,
            (_, Tier::Hot) => Severity::Deny,
            (_, Tier::Library) => Severity::Warn,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Deny or warn under the file's tier.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.file.display(),
            self.line,
            self.severity,
            self.rule,
            self.message
        )
    }
}

/// A justified allow directive, surfaced in reports so waivers stay
/// auditable instead of silently eating findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JustifiedAllow {
    /// File the directive is in.
    pub file: PathBuf,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Rule names the directive waives.
    pub rules: Vec<String>,
    /// The stated justification.
    pub justification: String,
}

/// Findings plus the justification inventory for one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived exemptions, sorted by file order then line.
    pub findings: Vec<Finding>,
    /// Every well-formed, justified allow directive encountered.
    pub justified: Vec<JustifiedAllow>,
}

/// Runs every rule over one file. `is_crate_root` enables the
/// `forbid-unsafe` check (crate roots: `lib.rs`, `main.rs`, `bin/*.rs`).
pub fn lint_source(path: &Path, source: &str, tier: Tier, is_crate_root: bool) -> Vec<Finding> {
    lint_source_report(path, source, tier, is_crate_root).findings
}

/// [`lint_source`], keeping the justified-allow inventory alongside the
/// findings.
pub fn lint_source_report(path: &Path, source: &str, tier: Tier, is_crate_root: bool) -> Report {
    let analysis = crate::source::analyze(source);
    let model = Model::build(&analysis.masked);
    let mut findings = Vec::new();

    check_panic(path, &analysis, &model, tier, &mut findings);
    check_cast(path, &analysis, &model, tier, &mut findings);
    check_wildcard_match(path, &analysis, &model, tier, &mut findings);
    if is_crate_root {
        check_forbid_unsafe(path, &analysis, &mut findings);
    }
    check_budget(path, &analysis, &model, tier, &mut findings);
    check_observability(path, &analysis, &model, &mut findings);
    check_concurrency(path, &analysis, &model, &mut findings);
    check_metric_name(path, &analysis, &model, source, &mut findings);
    check_store_durability(path, &analysis, &model, &mut findings);
    crate::flow::check_flow(path, &analysis, &model, tier, &mut findings);
    check_allow_directives(path, &analysis, &mut findings);

    // Apply test exemption (every rule except bad-allow) and allow
    // directives.
    findings.retain(|f| {
        if f.rule == Rule::BadAllow {
            return true;
        }
        let test_exempt = matches!(
            f.rule,
            Rule::Panic
                | Rule::Cast
                | Rule::WildcardMatch
                | Rule::Budget
                | Rule::Observability
                | Rule::Concurrency
                | Rule::LockOrder
                | Rule::GuardAcrossBlocking
                | Rule::SwallowedError
                | Rule::MetricName
                | Rule::StoreDurability
        ) && analysis.is_test_line(f.line);
        !test_exempt && !analysis.is_allowed(f.rule.name(), f.line)
    });
    findings.sort_by_key(|f| f.line);

    let justified = analysis
        .allows
        .iter()
        .filter(|a| !a.justification.is_empty())
        .map(|a| JustifiedAllow {
            file: path.to_path_buf(),
            line: a.line,
            rules: a.rules.clone(),
            justification: a.justification.clone(),
        })
        .collect();
    Report {
        findings,
        justified,
    }
}

pub(crate) fn push(
    findings: &mut Vec<Finding>,
    path: &Path,
    line: usize,
    rule: Rule,
    severity: Severity,
    message: String,
) {
    findings.push(Finding {
        file: path.to_path_buf(),
        line,
        rule,
        severity,
        message,
    });
}

/// All occurrences of `needle` in `masked` (raw substring positions; pair
/// with a boundary check at the call site).
pub(crate) fn occurrences<'a>(
    masked: &'a str,
    needle: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        let rel = masked.get(from..)?.find(needle)?;
        let at = from + rel;
        from = at + 1;
        Some(at)
    })
}

fn check_panic(path: &Path, a: &Analysis, m: &Model<'_>, tier: Tier, findings: &mut Vec<Finding>) {
    let severity = tier.severity(Rule::Panic);
    for i in 0..m.len() {
        // `.unwrap()` / `.expect(..)` — token-exact, so `.unwrap_or(..)`,
        // `.expect_err(..)`, and identifiers like `try_unwrap_or` never
        // match, while `.unwrap ()` with stray whitespace still does.
        if m.is_punct(i, ".") {
            if m.is_ident(i + 1, "unwrap") && m.is_punct(i + 2, "(") && m.is_punct(i + 3, ")") {
                push(
                    findings,
                    path,
                    a.line_of(m.start(i + 1)),
                    Rule::Panic,
                    severity,
                    "`.unwrap()` can panic".to_owned(),
                );
            }
            if m.is_ident(i + 1, "expect") && m.is_punct(i + 2, "(") {
                push(
                    findings,
                    path,
                    a.line_of(m.start(i + 1)),
                    Rule::Panic,
                    severity,
                    "`.expect` can panic".to_owned(),
                );
            }
        }
        if m.kind(i) == Some(TokenKind::Ident)
            && matches!(
                m.text(i),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && m.is_punct(i + 1, "!")
        {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Panic,
                severity,
                format!("`{}!` in non-test code", m.text(i)),
            );
        }
    }
    check_indexing(path, a, m, severity, findings);
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, …).
fn is_non_indexing_keyword(word: &str) -> bool {
    matches!(
        word,
        "return"
            | "break"
            | "else"
            | "in"
            | "if"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "const"
            | "static"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "yield"
            | "box"
    )
}

fn check_indexing(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    severity: Severity,
    findings: &mut Vec<Finding>,
) {
    for i in 0..m.len() {
        if !m.is_punct(i, "[") {
            continue;
        }
        let indexes = match i.checked_sub(1).and_then(|p| m.kind(p)) {
            Some(TokenKind::Ident) => {
                let p = i - 1;
                let word = m.text(p);
                if i.checked_sub(2).is_some_and(|q| m.is_punct(q, ".")) {
                    // `.await[...]` indexes even though `await` is a keyword.
                    true
                } else {
                    !is_non_indexing_keyword(word)
                }
            }
            // `f(..)[i]`, `v[0][1]`, `x?[i]` index; a lifetime (`&'a [u8]`),
            // `&`, `!` (macro bang, as in `vec![..]`), `{`, `->`, `,`, `=`
            // and friends introduce array types/literals instead.
            Some(TokenKind::Punct) => {
                let p = i - 1;
                m.is_punct(p, ")") || m.is_punct(p, "]") || m.is_punct(p, "?")
            }
            _ => false,
        };
        if indexes {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Panic,
                severity,
                "slice/array indexing `[...]` can panic; use `.get(..)`".to_owned(),
            );
        }
    }
}

fn check_cast(path: &Path, a: &Analysis, m: &Model<'_>, tier: Tier, findings: &mut Vec<Finding>) {
    let severity = tier.severity(Rule::Cast);
    for i in 0..m.len() {
        if !m.is_ident(i, "as") {
            continue;
        }
        if m.kind(i + 1) != Some(TokenKind::Ident) {
            continue;
        }
        let target = m.text(i + 1);
        if matches!(target, "u8" | "u16" | "u32") {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Cast,
                severity,
                format!(
                    "narrowing `as {target}` cast can silently truncate byte offsets; \
                     use `{target}::try_from`"
                ),
            );
        }
    }
}

fn check_wildcard_match(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    tier: Tier,
    findings: &mut Vec<Finding>,
) {
    let severity = tier.severity(Rule::WildcardMatch);
    for i in 0..m.len() {
        if !m.is_ident(i, "match") {
            continue;
        }
        // Opening brace of the match block: the first `{` after the
        // scrutinee with intervening `(..)`/`[..]` groups skipped whole.
        let Some(open) = scan_to_block_open(m, i + 1) else {
            continue;
        };
        let Some(close) = m.blocks.close_of(open) else {
            continue;
        };
        let over_guarded_enum = (i + 1..open).any(|k| guarded_enum_ident(m, k))
            || depth1_positions(m, open, close)
                .iter()
                .any(|&k| guarded_enum_ident(m, k) && m.is_punct(k + 1, "::"));
        if !over_guarded_enum {
            continue;
        }
        for &k in &depth1_positions(m, open, close) {
            if !m.is_ident(k, "_") {
                continue;
            }
            if m.is_punct(k + 1, "=>") || m.is_punct(k + 1, "|") || m.is_ident(k + 1, "if") {
                push(
                    findings,
                    path,
                    a.line_of(m.start(k)),
                    Rule::WildcardMatch,
                    severity,
                    "wildcard `_ =>` arm in a match over Token/Event swallows new \
                     variants; enumerate them"
                        .to_owned(),
                );
            }
        }
    }
}

/// `true` when token `k` is exactly the `Token` or `Event` identifier.
fn guarded_enum_ident(m: &Model<'_>, k: usize) -> bool {
    m.is_ident(k, "Token") || m.is_ident(k, "Event")
}

/// First `{` at group depth 0 scanning from `from`; `None` when a `;`
/// intervenes (a `match` in a signature-less position).
fn scan_to_block_open(m: &Model<'_>, from: usize) -> Option<usize> {
    let mut j = from;
    while j < m.len() {
        if m.is_punct(j, "(") || m.is_punct(j, "[") {
            j = m.blocks.close_of(j)? + 1;
            continue;
        }
        if m.is_punct(j, "{") {
            return Some(j);
        }
        if m.is_punct(j, ";") {
            return None;
        }
        j += 1;
    }
    None
}

/// Token indices strictly between `open` and `close` at nesting depth 1:
/// nested `{..}`/`(..)`/`[..]` groups are skipped whole.
fn depth1_positions(m: &Model<'_>, open: usize, close: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        if m.is_punct(j, "{") || m.is_punct(j, "(") || m.is_punct(j, "[") {
            out.push(j);
            j = m.blocks.close_of(j).map(|c| c + 1).unwrap_or(close);
            continue;
        }
        out.push(j);
        j += 1;
    }
    out
}

// Runs on the masked source so a doc comment *mentioning* the attribute
// cannot satisfy the check.
fn check_forbid_unsafe(path: &Path, a: &Analysis, findings: &mut Vec<Finding>) {
    let compact: String = a.masked.split_whitespace().collect();
    if !compact.contains("#![forbid(unsafe_code)]") {
        push(
            findings,
            path,
            1,
            Rule::ForbidUnsafe,
            Severity::Deny,
            "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        );
    }
}

/// Identifiers whose presence in the enclosing function marks growth as
/// governed: the function either takes a budget, checks a limit, or caps
/// its input before allocating.
fn mentions_budget_check(body: &str) -> bool {
    ["budget", "limit", "cap", "deadline"].iter().any(|w| {
        occurrences(body, w).any(|at| {
            // Prefix match is intentional — `budget`, `limits`, `capacity`
            // all count; only a preceding identifier byte (as in `recap`)
            // disqualifies, so `with_capacity` itself never self-certifies.
            let bytes = body.as_bytes();
            at.checked_sub(1)
                .and_then(|i| bytes.get(i))
                .is_none_or(|&b| !is_ident_byte(b))
        })
    })
}

/// Hot-path growth governance: every `with_capacity(` allocation and every
/// self-recursive function in a hot-tier file must sit in a function that
/// names a budget/limit/cap/deadline, or carry a justified `allow(budget)`.
/// Library-tier files are exempt — the rule encodes a contract specific to
/// the tokenizer/tree-builder hot path, where input is attacker-controlled
/// and growth must be provably bounded.
fn check_budget(path: &Path, a: &Analysis, m: &Model<'_>, tier: Tier, findings: &mut Vec<Finding>) {
    if tier != Tier::Hot {
        return;
    }
    for i in 0..m.len() {
        if !(m.is_ident(i, "with_capacity") && m.is_punct(i + 1, "(")) {
            continue;
        }
        let governed = m
            .enclosing_fn(i)
            .is_some_and(|f| mentions_budget_check(m.body_text(f)));
        if !governed {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Budget,
                Severity::Deny,
                "hot-path `with_capacity` without a budget check in the enclosing \
                 function; cap the size or justify with allow(budget)"
                    .to_owned(),
            );
        }
    }

    for f in &m.fns {
        if mentions_budget_check(m.body_text(f)) {
            continue;
        }
        // Direct self-call `name(` — not a method or associated call on
        // some other type (`.name(`, `::name(`) and not a nested `fn`
        // definition — the classic unbounded recursive-descent shape.
        let recursive = (f.body_open + 1..f.body_close).any(|k| {
            m.is_ident(k, &f.name)
                && m.is_punct(k + 1, "(")
                && k.checked_sub(1).is_none_or(|p| {
                    !m.is_punct(p, ".") && !m.is_punct(p, "::") && !m.is_ident(p, "fn")
                })
        });
        if recursive {
            push(
                findings,
                path,
                a.line_of(m.start(f.fn_tok)),
                Rule::Budget,
                Severity::Deny,
                format!(
                    "hot-path function `{}` recurses without a depth budget; \
                     convert to an explicit stack or justify with allow(budget)",
                    f.name
                ),
            );
        }
    }
}

/// `true` if the function body names a sink. The match is on a snake_case
/// segment boundary — `sink`, `sinks`, `active_sink()`, `with_sink`, and a
/// `sink:` field all count; only a `sink` embedded mid-segment (as in
/// `heatsink`) disqualifies.
fn mentions_sink(body: &str) -> bool {
    occurrences(body, "sink").any(|at| {
        let bytes = body.as_bytes();
        at.checked_sub(1)
            .and_then(|i| bytes.get(i))
            .is_none_or(|&b| !b.is_ascii_alphanumeric())
    })
}

/// Degradation events must reach the audit trail: any function that
/// constructs a `DegradationEvent` (the name followed by a brace — struct
/// literal) must also touch a trace sink, normally by routing the event
/// through `note_degradation(&mut degradation, sink, …)`. A function that
/// only pushes the event into its result silently drops it from the trace,
/// which is exactly the class of bug the audit trail exists to prevent.
/// Constructions outside any function (the type's own definition,
/// `impl` headers) are structural, not emissions, and are skipped.
fn check_observability(path: &Path, a: &Analysis, m: &Model<'_>, findings: &mut Vec<Finding>) {
    for i in 0..m.len() {
        if !(m.is_ident(i, "DegradationEvent") && m.is_punct(i + 1, "{")) {
            continue;
        }
        let Some(f) = m.enclosing_fn(i) else {
            continue;
        };
        if !mentions_sink(m.body_text(f)) {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Observability,
                Severity::Deny,
                "`DegradationEvent` constructed here but the enclosing function never \
                 touches a trace sink; emit it to the active sink (e.g. via \
                 `note_degradation`) or justify with allow(observability)"
                    .to_owned(),
            );
        }
    }
}

/// Thread and channel discipline. Threads may only be spawned inside
/// `crates/pipeline` (any path with a `pipeline` component) — the pool owns
/// every worker, so shutdown, panic isolation, and metrics aggregation have
/// exactly one implementation. Unbounded `mpsc::channel` constructs are
/// denied *everywhere*, the pipeline crate included: its whole design is
/// bounded queues (`mpsc::sync_channel` and the in-tree `Bounded` pass).
///
/// The network tier (any path with a `serve` component) carries one more
/// obligation: a function that accepts a connection (`.accept(`) must also
/// call `set_read_timeout` *and* `set_write_timeout` before the stream
/// leaves its hands. A `TcpStream` without deadlines is a slowloris
/// foothold — one byte-dribbling client per worker wedges the pool forever.
///
/// Test code is exempt, and a justified `allow(concurrency)` escapes.
fn check_concurrency(path: &Path, a: &Analysis, m: &Model<'_>, findings: &mut Vec<Finding>) {
    let in_pipeline = path.components().any(|c| c.as_os_str() == "pipeline");
    if path.components().any(|c| c.as_os_str() == "serve") {
        check_accept_timeouts(path, a, m, findings);
    }
    for i in 0..m.len() {
        if !m.is_punct(i + 1, "::") {
            continue;
        }
        if !in_pipeline
            && m.is_ident(i, "thread")
            && (m.is_ident(i + 2, "spawn") || m.is_ident(i + 2, "Builder"))
        {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Concurrency,
                Severity::Deny,
                format!(
                    "raw `thread::{}` outside `crates/pipeline`; route concurrency \
                     through the rbd-pipeline worker pool",
                    m.text(i + 2)
                ),
            );
        }
        if m.is_ident(i, "mpsc") && m.is_ident(i + 2, "channel") {
            push(
                findings,
                path,
                a.line_of(m.start(i)),
                Rule::Concurrency,
                Severity::Deny,
                "unbounded `mpsc::channel` can grow without limit under load; use a \
                 bounded queue (`rbd_pipeline::Bounded` or `mpsc::sync_channel`)"
                    .to_owned(),
            );
        }
    }
}

/// The serve-tier half of the concurrency rule: every function that calls
/// `.accept(` must also name `set_read_timeout` and `set_write_timeout` in
/// its body. Matching is token-exact, so `accept` as a free function or an
/// identifier like `acceptable` never counts, and the timeout calls may sit
/// in any position (directly on the stream, through a helper the function
/// also defines, behind `?`).
fn check_accept_timeouts(path: &Path, a: &Analysis, m: &Model<'_>, findings: &mut Vec<Finding>) {
    for f in &m.fns {
        let body = f.body_open + 1..f.body_close;
        let accept_at = body.clone().find(|&k| {
            m.is_ident(k, "accept")
                && m.is_punct(k + 1, "(")
                && k.checked_sub(1).is_some_and(|p| m.is_punct(p, "."))
        });
        let Some(accept_at) = accept_at else {
            continue;
        };
        let has_read = body.clone().any(|k| m.is_ident(k, "set_read_timeout"));
        let has_write = body.clone().any(|k| m.is_ident(k, "set_write_timeout"));
        if !(has_read && has_write) {
            push(
                findings,
                path,
                a.line_of(m.start(accept_at)),
                Rule::Concurrency,
                Severity::Deny,
                format!(
                    "`{}` accepts a connection but never arms both socket deadlines; \
                     call `set_read_timeout` and `set_write_timeout` in the same \
                     function (slowloris defense) or justify with allow(concurrency)",
                    f.name
                ),
            );
        }
    }
}

/// The prefixes that partition the metric namespace by subsystem.
const METRIC_PREFIXES: [&str; 5] = ["serve_", "pipeline_", "extract_", "trace_", "store_"];

/// Metric-name hygiene: a string literal registered as a counter or
/// histogram — the first argument of an `.add(` or `.observe(` call —
/// must be snake_case over `[a-z0-9_]` and start with a subsystem prefix
/// ([`METRIC_PREFIXES`]). Names that flow in through variables (span
/// names recorded via `span.name`) are out of scope by construction: the
/// rule only fires on a literal in argument position.
///
/// The token model is built over the masked source (string interiors
/// blanked), but masking preserves byte offsets, so the literal's actual
/// text is read from the raw source at the token's span.
fn check_metric_name(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    source: &str,
    findings: &mut Vec<Finding>,
) {
    for i in 0..m.len() {
        if !m.is_punct(i, ".") {
            continue;
        }
        if !(m.is_ident(i + 1, "add") || m.is_ident(i + 1, "observe")) || !m.is_punct(i + 2, "(") {
            continue;
        }
        if m.kind(i + 3) != Some(TokenKind::Literal) {
            continue;
        }
        let Some(raw) = source.get(m.start(i + 3)..m.end(i + 3)) else {
            continue;
        };
        // Only plain string literals name metrics; numeric literals
        // (`checked_add(1)`, `duration.add(…)`) are arithmetic, not
        // registration.
        let Some(name) = raw
            .strip_prefix('"')
            .and_then(|rest| rest.strip_suffix('"'))
        else {
            continue;
        };
        let prefixed = METRIC_PREFIXES.iter().any(|p| name.starts_with(p));
        let snake = !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_');
        if !(prefixed && snake) {
            push(
                findings,
                path,
                a.line_of(m.start(i + 3)),
                Rule::MetricName,
                Severity::Deny,
                format!(
                    "metric name {raw} must be snake_case over [a-z0-9_] with a \
                     `serve_`/`pipeline_`/`extract_`/`trace_`/`store_` prefix; \
                     dashboards and alerts depend on one uniform namespace"
                ),
            );
        }
    }
}

/// Durability discipline for persistence code: in any file whose path has a
/// `store` component, a function that performs a file write (`.write(` or
/// `.write_all(` as a method call) must also name `sync_all` or `sync_data`
/// somewhere in its body — directly or through the helper it delegates to.
/// A write the kernel has buffered but not flushed is a torn-tail crash
/// window: the caller sees `Ok`, the bytes evaporate on power loss. The
/// store crate satisfies this by routing every write through one
/// `write_and_sync` helper; the rule keeps future writes on that path.
fn check_store_durability(path: &Path, a: &Analysis, m: &Model<'_>, findings: &mut Vec<Finding>) {
    if !path.components().any(|c| c.as_os_str() == "store") {
        return;
    }
    for f in &m.fns {
        let body = f.body_open + 1..f.body_close;
        let write_at = body.clone().find(|&k| {
            (m.is_ident(k, "write_all") || m.is_ident(k, "write"))
                && m.is_punct(k + 1, "(")
                && k.checked_sub(1).is_some_and(|p| m.is_punct(p, "."))
                // `.write(true)` / `.write(false)` is an `OpenOptions` mode
                // flag, not a data write.
                && !((m.is_ident(k + 2, "true") || m.is_ident(k + 2, "false"))
                    && m.is_punct(k + 3, ")"))
        });
        let Some(write_at) = write_at else {
            continue;
        };
        let synced = body
            .clone()
            .any(|k| m.is_ident(k, "sync_all") || m.is_ident(k, "sync_data"));
        if !synced {
            push(
                findings,
                path,
                a.line_of(m.start(write_at)),
                Rule::StoreDurability,
                Severity::Deny,
                format!(
                    "`{}` writes to a file but never calls `sync_all`/`sync_data`; \
                     an unsynced write is lost on crash after the caller saw Ok — \
                     route the write through the store's write-and-sync helper or \
                     justify with allow(store-durability)",
                    f.name
                ),
            );
        }
    }
}

fn check_allow_directives(path: &Path, a: &Analysis, findings: &mut Vec<Finding>) {
    for &line in &a.malformed_allows {
        push(
            findings,
            path,
            line,
            Rule::BadAllow,
            Severity::Deny,
            "malformed rbd-lint directive; expected `rbd-lint: allow(<rule>) — \
             <justification>` or `rbd-lint: lock-order(a < b)`"
                .to_owned(),
        );
    }
    let known: Vec<&str> = Rule::all().iter().map(|r| r.name()).collect();
    for d in &a.allows {
        if d.justification.is_empty() {
            push(
                findings,
                path,
                d.line,
                Rule::BadAllow,
                Severity::Deny,
                "allow directive requires a justification string after the rule list".to_owned(),
            );
        }
        for r in &d.rules {
            if !known.contains(&r.as_str()) {
                push(
                    findings,
                    path,
                    d.line,
                    Rule::BadAllow,
                    Severity::Deny,
                    format!("unknown rule `{r}` in allow directive"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, Tier::Hot, false)
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- panic rule: trigger direction ---

    #[test]
    fn unwrap_flagged() {
        let f = lint("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
    }

    #[test]
    fn expect_flagged() {
        let f = lint("fn f(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
    }

    #[test]
    fn panic_macros_flagged() {
        for src in [
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { unreachable!(); }\n",
            "fn f() { todo!(); }\n",
            "fn f() { unimplemented!(); }\n",
        ] {
            let f = lint(src);
            assert_eq!(rules_of(&f), vec![Rule::Panic], "{src}");
        }
    }

    #[test]
    fn indexing_flagged() {
        let f = lint("fn f(v: &[u8]) -> u8 { v[0] }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
        let f = lint("fn f(s: &str) -> &str { &s[1..3] }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(lint("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
        assert!(lint("fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n").is_empty());
    }

    #[test]
    fn array_types_and_literals_not_flagged() {
        assert!(lint("fn f() -> [u8; 2] { [1, 2] }\n").is_empty());
        assert!(lint("struct S<'a> { bytes: &'a [u8] }\n").is_empty());
        assert!(lint("fn f(x: &'static [u8]) -> usize { x.len() }\n").is_empty());
        assert!(lint("static T: &[(&str, u8)] = &[(\"a\", 1)];\n").is_empty());
        assert!(lint("fn f() { let _v = vec![1, 2, 3]; }\n").is_empty());
        assert!(
            lint("fn f(x: bool) -> Vec<u8> { if x { return [1].to_vec(); } vec![] }\n").is_empty()
        );
    }

    #[test]
    fn needles_in_strings_and_comments_ignored() {
        assert!(lint("// a comment about .unwrap() and panic!\nfn f() {}\n").is_empty());
        assert!(lint("fn f() -> &'static str { \"don't panic![0]\" }\n").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- panic rule: former substring false positives, pinned ---

    #[test]
    fn identifiers_containing_rule_keywords_never_match() {
        for src in [
            // `try_unwrap_or` / `unwrap_budget` contain `unwrap`; token
            // matching sees one identifier, not a substring.
            "fn f(x: M) -> u8 { x.try_unwrap_or(0) }\n",
            "fn f(b: &Limits) -> usize { b.unwrap_budget }\n",
            "fn f(x: R) -> u8 { x.expect_err_or(0) }\n",
            // A field or fn named exactly `unwrap`-adjacent but not a call.
            "fn unwrap_all(xs: &[u8]) -> usize { xs.len() }\n",
        ] {
            assert!(lint(src).is_empty(), "{src} -> {:?}", lint(src));
        }
    }

    #[test]
    fn unwrap_with_whitespace_before_parens_is_caught() {
        // The old substring needle `.unwrap()` missed `.unwrap ()`; the
        // token stream does not care about spaces.
        let f = lint("fn f(x: Option<u8>) -> u8 { x.unwrap () }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
        let f = lint("fn f(x: Option<u8>) -> u8 { x.unwrap\n        () }\n");
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
    }

    #[test]
    fn macro_lookalike_identifiers_not_flagged() {
        assert!(lint("fn f() { my_panic_handler(); }\n").is_empty());
        assert!(lint("fn f(todo_list: &[u8]) -> usize { todo_list.len() }\n").is_empty());
    }

    // --- panic rule: allow-escape direction ---

    #[test]
    fn justified_allow_suppresses_panic() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // rbd-lint: allow(panic) — loop guard proves the index in bounds\n    v[0]\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn unjustified_allow_is_bad_allow_and_does_not_suppress() {
        let src = "fn f(v: &[u8]) -> u8 {\n    v[0] // rbd-lint: allow(panic)\n}\n";
        let f = lint(src);
        assert!(f.iter().any(|x| x.rule == Rule::Panic), "{f:?}");
        assert!(f.iter().any(|x| x.rule == Rule::BadAllow), "{f:?}");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // rbd-lint: allow(cast) — wrong rule named here\n    v[0]\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::Panic]);
    }

    // --- cast rule ---

    #[test]
    fn narrowing_casts_flagged() {
        for target in ["u8", "u16", "u32"] {
            let src = format!("fn f(n: usize) -> {target} {{ n as {target} }}\n");
            let f = lint(&src);
            assert_eq!(rules_of(&f), vec![Rule::Cast], "{src}");
        }
    }

    #[test]
    fn widening_casts_not_flagged() {
        assert!(lint("fn f(n: u8) -> usize { n as usize }\n").is_empty());
        assert!(lint("fn f(n: u32) -> u64 { n as u64 }\n").is_empty());
        assert!(lint("fn f(n: u8) -> char { n as char }\n").is_empty());
    }

    #[test]
    fn ident_containing_as_not_flagged() {
        // `alias`, `has_u8` — the `as` inside an identifier is not the
        // cast keyword.
        assert!(lint("fn f(alias: u64, has_u8: bool) -> u64 { alias }\n").is_empty());
    }

    #[test]
    fn justified_allow_suppresses_cast() {
        let src = "fn f(n: usize) -> u32 {\n    // rbd-lint: allow(cast) — n is checked against u32::MAX by the caller\n    n as u32\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- wildcard-match rule ---

    #[test]
    fn wildcard_over_token_flagged() {
        let src = "fn f(t: &Token) -> u8 {\n    match t {\n        Token::Start(_) => 1,\n        _ => 0,\n    }\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::WildcardMatch]);
    }

    #[test]
    fn wildcard_over_event_flagged() {
        let src = "fn f(e: &Event) -> u8 {\n    match e {\n        Event::Text { .. } => 1,\n        _ => 0,\n    }\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::WildcardMatch]);
    }

    #[test]
    fn exhaustive_token_match_not_flagged() {
        let src = "fn f(t: &Token) -> u8 {\n    match t {\n        Token::Start(_) => 1,\n        Token::End(_) => 2,\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn wildcard_over_other_enum_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    match x {\n        Some(v) => v,\n        _ => 0,\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn tokenkind_is_not_token() {
        // `TokenKind` is a different identifier; a wildcard over it is not
        // a wildcard over `Token`.
        let src = "fn f(k: TokenKind) -> u8 {\n    match k {\n        TokenKind::Ident => 1,\n        _ => 0,\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn nested_binding_underscore_not_flagged() {
        let src = "fn f(t: &Token) -> u8 {\n    match t {\n        Token::Start(_) => 1,\n        Token::End(_) => 2,\n        Token::Text(_) => 3,\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_wildcard() {
        let src = "fn f(t: &Token) -> u8 {\n    match t {\n        Token::Start(_) => 1,\n        // rbd-lint: allow(wildcard-match) — forward compatibility shim for external callers\n        _ => 0,\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- forbid-unsafe rule ---

    #[test]
    fn missing_forbid_unsafe_flagged_on_crate_root() {
        let f = lint_source(Path::new("lib.rs"), "pub fn f() {}\n", Tier::Library, true);
        assert_eq!(rules_of(&f), vec![Rule::ForbidUnsafe]);
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
    }

    #[test]
    fn present_forbid_unsafe_passes() {
        let f = lint_source(
            Path::new("lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            Tier::Library,
            true,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn non_root_files_skip_forbid_check() {
        let f = lint_source(
            Path::new("helper.rs"),
            "pub fn f() {}\n",
            Tier::Library,
            false,
        );
        assert!(f.is_empty());
    }

    // --- severity tiers ---

    #[test]
    fn hot_tier_denies_library_tier_warns() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hot = lint_source(Path::new("a.rs"), src, Tier::Hot, false);
        let lib = lint_source(Path::new("a.rs"), src, Tier::Library, false);
        assert_eq!(hot.first().map(|f| f.severity), Some(Severity::Deny));
        assert_eq!(lib.first().map(|f| f.severity), Some(Severity::Warn));
    }

    #[test]
    fn flow_rules_deny_in_every_tier() {
        for rule in [
            Rule::LockOrder,
            Rule::GuardAcrossBlocking,
            Rule::SwallowedError,
        ] {
            assert_eq!(Tier::Hot.severity(rule), Severity::Deny);
            assert_eq!(Tier::Library.severity(rule), Severity::Deny);
        }
    }

    #[test]
    fn unknown_rule_in_allow_reported() {
        let src = "fn f() {} // rbd-lint: allow(bogus) — justification present\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::BadAllow]);
    }

    #[test]
    fn new_rule_names_accepted_in_allows() {
        let src = "fn f() {} // rbd-lint: allow(lock-order, guard-across-blocking, swallowed-error, store-durability) — names resolve\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    // --- report surface ---

    #[test]
    fn report_collects_justified_allows() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // rbd-lint: allow(panic) — index proven in bounds by loop guard\n    v[0]\n}\n";
        let r = lint_source_report(Path::new("a.rs"), src, Tier::Hot, false);
        assert!(r.findings.is_empty());
        assert_eq!(r.justified.len(), 1);
        assert_eq!(
            r.justified.first().map(|j| j.rules.clone()),
            Some(vec!["panic".to_owned()])
        );
    }

    // --- budget rule ---

    #[test]
    fn ungoverned_with_capacity_flagged_in_hot_tier() {
        let src = "fn f(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::Budget]);
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
    }

    #[test]
    fn budget_identifier_in_function_governs_allocation() {
        for src in [
            "fn f(n: usize, budget: usize) -> Vec<u8> { Vec::with_capacity(n.min(budget)) }\n",
            "fn f(n: usize, limit: usize) -> Vec<u8> { Vec::with_capacity(n.min(limit)) }\n",
            "fn f(n: usize, cap: usize) -> Vec<u8> { Vec::with_capacity(n.min(cap)) }\n",
        ] {
            assert!(lint(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn with_capacity_does_not_self_certify_via_cap_prefix() {
        // The `cap` inside `with_capacity` itself must not count as
        // governance.
        let src = "fn f(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
        assert!(!lint(src).is_empty());
    }

    #[test]
    fn self_recursion_flagged_without_depth_budget() {
        let src =
            "fn walk(d: usize) -> usize {\n    if d == 0 { return 0; }\n    walk(d - 1) + 1\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::Budget]);
    }

    #[test]
    fn self_recursion_with_budget_not_flagged() {
        let src = "fn walk(d: usize, budget: usize) -> usize {\n    if d >= budget { return 0; }\n    walk(d + 1, budget) + 1\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn method_and_associated_calls_are_not_recursion() {
        // `Other::new(...)` and `self.len()` inside `fn new`/`fn len` are
        // calls to *different* items, not self-recursion.
        let src = "fn new(n: usize) -> Vec<u8> { Other::new(n).collect() }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        let src = "fn len(v: &[u8]) -> usize { v.len() }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn budget_rule_is_hot_tier_only() {
        let src = "fn f(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
        let lib = lint_source(Path::new("a.rs"), src, Tier::Library, false);
        assert!(lib.is_empty(), "{lib:?}");
    }

    #[test]
    fn budget_rule_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- observability rule ---

    #[test]
    fn degradation_without_sink_flagged() {
        let src = "fn f(events: &mut Vec<DegradationEvent>) {\n    events.push(DegradationEvent { stage, cause });\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::Observability]);
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
    }

    #[test]
    fn degradation_routed_to_sink_passes() {
        for src in [
            "fn f(events: &mut Vec<DegradationEvent>, sink: &dyn TraceSink) {\n    note_degradation(events, sink, DegradationEvent { stage, cause });\n}\n",
            "fn f(&self, events: &mut Vec<DegradationEvent>) {\n    note_degradation(events, self.active_sink(), DegradationEvent { stage, cause });\n}\n",
        ] {
            assert!(lint(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn observability_denies_in_library_tier_too() {
        let src = "fn f(v: &mut Vec<DegradationEvent>) {\n    v.push(DegradationEvent { stage, cause });\n}\n";
        let f = lint_source(Path::new("a.rs"), src, Tier::Library, false);
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
    }

    #[test]
    fn struct_definition_and_impl_header_not_flagged() {
        let src = "pub struct DegradationEvent {\n    pub stage: u8,\n}\n\nimpl fmt::Display for DegradationEvent {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n        write!(f, \"{}\", self.stage)\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn degradation_type_mention_without_construction_not_flagged() {
        let src = "fn f(events: Vec<DegradationEvent>) -> usize { events.len() }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn embedded_sink_identifier_does_not_certify() {
        // `heatsink` contains "sink" only mid-segment, with no snake_case
        // boundary before it.
        let src = "fn f(v: &mut Vec<DegradationEvent>) {\n    heatsink();\n    v.push(DegradationEvent { stage, cause });\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::Observability]);
    }

    #[test]
    fn snake_case_sink_segment_certifies() {
        let src = "fn f(v: &mut Vec<DegradationEvent>) {\n    emit(self.active_sink(), DegradationEvent { stage, cause });\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn observability_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn mk() -> DegradationEvent { DegradationEvent { stage, cause } }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_observability() {
        let src = "fn f(v: &mut Vec<DegradationEvent>) {\n    // rbd-lint: allow(observability) — caller re-emits the whole vec to its sink\n    v.push(DegradationEvent { stage, cause });\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_budget() {
        let src = "fn f(n: usize) -> Vec<u8> {\n    // rbd-lint: allow(budget) — n is the token count, capped upstream\n    Vec::with_capacity(n)\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- concurrency rule ---

    #[test]
    fn raw_thread_spawn_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| ());\n}\n";
        let findings = lint(src);
        assert_eq!(rules_of(&findings), vec![Rule::Concurrency]);
        assert_eq!(findings.first().map(|f| f.severity), Some(Severity::Deny));
    }

    #[test]
    fn thread_builder_flagged() {
        let src = "fn f() {\n    let b = std::thread::Builder::new();\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::Concurrency]);
    }

    #[test]
    fn unbounded_mpsc_channel_flagged() {
        let src = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u64>();\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::Concurrency]);
    }

    #[test]
    fn bounded_sync_channel_is_clean() {
        let src = "fn f() {\n    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(8);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn spawn_inside_pipeline_crate_is_exempt() {
        let src = "fn f() {\n    std::thread::spawn(|| ());\n}\n";
        let findings = lint_source(
            Path::new("crates/pipeline/src/pool.rs"),
            src,
            Tier::Library,
            false,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn unbounded_channel_denied_even_inside_pipeline() {
        let src = "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u64>();\n}\n";
        let findings = lint_source(
            Path::new("crates/pipeline/src/pool.rs"),
            src,
            Tier::Library,
            false,
        );
        assert_eq!(rules_of(&findings), vec![Rule::Concurrency]);
    }

    #[test]
    fn spawn_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| ()); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_concurrency() {
        let src = "fn f() {\n    // rbd-lint: allow(concurrency) — one-shot watchdog, joined before return\n    std::thread::spawn(|| ());\n}\n";
        assert!(lint(src).is_empty());
    }

    // --- concurrency rule: serve tier (accept without socket deadlines) ---

    fn lint_serve(src: &str) -> Vec<Finding> {
        lint_source(
            Path::new("crates/serve/src/server.rs"),
            src,
            Tier::Library,
            false,
        )
    }

    #[test]
    fn accept_without_timeouts_flagged_in_serve() {
        let src = "fn f(l: &std::net::TcpListener) {\n    let (s, _) = l.accept().unwrap();\n    drop(s);\n}\n";
        let findings = lint_serve(src);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == Rule::Concurrency && f.severity == Severity::Deny),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("set_read_timeout")),
            "{findings:?}"
        );
    }

    #[test]
    fn accept_with_one_timeout_still_flagged() {
        let src = "fn f(l: &std::net::TcpListener) {\n    let (s, _) = l.accept().expect(\"x\");\n    s.set_read_timeout(None).expect(\"x\");\n}\n";
        assert!(
            lint_serve(src).iter().any(|f| f.rule == Rule::Concurrency),
            "one deadline is not enough"
        );
    }

    #[test]
    fn accept_with_both_timeouts_is_clean() {
        let src = "fn f(l: &std::net::TcpListener) -> std::io::Result<()> {\n    let (s, _) = l.accept()?;\n    s.set_read_timeout(None)?;\n    s.set_write_timeout(None)?;\n    Ok(())\n}\n";
        let findings = lint_serve(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::Concurrency),
            "{findings:?}"
        );
    }

    #[test]
    fn accept_rule_only_applies_under_serve_paths() {
        let src = "fn f(l: &std::net::TcpListener) -> std::io::Result<()> {\n    let (s, _) = l.accept()?;\n    drop(s);\n    Ok(())\n}\n";
        let findings = lint_source(
            Path::new("crates/eval/src/fetch.rs"),
            src,
            Tier::Library,
            false,
        );
        assert!(
            !findings.iter().any(|f| f.rule == Rule::Concurrency),
            "{findings:?}"
        );
    }

    #[test]
    fn acceptable_identifier_does_not_trip_accept_rule() {
        let src = "fn f(x: &T) {\n    x.acceptable();\n    accept(1);\n}\n";
        let findings = lint_serve(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::Concurrency),
            "{findings:?}"
        );
    }

    // --- metric-name rule ---

    #[test]
    fn unprefixed_metric_name_flagged() {
        let src = "fn f(sink: &dyn TraceSink) {\n    sink.add(\"docs_extracted\", 1);\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::MetricName]);
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
        assert!(
            f.first()
                .is_some_and(|x| x.message.contains("docs_extracted")),
            "{f:?}"
        );
    }

    #[test]
    fn non_snake_case_metric_name_flagged() {
        for src in [
            "fn f(r: &Registry) {\n    r.observe(\"serve:latency\", 5);\n}\n",
            "fn f(r: &Registry) {\n    r.add(\"serve_Requests\", 1);\n}\n",
            "fn f(r: &Registry) {\n    r.add(\"serve_requests-ok\", 1);\n}\n",
        ] {
            let f = lint(src);
            assert_eq!(rules_of(&f), vec![Rule::MetricName], "{src}");
        }
    }

    #[test]
    fn prefixed_snake_case_metric_names_pass() {
        for src in [
            "fn f(s: &dyn TraceSink) {\n    s.add(\"serve_requests_ok\", 1);\n}\n",
            "fn f(s: &dyn TraceSink) {\n    s.add(\"pipeline_queue_wait\", 1);\n}\n",
            "fn f(r: &Registry) {\n    r.observe(\"extract_tags_scanned\", 42);\n}\n",
            "fn f(r: &Registry) {\n    r.add(\"trace_events_dropped\", 1);\n}\n",
        ] {
            assert!(lint(src).is_empty(), "{src} -> {:?}", lint(src));
        }
    }

    #[test]
    fn non_literal_and_non_string_arguments_are_out_of_scope() {
        for src in [
            // Span names flow through a variable; the callee owns hygiene.
            "fn f(r: &Registry, span: Span) {\n    r.observe(span.name, span.nanos);\n}\n",
            // Arithmetic `.add(` with a numeric literal is not registration.
            "fn f(n: u64) -> Option<u64> {\n    n.checked_add(1)\n}\n",
        ] {
            assert!(lint(src).is_empty(), "{src} -> {:?}", lint(src));
        }
    }

    #[test]
    fn metric_name_rule_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { sink.add(\"whatever\", 1); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_metric_name() {
        let src = "fn f(s: &dyn TraceSink) {\n    // rbd-lint: allow(metric-name) — legacy dashboard key, renamed in the next major\n    s.add(\"docs_extracted\", 1);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn metric_name_denies_in_library_tier_too() {
        let src = "fn f(s: &dyn TraceSink) {\n    s.add(\"bad\", 1);\n}\n";
        let f = lint_source(Path::new("a.rs"), src, Tier::Library, false);
        assert_eq!(
            f.first().map(|x| (x.rule, x.severity)),
            Some((Rule::MetricName, Severity::Deny))
        );
    }

    #[test]
    fn store_prefixed_metric_names_pass() {
        let src = "fn f(s: &dyn TraceSink) {\n    s.add(\"store_cache_hits\", 1);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    // --- store-durability rule ---

    fn lint_store(src: &str) -> Vec<Finding> {
        lint_source(
            Path::new("crates/store/src/log.rs"),
            src,
            Tier::Library,
            false,
        )
    }

    #[test]
    fn unsynced_write_flagged_in_store_paths() {
        let src = "fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {\n    use std::io::Write;\n    file.write_all(buf)?;\n    Ok(())\n}\n";
        let findings = lint_store(src);
        assert_eq!(rules_of(&findings), vec![Rule::StoreDurability]);
        assert_eq!(findings.first().map(|x| x.severity), Some(Severity::Deny));
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("sync_all") && f.message.contains("`f`")),
            "{findings:?}"
        );
    }

    #[test]
    fn bare_write_without_sync_also_flagged() {
        let src = "fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<usize> {\n    use std::io::Write;\n    file.write(buf)\n}\n";
        assert_eq!(rules_of(&lint_store(src)), vec![Rule::StoreDurability]);
    }

    #[test]
    fn write_followed_by_sync_is_clean() {
        let src = "fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {\n    use std::io::Write;\n    file.write_all(buf)?;\n    file.sync_data()?;\n    Ok(())\n}\n";
        let findings = lint_store(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }

    #[test]
    fn delegating_to_a_sync_helper_is_clean() {
        // Callers that route bytes through the store's centralized
        // write-and-sync helper never touch `.write(` themselves, so the
        // rule sees only the helper — which names the sync call.
        let src = "fn commit(s: &mut Store, buf: &[u8]) -> std::io::Result<()> {\n    s.write_and_sync(0, buf)\n}\n";
        let findings = lint_store(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }

    #[test]
    fn open_options_write_flag_is_not_a_data_write() {
        let src = "fn f(p: &std::path::Path) -> std::io::Result<std::fs::File> {\n    std::fs::OpenOptions::new().read(true).write(true).create(true).open(p)\n}\n";
        let findings = lint_store(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }

    #[test]
    fn store_durability_only_applies_under_store_paths() {
        let src = "fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {\n    use std::io::Write;\n    file.write_all(buf)?;\n    Ok(())\n}\n";
        let findings = lint_source(
            Path::new("crates/trace/src/export.rs"),
            src,
            Tier::Library,
            false,
        );
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }

    #[test]
    fn store_durability_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        use std::io::Write;\n        let mut f = std::fs::File::create(\"x\").unwrap();\n        f.write_all(b\"y\").unwrap();\n    }\n}\n";
        let findings = lint_store(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }

    #[test]
    fn justified_allow_suppresses_store_durability() {
        let src = "fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {\n    use std::io::Write;\n    // rbd-lint: allow(store-durability) — scratch temp file, synced by the caller on rename\n    file.write_all(buf)?;\n    Ok(())\n}\n";
        let findings = lint_store(src);
        assert!(
            !findings.iter().any(|f| f.rule == Rule::StoreDurability),
            "{findings:?}"
        );
    }
}
