//! `rbd-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! rbd-lint               # lint the whole workspace (finds the root itself)
//! rbd-lint PATH...       # lint specific files/crate dirs at the strict tier
//! rbd-lint --quiet ...   # suppress warn-level findings
//! rbd-lint --json ...    # machine-readable report on stdout
//! ```
//!
//! Exit status: 0 when no deny-severity finding survives, 1 when any does,
//! 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use rbd_json::Json;
use rbd_lint::{
    find_workspace_root, has_deny, lint_path_report, lint_workspace_report, Finding, Report,
    Severity,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: rbd-lint [--quiet] [--json] [PATH...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!(
                    "rbd-lint: unknown flag `{other}`\nusage: rbd-lint [--quiet] [--json] [PATH...]"
                );
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let report = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("rbd-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("rbd-lint: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        };
        match lint_workspace_report(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("rbd-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Report::default();
        for p in &paths {
            match lint_path_report(p) {
                Ok(r) => {
                    all.findings.extend(r.findings);
                    all.justified.extend(r.justified);
                }
                Err(e) => {
                    eprintln!("rbd-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    if json {
        println!("{}", to_json(&report).to_pretty());
    } else {
        print_human(&report.findings, quiet);
    }
    if has_deny(&report.findings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn to_json(report: &Report) -> Json {
    let findings = Json::array(report.findings.iter().map(|f| {
        Json::object([
            ("path", Json::Str(f.file.display().to_string())),
            ("line", Json::UInt(f.line as u64)),
            ("rule", Json::Str(f.rule.name().to_owned())),
            ("severity", Json::Str(f.severity.to_string())),
            ("message", Json::Str(f.message.clone())),
        ])
    }));
    let justified = Json::array(report.justified.iter().map(|j| {
        Json::object([
            ("path", Json::Str(j.file.display().to_string())),
            ("line", Json::UInt(j.line as u64)),
            (
                "rules",
                Json::array(j.rules.iter().map(|r| Json::Str(r.clone()))),
            ),
            ("justification", Json::Str(j.justification.clone())),
        ])
    }));
    let denies = count(&report.findings, Severity::Deny);
    let warns = count(&report.findings, Severity::Warn);
    Json::object([
        ("findings", findings),
        ("justified", justified),
        (
            "summary",
            Json::object([
                ("deny", Json::UInt(denies as u64)),
                ("warn", Json::UInt(warns as u64)),
                ("justified", Json::UInt(report.justified.len() as u64)),
            ]),
        ),
    ])
}

fn count(findings: &[Finding], severity: Severity) -> usize {
    findings.iter().filter(|f| f.severity == severity).count()
}

fn print_human(findings: &[Finding], quiet: bool) {
    let mut warns = 0usize;
    let mut denies = 0usize;
    for f in findings {
        match f.severity {
            Severity::Warn => {
                warns += 1;
                if !quiet {
                    println!("{f}");
                }
            }
            Severity::Deny => {
                denies += 1;
                println!("{f}");
            }
        }
    }
    println!("rbd-lint: {denies} deny, {warns} warn");
}
