//! `rbd-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! rbd-lint               # lint the whole workspace (finds the root itself)
//! rbd-lint PATH...       # lint specific files/crate dirs at the strict tier
//! rbd-lint --quiet ...   # suppress warn-level findings
//! ```
//!
//! Exit status: 0 when no deny-severity finding survives, 1 when any does,
//! 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use rbd_lint::{find_workspace_root, has_deny, lint_path, lint_workspace, Finding, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: rbd-lint [--quiet] [PATH...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("rbd-lint: unknown flag `{other}`\nusage: rbd-lint [--quiet] [PATH...]");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let findings = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("rbd-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("rbd-lint: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("rbd-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Vec::new();
        for p in &paths {
            match lint_path(p) {
                Ok(f) => all.extend(f),
                Err(e) => {
                    eprintln!("rbd-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    report(&findings, quiet);
    if has_deny(&findings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report(findings: &[Finding], quiet: bool) {
    let mut warns = 0usize;
    let mut denies = 0usize;
    for f in findings {
        match f.severity {
            Severity::Warn => {
                warns += 1;
                if !quiet {
                    println!("{f}");
                }
            }
            Severity::Deny => {
                denies += 1;
                println!("{f}");
            }
        }
    }
    println!("rbd-lint: {denies} deny, {warns} warn");
}
