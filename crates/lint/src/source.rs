//! Lexical preprocessing of Rust source for the rule pass.
//!
//! The rules operate on a *masked* copy of the source in which the interiors
//! of string literals, character literals and comments are blanked out (byte
//! length and line structure preserved), so a `panic!` inside a doc comment
//! or a `"[...]"` inside a test string can never trigger a finding. The same
//! pass extracts `rbd-lint: allow(...)` directives from comments and marks
//! the line ranges of `#[cfg(test)]` items, which are exempt from the
//! panic-freedom rules.

/// A parsed `// rbd-lint: allow(<rules>) — <justification>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line the directive's comment starts on.
    pub line: usize,
    /// 1-based line the directive suppresses findings on: the comment's own
    /// line when code shares it, otherwise the next line.
    pub target_line: usize,
    /// The justification text after the rule list (may be empty — an empty
    /// justification is itself a deny-level finding).
    pub justification: String,
}

/// The result of the masking pass over one file.
#[derive(Debug)]
pub struct Analysis {
    /// Source with string/char-literal and comment interiors blanked.
    /// Identical length and newline positions to the original.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Per line (index 0 = line 1): `true` when the line lies inside a
    /// `#[cfg(test)]` item and is exempt from panic-freedom rules.
    pub test_lines: Vec<bool>,
    /// Allow directives found in comments, in document order.
    pub allows: Vec<AllowDirective>,
    /// Comments whose text mentions `rbd-lint:` but could not be parsed as a
    /// well-formed allow or lock-order directive (reported as `bad-allow`).
    pub malformed_allows: Vec<usize>,
    /// Canonical lock-acquisition chains declared with
    /// `// rbd-lint: lock-order(a < b < c)`: each inner vec lists lock
    /// names from outermost to innermost. File-scoped.
    pub lock_orders: Vec<Vec<String>>,
}

impl Analysis {
    /// 1-based line number containing byte `offset`. Offsets past the end
    /// of the source clamp to the last line.
    pub fn line_of(&self, offset: usize) -> usize {
        line_at(&self.line_starts, offset)
    }

    /// `true` when `line` (1-based) is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.test_lines.get(i))
            .copied()
            .unwrap_or(false)
    }

    /// `true` when a justified allow directive for `rule` targets `line`.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.target_line == line
                && !a.justification.is_empty()
                && a.rules.iter().any(|r| r == rule)
        })
    }
}

/// Lexer state while masking.
enum State {
    Code,
    LineComment { start: usize },
    BlockComment { start: usize, depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Masks `source`: blanks string/char literals and comments, keeping
/// newlines, and collects comments for directive parsing.
pub fn analyze(source: &str) -> Analysis {
    let bytes = source.as_bytes();
    // rbd-lint: allow(budget) — sized to the input, which rustc already holds in memory
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    // (start offset, text) of every comment.
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut state = State::Code;
    let mut i = 0;

    // Pushes a blank for byte `b`, preserving line structure.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while let Some(&b) = bytes.get(i) {
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                if b == b'/' && next == Some(b'/') {
                    state = State::LineComment { start: i };
                    blank(&mut masked, b);
                    i += 1;
                } else if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment { start: i, depth: 1 };
                    blank(&mut masked, b);
                    blank(&mut masked, b'*');
                    i += 2;
                } else if b == b'"' {
                    // Raw/byte-string prefixes: look behind for r/b/br + hashes.
                    let (is_raw, hashes) = raw_prefix(bytes, i);
                    masked.push(b'"');
                    state = if is_raw {
                        State::RawStr { hashes }
                    } else {
                        State::Str
                    };
                    i += 1;
                } else if b == b'\'' {
                    // Distinguish char literal from lifetime: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    if is_char_literal(bytes, i) {
                        masked.push(b'\'');
                        state = State::Char;
                        i += 1;
                    } else {
                        masked.push(b);
                        i += 1;
                    }
                } else {
                    masked.push(b);
                    i += 1;
                }
            }
            State::LineComment { start } => {
                if b == b'\n' {
                    push_comment(&mut comments, bytes, start, i);
                    masked.push(b'\n');
                    state = State::Code;
                } else {
                    blank(&mut masked, b);
                }
                i += 1;
            }
            State::BlockComment { start, depth } => {
                let next = bytes.get(i + 1).copied();
                if b == b'*' && next == Some(b'/') {
                    blank(&mut masked, b);
                    blank(&mut masked, b'/');
                    i += 2;
                    if depth == 1 {
                        push_comment(&mut comments, bytes, start, i);
                        state = State::Code;
                    } else {
                        state = State::BlockComment {
                            start,
                            depth: depth - 1,
                        };
                    }
                } else if b == b'/' && next == Some(b'*') {
                    blank(&mut masked, b);
                    blank(&mut masked, b'*');
                    i += 2;
                    state = State::BlockComment {
                        start,
                        depth: depth + 1,
                    };
                } else {
                    blank(&mut masked, b);
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    blank(&mut masked, b);
                    if let Some(&esc) = bytes.get(i + 1) {
                        blank(&mut masked, esc);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'"' {
                    masked.push(b'"');
                    state = State::Code;
                    i += 1;
                } else {
                    blank(&mut masked, b);
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if b == b'"' && has_hashes(bytes, i + 1, hashes) {
                    masked.push(b'"');
                    masked.extend(std::iter::repeat_n(b' ', hashes));
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    blank(&mut masked, b);
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' {
                    blank(&mut masked, b);
                    if let Some(&esc) = bytes.get(i + 1) {
                        blank(&mut masked, esc);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'\'' {
                    masked.push(b'\'');
                    state = State::Code;
                    i += 1;
                } else {
                    blank(&mut masked, b);
                    i += 1;
                }
            }
        }
    }
    // EOF inside a line comment still yields the comment.
    if let State::LineComment { start } = state {
        push_comment(&mut comments, bytes, start, bytes.len());
    }

    let masked = String::from_utf8_lossy(&masked).into_owned();
    let line_starts = line_starts(&masked);
    let test_lines = mark_test_lines(&masked, &line_starts);
    let (allows, malformed_allows, lock_orders) = parse_allows(&comments, &masked, &line_starts);
    Analysis {
        masked,
        line_starts,
        test_lines,
        allows,
        malformed_allows,
        lock_orders,
    }
}

/// Detects an `r`/`b`/`br`/`rb` + `#…` raw-string prefix ending at the quote
/// at `quote`. Returns `(is_raw, hash_count)`.
fn raw_prefix(bytes: &[u8], quote: usize) -> (bool, usize) {
    let mut j = quote;
    let mut hashes = 0;
    while j > 0 && bytes.get(j - 1) == Some(&b'#') {
        j -= 1;
        hashes += 1;
    }
    let at = |k: usize| j.checked_sub(k).and_then(|p| bytes.get(p)).copied();
    let is_raw = match (at(1), at(2), at(3)) {
        // `r"` / `r#"` — not preceded by an identifier byte.
        (Some(b'r'), Some(b'b'), prev) => !matches!(prev, Some(c) if is_ident_byte(c)),
        (Some(b'r'), prev, _) => !matches!(prev, Some(c) if is_ident_byte(c)),
        _ => false,
    };
    if is_raw {
        (true, hashes)
    } else {
        (false, 0)
    }
}

/// `true` if `count` `#` bytes start at `from`.
fn has_hashes(bytes: &[u8], from: usize, count: usize) -> bool {
    (0..count).all(|k| bytes.get(from + k) == Some(&b'#'))
}

/// Heuristic: the `'` at `i` starts a char literal (not a lifetime).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            if is_ident_byte(c) {
                // `'x'` is a char literal; `'x` followed by anything else is
                // a lifetime. Multibyte chars always end with a quote.
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                // Punctuation or multibyte start: only a char literal can
                // contain it.
                c != b'\'' || bytes.get(i + 2) == Some(&b'\'')
            }
        }
        None => false,
    }
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn push_comment(comments: &mut Vec<(usize, String)>, bytes: &[u8], start: usize, end: usize) {
    let text = String::from_utf8_lossy(bytes.get(start..end).unwrap_or(&[])).into_owned();
    comments.push((start, text));
}

fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Marks every line inside a `#[cfg(test)]` item (attribute through the end
/// of the item's brace block) as test-exempt.
fn mark_test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut test = vec![false; line_starts.len()];
    let needle = "#[cfg(test)]";
    let mut from = 0;
    while let Some(rel) = masked.get(from..).and_then(|s| s.find(needle)) {
        let attr_start = from + rel;
        let after_attr = attr_start + needle.len();
        // Find the opening `{` of the annotated item, then its matching `}`.
        if let Some(open) = masked.get(after_attr..).and_then(|s| s.find('{')) {
            let open_abs = after_attr + open;
            let close_abs = match_brace(masked, open_abs).unwrap_or(masked.len());
            let first = line_at(line_starts, attr_start);
            let last = line_at(line_starts, close_abs);
            for flag in test
                .iter_mut()
                .skip(first.saturating_sub(1))
                .take(last.saturating_sub(first) + 1)
            {
                *flag = true;
            }
            from = close_abs;
        } else {
            from = after_attr;
        }
    }
    test
}

/// Byte offset of the `}` matching the `{` at `open` (masked source, so
/// braces in strings/comments are already gone).
pub(crate) fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in masked.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// 1-based line containing byte `offset`; clamps past-the-end offsets to
/// the last line instead of inventing one beyond it.
fn line_at(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i.clamp(1, line_starts.len().max(1)),
    }
}

/// Parses `rbd-lint: allow(rule, rule) — justification` and
/// `rbd-lint: lock-order(a < b < c)` out of comments.
fn parse_allows(
    comments: &[(usize, String)],
    masked: &str,
    line_starts: &[usize],
) -> (Vec<AllowDirective>, Vec<usize>, Vec<Vec<String>>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let mut lock_orders = Vec::new();
    for (offset, text) in comments {
        // Directives are plain comments; doc comments merely *document* the
        // syntax and must not be parsed as directives.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        let Some(at) = text.find("rbd-lint:") else {
            continue;
        };
        let line = line_at(line_starts, *offset);
        let rest = text
            .get(at + "rbd-lint:".len()..)
            .unwrap_or("")
            .trim_start();
        if let Some(args) = rest.strip_prefix("lock-order(") {
            match parse_lock_order(args) {
                Some(chain) => lock_orders.push(chain),
                None => malformed.push(line),
            }
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed.push(line);
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push(line);
            continue;
        };
        let rules: Vec<String> = args
            .get(..close)
            .unwrap_or("")
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            malformed.push(line);
            continue;
        }
        let justification = args
            .get(close + 1..)
            .unwrap_or("")
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim()
            .to_owned();
        // The directive covers its own line when code precedes the comment
        // on that line; a comment alone on a line covers the next line.
        let alone_on_line = line
            .checked_sub(1)
            .and_then(|i| line_starts.get(i))
            .and_then(|&ls| masked.get(ls..*offset))
            .is_some_and(|before| before.trim().is_empty());
        let target_line = if alone_on_line { line + 1 } else { line };
        allows.push(AllowDirective {
            rules,
            line,
            target_line,
            justification,
        });
    }
    (allows, malformed, lock_orders)
}

/// Parses the body of `lock-order(a < b < c)`: at least two `<`-separated
/// identifier-only lock names before the closing paren.
fn parse_lock_order(args: &str) -> Option<Vec<String>> {
    let close = args.find(')')?;
    let chain: Vec<String> = args
        .get(..close)?
        .split('<')
        .map(|n| n.trim().to_owned())
        .collect();
    let well_formed = chain.len() >= 2
        && chain
            .iter()
            .all(|n| !n.is_empty() && n.bytes().all(is_ident_byte));
    if well_formed {
        Some(chain)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let a = analyze("let x = \"panic!()\"; // .unwrap()\nlet y = 1;");
        assert!(!a.masked.contains("panic!"));
        assert!(!a.masked.contains(".unwrap()"));
        assert!(a.masked.contains("let x ="));
        assert!(a.masked.contains("let y = 1;"));
    }

    #[test]
    fn masking_preserves_length_and_lines() {
        let src = "let a = \"x\ny\"; /* b\nc */ let d = 'z';\n";
        let a = analyze(src);
        assert_eq!(a.masked.len(), src.len());
        assert_eq!(a.masked.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn raw_strings_masked() {
        let a = analyze("let p = r#\"slice[0].unwrap()\"#;");
        assert!(!a.masked.contains("unwrap"));
        assert!(!a.masked.contains('['));
    }

    #[test]
    fn lifetimes_not_treated_as_chars() {
        let a = analyze("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(a.masked.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn char_literals_masked() {
        let a = analyze("let c = '['; let d = '\\'';");
        assert!(!a.masked.contains('['));
    }

    #[test]
    fn nested_block_comments() {
        let a = analyze("/* outer /* inner */ still comment */ let x = 1;");
        assert!(a.masked.contains("let x = 1;"));
        assert!(!a.masked.contains("outer"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let a = analyze(src);
        assert!(!a.is_test_line(1));
        assert!(a.is_test_line(2));
        assert!(a.is_test_line(3));
        assert!(a.is_test_line(4));
        assert!(a.is_test_line(5));
        assert!(!a.is_test_line(6));
    }

    #[test]
    fn allow_directive_same_line() {
        let src =
            "let x = v[0]; // rbd-lint: allow(panic) — index proven in bounds by loop guard\n";
        let a = analyze(src);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows.first().map(|d| d.target_line), Some(1));
        assert!(a.is_allowed("panic", 1));
        assert!(!a.is_allowed("cast", 1));
    }

    #[test]
    fn allow_directive_line_above() {
        let src =
            "// rbd-lint: allow(cast) — count bounded by u16::MAX upstream\nlet x = n as u16;\n";
        let a = analyze(src);
        assert_eq!(a.allows.first().map(|d| d.target_line), Some(2));
        assert!(a.is_allowed("cast", 2));
    }

    #[test]
    fn allow_without_justification_is_not_effective() {
        let src = "let x = v[0]; // rbd-lint: allow(panic)\n";
        let a = analyze(src);
        assert_eq!(a.allows.len(), 1);
        assert!(!a.is_allowed("panic", 1));
    }

    #[test]
    fn allow_multiple_rules() {
        let src = "x; // rbd-lint: allow(panic, cast) — both justified here\n";
        let a = analyze(src);
        assert!(a.is_allowed("panic", 1));
        assert!(a.is_allowed("cast", 1));
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let a = analyze("/// Waive with `rbd-lint: allow(panic) — why`.\n//! Or `rbd-lint: allow(rule)`.\nfn f() {}\n");
        assert!(a.allows.is_empty());
        assert!(a.malformed_allows.is_empty());
    }

    #[test]
    fn malformed_directive_reported() {
        let a = analyze("// rbd-lint: allww(panic) — typo\n");
        assert_eq!(a.malformed_allows, vec![1]);
    }

    #[test]
    fn line_of_maps_offsets() {
        let a = analyze("a\nb\nc\n");
        assert_eq!(a.line_of(0), 1);
        assert_eq!(a.line_of(2), 2);
        assert_eq!(a.line_of(4), 3);
    }

    #[test]
    fn line_of_clamps_past_the_end() {
        let a = analyze("a\nb");
        assert_eq!(a.line_of(1000), 2);
        let empty = analyze("");
        assert_eq!(empty.line_of(0), 1);
        assert_eq!(empty.line_of(7), 1);
    }

    #[test]
    fn raw_string_with_multiple_hashes() {
        // The embedded `"#` must not close an `r##"…"##` string.
        let src = "let p = r##\"has \"# inside .unwrap()\"##; let q = 1;";
        let a = analyze(src);
        assert_eq!(a.masked.len(), src.len());
        assert!(!a.masked.contains("unwrap"));
        assert!(!a.masked.contains("inside"));
        assert!(a.masked.contains("let q = 1;"));
    }

    #[test]
    fn byte_string_and_raw_byte_string_masked() {
        let a = analyze("let b = b\"panic!\"; let r = br#\"x[0]\"#; let z = 2;");
        assert!(!a.masked.contains("panic"));
        assert!(!a.masked.contains("[0]"));
        assert!(a.masked.contains("let z = 2;"));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "/* a /* b /* c */ b */ a */ let x = 1; /* tail */";
        let a = analyze(src);
        assert!(a.masked.contains("let x = 1;"));
        assert!(!a.masked.contains('a'));
        assert!(!a.masked.contains("tail"));
    }

    #[test]
    fn string_with_escaped_quotes_masked() {
        let src = "let s = \"say \\\"panic!()\\\" ok\"; let t = 3;";
        let a = analyze(src);
        assert!(!a.masked.contains("panic"));
        assert!(a.masked.contains("let t = 3;"));
    }

    #[test]
    fn char_literal_with_escaped_quote_and_backslash() {
        let src = "let q = '\\''; let b = '\\\\'; let u = 4;";
        let a = analyze(src);
        assert_eq!(a.masked.len(), src.len());
        assert!(a.masked.contains("let u = 4;"));
    }

    #[test]
    fn cfg_test_span_ending_at_eof() {
        // Unclosed test module: the exemption must run to EOF, not panic
        // or stop early.
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n";
        let a = analyze(src);
        assert!(!a.is_test_line(1));
        assert!(a.is_test_line(2));
        assert!(a.is_test_line(4));
    }

    #[test]
    fn cfg_test_attr_without_brace() {
        // `#[cfg(test)]` at EOF with no following item must not loop or
        // mark anything spurious.
        let a = analyze("fn live() {}\n#[cfg(test)]");
        assert!(!a.is_test_line(1));
    }

    #[test]
    fn lock_order_declaration_parsed() {
        let a = analyze("// rbd-lint: lock-order(counters < histograms)\nfn f() {}\n");
        assert_eq!(
            a.lock_orders,
            vec![vec!["counters".to_owned(), "histograms".to_owned()]]
        );
        assert!(a.malformed_allows.is_empty());
    }

    #[test]
    fn lock_order_three_way_chain() {
        let a = analyze("// rbd-lint: lock-order(a < b < c)\n");
        assert_eq!(
            a.lock_orders,
            vec![vec!["a".to_owned(), "b".to_owned(), "c".to_owned()]]
        );
    }

    #[test]
    fn lock_order_single_name_is_malformed() {
        let a = analyze("// rbd-lint: lock-order(alpha)\n");
        assert!(a.lock_orders.is_empty());
        assert_eq!(a.malformed_allows, vec![1]);
    }

    #[test]
    fn lock_order_bad_name_is_malformed() {
        let a = analyze("// rbd-lint: lock-order(self.a < b)\n");
        assert!(a.lock_orders.is_empty());
        assert_eq!(a.malformed_allows, vec![1]);
    }
}
