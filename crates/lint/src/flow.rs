//! Structural concurrency and error-flow rules over the token model.
//!
//! Three rules live here, all deny-severity in every tier:
//!
//! * `lock-order` — a second `Mutex`/`RwLock` acquired while another lock's
//!   guard is still live in the same function, unless the pair appears in a
//!   declared canonical order (`// rbd-lint: lock-order(a < b)`). This is a
//!   static deadlock detector: two functions taking the same pair of locks
//!   in opposite orders is the classic ABBA deadlock.
//! * `guard-across-blocking` — a live lock guard spanning a blocking call:
//!   a `Condvar::wait` on a *different* lock, a channel `send`/`recv`, a
//!   `JoinHandle::join`, or a `thread::sleep`. Whatever that call waits for
//!   may itself need the held lock.
//! * `swallowed-error` — `let _ = call(...)` or a trailing `.ok();`
//!   discarding a `Result` in non-test library code with no adjacent trace
//!   emission and no justified allow. Binary targets are exempt: a CLI
//!   writing to a closed stdout has nothing better to do than ignore it.
//!
//! The guard-liveness model is intentionally conservative and mirrors
//! Rust's temporary-lifetime rules: a let-bound guard (`let g = m.lock()
//! .unwrap_or_else(..);`) is live from its binding to the first `drop(g)`
//! or the end of its enclosing block; a guard used as a temporary is live
//! to the end of its enclosing statement — which is why both guards in a
//! single struct-literal expression overlap.

use crate::rules::{push, Finding, Rule, Tier};
use crate::source::Analysis;
use crate::tokens::{FnItem, Model, TokenKind};
use std::path::Path;

/// Methods that acquire a lock guard when called with no arguments:
/// `Mutex::lock`, `RwLock::read`, `RwLock::write`. The empty-parens
/// requirement keeps `io::Read::read(buf)` and friends out.
const ACQUIRERS: &[&str] = &["lock", "read", "write"];

/// Methods that block the calling thread. `recv` and `join` must be
/// zero-argument calls so `Path::join("src")` and custom `recv(queue)`
/// helpers never match; the rest carry arguments by signature.
const BLOCKING_ANY_ARGS: &[&str] = &["send", "recv_timeout", "wait", "wait_timeout"];
const BLOCKING_NO_ARGS: &[&str] = &["recv", "join"];

/// A lock guard made live by an acquisition site.
#[derive(Debug)]
struct Guard {
    /// Name of the lock the guard came from: the receiver identifier just
    /// before `.lock()`/`.read()`/`.write()`.
    lock: String,
    /// Binding name when the statement is `let g = <acquisition-chain>;`
    /// with nothing but `unwrap`/`expect`/`unwrap_or_else`/`?` after the
    /// acquisition. `None` for temporaries.
    binding: Option<String>,
    /// Token index of the acquiring method identifier.
    site: usize,
    /// Exclusive token index at which the guard is provably dead.
    until: usize,
}

/// Runs the three flow rules over every function in the file.
pub(crate) fn check_flow(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    tier: Tier,
    findings: &mut Vec<Finding>,
) {
    for f in &m.fns {
        let guards = collect_guards(m, f);
        check_lock_order(path, a, m, &guards, tier, findings);
        check_guard_across_blocking(path, a, m, f, &guards, tier, findings);
    }
    check_swallowed_error(path, a, m, tier, findings);
}

/// `lock-order`: every pair of overlapping guards from *different* locks
/// must match a declared canonical order.
fn check_lock_order(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    guards: &[Guard],
    tier: Tier,
    findings: &mut Vec<Finding>,
) {
    for g in guards {
        for h in guards {
            if h.site <= g.site || h.site >= g.until || h.lock == g.lock {
                continue;
            }
            if order_allows(&a.lock_orders, &g.lock, &h.lock) {
                continue;
            }
            push(
                findings,
                path,
                a.line_of(m.start(h.site)),
                Rule::LockOrder,
                tier.severity(Rule::LockOrder),
                format!(
                    "lock `{}` acquired while the guard of `{}` is live; declare \
                     `// rbd-lint: lock-order({} < {})` as the canonical order or \
                     release the first guard before this acquisition",
                    h.lock, g.lock, g.lock, h.lock
                ),
            );
        }
    }
}

/// `true` when some declared chain orders `first` strictly before `second`.
fn order_allows(orders: &[Vec<String>], first: &str, second: &str) -> bool {
    orders.iter().any(|chain| {
        let a = chain.iter().position(|n| n == first);
        let b = chain.iter().position(|n| n == second);
        matches!((a, b), (Some(i), Some(j)) if i < j)
    })
}

/// `guard-across-blocking`: a blocking call while a guard is live, except
/// the condvar-wait idiom that atomically releases the very guard it is
/// handed (`cv.wait(guard)` / `cv.wait_timeout(guard, ..)`), or an
/// acquisition nested inside the wait's own argument list.
fn check_guard_across_blocking(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    f: &FnItem,
    guards: &[Guard],
    tier: Tier,
    findings: &mut Vec<Finding>,
) {
    let mut i = f.body_open + 1;
    while i < f.body_close {
        let Some(site) = blocking_site(m, i) else {
            i += 1;
            continue;
        };
        for g in guards {
            if site.meth <= g.site || site.meth >= g.until {
                continue;
            }
            if site.is_wait {
                // `cv.wait(state)` hands the guard to the condvar, which
                // releases it while blocked: the correct idiom, not a bug.
                let first_arg_is_guard = g
                    .binding
                    .as_deref()
                    .is_some_and(|b| m.is_ident(site.open + 1, b));
                let acquired_inside_args =
                    g.site > site.open && site.close.is_some_and(|c| g.site < c);
                if first_arg_is_guard || acquired_inside_args {
                    continue;
                }
            }
            push(
                findings,
                path,
                a.line_of(m.start(site.meth)),
                Rule::GuardAcrossBlocking,
                tier.severity(Rule::GuardAcrossBlocking),
                format!(
                    "blocking call `{}` while the guard of `{}` is live; drop the \
                     guard first or justify with allow(guard-across-blocking)",
                    site.label, g.lock
                ),
            );
        }
        i += 1;
    }
}

/// A recognized blocking call.
struct BlockingSite {
    /// Token index of the method/function identifier.
    meth: usize,
    /// Token index of the call's `(`.
    open: usize,
    /// Token index of the call's `)`, when matched.
    close: Option<usize>,
    /// `true` for `wait`/`wait_timeout` (eligible for the condvar idiom).
    is_wait: bool,
    /// Display name for the finding message.
    label: String,
}

/// Recognizes a blocking call whose method identifier sits at `i`'s
/// position: `.send(..)`, `.recv()`, `.recv_timeout(..)`, `.join()`,
/// `.wait(..)`, `.wait_timeout(..)`, or `thread::sleep(..)`.
fn blocking_site(m: &Model<'_>, i: usize) -> Option<BlockingSite> {
    if m.is_ident(i, "thread") && m.is_punct(i + 1, "::") && m.is_ident(i + 2, "sleep") {
        let open = i + 3;
        if m.is_punct(open, "(") {
            return Some(BlockingSite {
                meth: i + 2,
                open,
                close: m.blocks.close_of(open),
                is_wait: false,
                label: "thread::sleep".to_owned(),
            });
        }
        return None;
    }
    if !m.is_punct(i, ".") || m.kind(i + 1) != Some(TokenKind::Ident) {
        return None;
    }
    let meth = m.text(i + 1);
    let any_args = BLOCKING_ANY_ARGS.contains(&meth);
    let no_args = BLOCKING_NO_ARGS.contains(&meth);
    if !any_args && !no_args {
        return None;
    }
    let open = i + 2;
    if !m.is_punct(open, "(") {
        return None;
    }
    if no_args && !m.is_punct(open + 1, ")") {
        return None;
    }
    Some(BlockingSite {
        meth: i + 1,
        open,
        close: m.blocks.close_of(open),
        is_wait: meth == "wait" || meth == "wait_timeout",
        label: format!(".{meth}(..)"),
    })
}

/// `swallowed-error`: `let _ = call(...);` (a call result thrown away
/// unnamed) and expression statements ending in `.ok();` (a `Result`
/// demoted to `Option` purely to discard it). A trace emission on an
/// adjacent line exempts the site — the error was recorded, not lost.
fn check_swallowed_error(
    path: &Path,
    a: &Analysis,
    m: &Model<'_>,
    tier: Tier,
    findings: &mut Vec<Finding>,
) {
    if is_bin_target(path) {
        return;
    }
    let severity = tier.severity(Rule::SwallowedError);
    for i in 0..m.len() {
        if m.is_ident(i, "let") && m.is_ident(i + 1, "_") && m.is_punct(i + 2, "=") {
            let mut j = i + 3;
            let mut has_call = false;
            while j < m.len() {
                if m.is_punct(j, "(") {
                    has_call = true;
                    j = m.blocks.close_of(j).map(|c| c + 1).unwrap_or(m.len());
                    continue;
                }
                if m.is_punct(j, "[") || m.is_punct(j, "{") {
                    j = m.blocks.close_of(j).map(|c| c + 1).unwrap_or(m.len());
                    continue;
                }
                if m.is_punct(j, ";") || m.is_punct(j, "}") {
                    break;
                }
                j += 1;
            }
            let line = a.line_of(m.start(i));
            if has_call && !traced_nearby(a, line) {
                push(
                    findings,
                    path,
                    line,
                    Rule::SwallowedError,
                    severity,
                    "`let _ =` discards a call result with no adjacent trace \
                     emission; handle the error, emit it to a sink, or justify \
                     with allow(swallowed-error)"
                        .to_owned(),
                );
            }
        }
        if m.is_punct(i, ".")
            && m.is_ident(i + 1, "ok")
            && m.is_punct(i + 2, "(")
            && m.is_punct(i + 3, ")")
            && m.is_punct(i + 4, ";")
            && discards_statement_result(m, i)
        {
            let line = a.line_of(m.start(i + 1));
            if !traced_nearby(a, line) {
                push(
                    findings,
                    path,
                    line,
                    Rule::SwallowedError,
                    severity,
                    "trailing `.ok();` silently discards a `Result`; handle the \
                     error, emit it to a sink, or justify with \
                     allow(swallowed-error)"
                        .to_owned(),
                );
            }
        }
    }
}

/// `true` when the statement whose expression ends at the `.ok()` at `dot`
/// throws the value away: no `let`/assignment binds it and no `return`
/// passes it on.
fn discards_statement_result(m: &Model<'_>, dot: usize) -> bool {
    let start = stmt_start(m, dot);
    if m.is_ident(start, "return") || m.is_ident(start, "break") {
        return false;
    }
    // Any statement-level `=` (a `let` or an assignment) binds the value.
    let mut j = start;
    while j < dot {
        if m.is_punct(j, "(") || m.is_punct(j, "[") || m.is_punct(j, "{") {
            j = m.blocks.close_of(j).map(|c| c + 1).unwrap_or(dot);
            continue;
        }
        if m.is_punct(j, "=") {
            return false;
        }
        j += 1;
    }
    true
}

/// `true` when a trace/log emission appears on `line` or an adjacent line:
/// an identifier segment starting with `sink`, `trace`, or `log`, or a
/// `note_degradation` call.
fn traced_nearby(a: &Analysis, line: usize) -> bool {
    let words: &[&str] = &["sink", "trace", "log", "note_degradation"];
    [line.saturating_sub(1), line, line + 1].iter().any(|&l| {
        let Some(text) = line_text(a, l) else {
            return false;
        };
        words.iter().any(|w| {
            crate::rules::occurrences(text, w).any(|at| {
                let bytes = text.as_bytes();
                at.checked_sub(1)
                    .and_then(|k| bytes.get(k))
                    .is_none_or(|&b| !b.is_ascii_alphanumeric())
            })
        })
    })
}

/// Masked text of 1-based `line`, if it exists.
fn line_text(a: &Analysis, line: usize) -> Option<&str> {
    let start = *a.line_starts.get(line.checked_sub(1)?)?;
    let end = a.line_starts.get(line).copied().unwrap_or(a.masked.len());
    a.masked.get(start..end)
}

/// `true` for binary targets: `main.rs` or anything under a `bin/` dir.
fn is_bin_target(path: &Path) -> bool {
    path.file_name().is_some_and(|n| n == "main.rs")
        || path.components().any(|c| c.as_os_str() == "bin")
}

/// Finds every acquisition site in the function and computes each guard's
/// live token range.
fn collect_guards(m: &Model<'_>, f: &FnItem) -> Vec<Guard> {
    let mut guards = Vec::new();
    for i in f.body_open + 1..f.body_close {
        if !(m.is_punct(i, ".")
            && m.kind(i + 1) == Some(TokenKind::Ident)
            && ACQUIRERS.contains(&m.text(i + 1))
            && m.is_punct(i + 2, "(")
            && m.is_punct(i + 3, ")"))
        {
            continue;
        }
        let Some(lock) = receiver_name(m, i) else {
            continue;
        };
        let site = i + 1;
        let start = stmt_start(m, i);
        let binding = let_binding(m, start).filter(|_| pure_guard_chain(m, i + 4, f.body_close));
        let until = match &binding {
            Some(name) => {
                let close = enclosing_brace_close(m, i, f);
                first_drop_of(m, i + 4, close, name).unwrap_or(close)
            }
            None => stmt_end(m, i + 4, f.body_close),
        };
        guards.push(Guard {
            lock,
            binding,
            site,
            until,
        });
    }
    guards
}

/// The receiver identifier just before the `.` of an acquisition: the last
/// path segment (`self.state.lock()` → `state`), or the called helper for
/// `self.inner().lock()` → `inner`.
fn receiver_name(m: &Model<'_>, dot: usize) -> Option<String> {
    let prev = dot.checked_sub(1)?;
    if m.kind(prev) == Some(TokenKind::Ident) {
        return Some(m.text(prev).to_owned());
    }
    if m.is_punct(prev, ")") {
        let open = m.blocks.open_of(prev)?;
        let before = open.checked_sub(1)?;
        if m.kind(before) == Some(TokenKind::Ident) {
            return Some(m.text(before).to_owned());
        }
    }
    None
}

/// Token index where the statement containing `i` starts: the token after
/// the previous `;`, `{`, or `}` — closed `(..)`/`[..]` groups are skipped
/// whole so their interior punctuation cannot end the walk early.
fn stmt_start(m: &Model<'_>, i: usize) -> usize {
    let mut j = i;
    while let Some(k) = j.checked_sub(1) {
        if m.is_punct(k, ")") || m.is_punct(k, "]") {
            if let Some(open) = m.blocks.open_of(k) {
                j = open;
                continue;
            }
        }
        if m.is_punct(k, ";") || m.is_punct(k, "{") || m.is_punct(k, "}") {
            return j;
        }
        j = k;
    }
    j
}

/// Exclusive token index where the statement containing `i` ends: its `;`
/// at statement level, or the first unmatched closer.
fn stmt_end(m: &Model<'_>, i: usize, hi: usize) -> usize {
    let mut j = i;
    while j < hi {
        if m.is_punct(j, "(") || m.is_punct(j, "[") || m.is_punct(j, "{") {
            j = m.blocks.close_of(j).map(|c| c + 1).unwrap_or(hi);
            continue;
        }
        if m.is_punct(j, ";") || m.is_punct(j, "}") || m.is_punct(j, ")") || m.is_punct(j, "]") {
            return j;
        }
        j += 1;
    }
    hi
}

/// When the statement starting at `start` is `let [mut] name =`, the
/// binding name.
fn let_binding(m: &Model<'_>, start: usize) -> Option<String> {
    if !m.is_ident(start, "let") {
        return None;
    }
    let name_at = if m.is_ident(start + 1, "mut") {
        start + 2
    } else {
        start + 1
    };
    if m.kind(name_at) == Some(TokenKind::Ident) && m.is_punct(name_at + 1, "=") {
        return Some(m.text(name_at).to_owned());
    }
    None
}

/// `true` when everything between the acquisition's `)` (token `j` is the
/// next token) and the statement's `;` is guard-preserving: only
/// `unwrap`/`expect`/`unwrap_or_else` calls or `?`. Anything else means
/// the statement's value is no longer the guard itself.
fn pure_guard_chain(m: &Model<'_>, mut j: usize, hi: usize) -> bool {
    while j < hi {
        if m.is_punct(j, ";") {
            return true;
        }
        if m.is_punct(j, "?") {
            j += 1;
            continue;
        }
        if m.is_punct(j, ".")
            && matches!(m.text(j + 1), "unwrap" | "expect" | "unwrap_or_else")
            && m.is_punct(j + 2, "(")
        {
            match m.blocks.close_of(j + 2) {
                Some(c) => {
                    j = c + 1;
                    continue;
                }
                None => return false,
            }
        }
        return false;
    }
    false
}

/// Token index of the first `drop(name)` between `from` and `hi`.
fn first_drop_of(m: &Model<'_>, from: usize, hi: usize, name: &str) -> Option<usize> {
    (from..hi).find(|&k| {
        m.is_ident(k, "drop")
            && m.is_punct(k + 1, "(")
            && m.is_ident(k + 2, name)
            && m.is_punct(k + 3, ")")
    })
}

/// Token index of the `}` closing the innermost brace block inside `f`
/// that contains token `i`; the function's own `}` when none is nested.
fn enclosing_brace_close(m: &Model<'_>, i: usize, f: &FnItem) -> usize {
    let mut best = f.body_close;
    let mut best_open = f.body_open;
    for open in f.body_open + 1..i {
        if !m.is_punct(open, "{") {
            continue;
        }
        if let Some(close) = m.blocks.close_of(open) {
            if close > i && open > best_open {
                best_open = open;
                best = close;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, Rule, Severity};
    use std::path::Path;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("lib_code.rs"), src, Tier::Library, false)
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- lock-order ---

    #[test]
    fn nested_undeclared_locks_flagged() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    let b = self.beta.lock().unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::LockOrder], "{f:?}");
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
        assert_eq!(f.first().map(|x| x.line), Some(3));
    }

    #[test]
    fn declared_order_permits_nesting() {
        let src = "// rbd-lint: lock-order(alpha < beta)\nfn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    let b = self.beta.lock().unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn declared_order_still_denies_reverse_nesting() {
        let src = "// rbd-lint: lock-order(alpha < beta)\nfn f(&self) {\n    let b = self.beta.lock().unwrap_or_else(e);\n    let a = self.alpha.lock().unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::LockOrder]);
    }

    #[test]
    fn dropped_guard_permits_second_lock() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    use_it(a);\n    drop(a);\n    let b = self.beta.lock().unwrap_or_else(e);\n    use_it(b);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn sequential_temporaries_do_not_overlap() {
        let src = "fn f(&self) {\n    let n = self.alpha.lock().unwrap_or_else(e).len();\n    let k = self.beta.lock().unwrap_or_else(e).len();\n    use_both(n, k);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn temporaries_in_one_expression_overlap() {
        // Both guards are temporaries of the same struct-literal statement,
        // so Rust holds them simultaneously — the Registry::typed_snapshot
        // shape.
        let src = "fn f(&self) -> Snap {\n    Snap {\n        a: self.alpha.lock().unwrap_or_else(e).clone(),\n        b: self.beta.lock().unwrap_or_else(e).clone(),\n    }\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::LockOrder]);
    }

    #[test]
    fn rwlock_read_write_pairs_count() {
        let src = "fn f(&self) {\n    let a = self.index.read().unwrap_or_else(e);\n    let b = self.journal.write().unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::LockOrder]);
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "fn f(&self, file: &mut File, buf: &mut [u8]) {\n    let n = file.read(buf);\n    let g = self.beta.lock().unwrap_or_else(e);\n    use_both(n, g);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn same_lock_in_two_functions_is_fine() {
        let src = "fn f(&self) { let a = self.alpha.lock().unwrap_or_else(e); use_it(a); }\nfn g(&self) { let b = self.beta.lock().unwrap_or_else(e); use_it(b); }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn justified_allow_suppresses_lock_order() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    // rbd-lint: allow(lock-order) — beta is only ever taken here, no ABBA partner\n    let b = self.beta.lock().unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn malformed_lock_order_declaration_is_bad_allow() {
        let src = "// rbd-lint: lock-order(alpha)\nfn f() {}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::BadAllow]);
    }

    // --- guard-across-blocking ---

    #[test]
    fn send_under_guard_flagged() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(e);\n    self.tx.send(1);\n    use_it(g);\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::GuardAcrossBlocking], "{f:?}");
        assert_eq!(f.first().map(|x| x.line), Some(3));
    }

    #[test]
    fn recv_and_join_under_guard_flagged() {
        let src = "fn f(&self, h: JoinHandle<()>) {\n    let g = self.state.lock().unwrap_or_else(e);\n    let v = self.rx.recv();\n    let r = h.join();\n    use_all(g, v, r);\n}\n";
        let f = lint(src);
        assert_eq!(
            rules_of(&f),
            vec![Rule::GuardAcrossBlocking, Rule::GuardAcrossBlocking]
        );
    }

    #[test]
    fn sleep_under_guard_flagged() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(e);\n    thread::sleep(ms);\n    use_it(g);\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::GuardAcrossBlocking]);
    }

    #[test]
    fn condvar_wait_on_own_guard_is_the_idiom() {
        let src = "fn f(&self) {\n    let mut state = self.state.lock().unwrap_or_else(e);\n    state = self.not_empty.wait(state).unwrap_or_else(e);\n    use_it(state);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn wait_timeout_on_own_guard_is_the_idiom() {
        let src = "fn f(&self) {\n    let mut state = self.state.lock().unwrap_or_else(e);\n    let r = self.cv.wait_timeout(state, timeout).unwrap_or_else(e);\n    use_it(r);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn wait_with_inline_acquisition_is_the_idiom() {
        let src = "fn f(&self) {\n    let r = self.cv.wait(self.state.lock().unwrap_or_else(e));\n    use_it(r);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn wait_on_a_different_guard_flagged() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock().unwrap_or_else(e);\n    let mut b = self.beta.lock().unwrap_or_else(e);\n    b = self.cv.wait(b).unwrap_or_else(e);\n    use_both(a, b);\n}\n";
        let f = lint(src);
        // `a` is live across the wait on `b`'s lock; the beta-under-alpha
        // nesting is also an undeclared lock-order pair.
        assert!(
            f.iter().any(|x| x.rule == Rule::GuardAcrossBlocking),
            "{f:?}"
        );
    }

    #[test]
    fn blocking_after_drop_is_fine() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(e);\n    use_it(g);\n    drop(g);\n    self.tx.send(1);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn named_lookalike_methods_do_not_match() {
        // Token-exact matching: `recv_result`, `send_batch`, `join` with
        // arguments (`Path::join`), and `rejoin` are not blocking calls.
        let src = "fn f(&self, p: &Path) {\n    let g = self.state.lock().unwrap_or_else(e);\n    let a = self.pool.recv_result();\n    let b = self.pool.send_batch(x);\n    let c = p.join(name);\n    let d = self.rejoin();\n    use_all(g, a, b, c, d);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn temporary_guard_statement_containing_blocking_flagged() {
        let src = "fn f(&self) {\n    self.state.lock().unwrap_or_else(e).queue.push(self.rx.recv());\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::GuardAcrossBlocking]);
    }

    #[test]
    fn justified_allow_suppresses_guard_across_blocking() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(e);\n    // rbd-lint: allow(guard-across-blocking) — rx is drained, send cannot block\n    self.tx.send(1);\n    use_it(g);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn guard_rules_exempt_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let a = self.alpha.lock().unwrap_or_else(e);\n        let b = self.beta.lock().unwrap_or_else(e);\n        h.join();\n        use_both(a, b);\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    // --- swallowed-error ---

    #[test]
    fn let_underscore_call_flagged() {
        let src = "fn f() {\n    let _ = fs::remove_file(path);\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), vec![Rule::SwallowedError], "{f:?}");
        assert_eq!(f.first().map(|x| x.severity), Some(Severity::Deny));
    }

    #[test]
    fn trailing_ok_flagged() {
        let src = "fn f(&self) {\n    self.tx.try_send(1).ok();\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::SwallowedError]);
    }

    #[test]
    fn bound_ok_is_fine() {
        let src = "fn f(r: Result<u8, E>) -> Option<u8> {\n    let v = r.ok();\n    v\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn returned_ok_is_fine() {
        let src = "fn f(r: Result<u8, E>) -> Option<u8> {\n    return r.ok();\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn let_underscore_without_call_is_fine() {
        // `let _ = view;` silences an unused-binding warning; there is no
        // Result to lose.
        let src = "fn f(view: &View) {\n    let _ = view;\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn named_underscore_binding_is_fine() {
        let src = "fn f() {\n    let _guard = self.state.lock().unwrap_or_else(e);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn adjacent_trace_emission_exempts() {
        for src in [
            "fn f(&self) {\n    self.sink.add(\"serve_io_errors\", 1);\n    let _ = fs::remove_file(path);\n}\n",
            "fn f(&self) {\n    let _ = fs::remove_file(path);\n    log_warn(\"cleanup failed\");\n}\n",
            "fn f(&self) {\n    note_degradation(&mut events, s, ev);\n    let _ = fs::remove_file(path);\n}\n",
        ] {
            assert!(lint(src).is_empty(), "{src} -> {:?}", lint(src));
        }
    }

    #[test]
    fn embedded_words_do_not_exempt() {
        // `backlog` and `heatsink` contain `log`/`sink` only mid-segment.
        let src =
            "fn f(&self) {\n    let backlog = heatsink();\n    let _ = fs::remove_file(path);\n}\n";
        assert_eq!(rules_of(&lint(src)), vec![Rule::SwallowedError]);
    }

    #[test]
    fn binary_targets_are_exempt() {
        let src = "fn main() {\n    let _ = writeln!(out, \"hi\");\n}\n";
        for p in ["main.rs", "src/bin/rbd.rs"] {
            let f = lint_source(Path::new(p), src, Tier::Library, false);
            assert!(
                !f.iter().any(|x| x.rule == Rule::SwallowedError),
                "{p}: {f:?}"
            );
        }
    }

    #[test]
    fn swallowed_error_exempts_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = fs::remove_file(p); }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn justified_allow_suppresses_swallowed_error() {
        let src = "fn f(out: &mut String) {\n    // rbd-lint: allow(swallowed-error) — fmt::Write to a String is infallible\n    let _ = fmt::Write::write_fmt(out, args);\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }
}
