//! Violation fixture: metric literals registered outside the shared
//! namespace. Counter and histogram names feed dashboards and alert
//! rules verbatim, so an unprefixed or non-snake_case literal silently
//! forks the namespace; the linter denies the literal at the call site.

pub fn record(sink: &dyn TraceSink, registry: &Registry) {
    sink.add("docs_extracted", 1);
    registry.observe("serve:latency", 5);
    sink.add("Serve_Requests", 1);
}
