//! Violation fixture: raw thread spawning and an unbounded channel outside
//! the pipeline crate. Both must deny — the worker pool owns all threads,
//! and every queue in the workspace has a capacity.

use std::sync::mpsc;
use std::thread;

fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let (tx, rx) = mpsc::channel();
    for job in jobs {
        let tx = tx.clone();
        thread::spawn(move || tx.send(job * 2).ok());
    }
    drop(tx);
    rx.iter().collect()
}
