//! Violation fixture: `Result`s discarded in library code. `let _ =`
//! throws the error away unnamed, and a trailing `.ok();` demotes it to an
//! `Option` purely to drop it — either way the failure never reaches the
//! trace, so production debugging starts from nothing.

use std::fs;
use std::path::Path;
use std::sync::mpsc::SyncSender;

fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
}

fn notify(tx: &SyncSender<u64>, job: u64) {
    tx.try_send(job).ok();
}
