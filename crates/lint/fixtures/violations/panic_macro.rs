//! Fixture: panic-family macros must trigger `panic` at deny.

pub fn die(kind: u8) {
    match kind {
        0 => panic!("boom"),
        1 => unreachable!(),
        2 => todo!(),
        _ => unimplemented!(),
    }
}
