//! Fixture: slice/array indexing must trigger `panic` at deny.

pub fn head_and_tail(bytes: &[u8]) -> (u8, &[u8]) {
    (bytes[0], &bytes[1..])
}
