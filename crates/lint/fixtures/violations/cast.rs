//! Fixture: narrowing casts on byte offsets must trigger `cast` at deny.

pub fn compress_offset(offset: usize) -> u32 {
    offset as u32
}

pub fn tiny_offset(offset: usize) -> (u8, u16) {
    (offset as u8, offset as u16)
}
