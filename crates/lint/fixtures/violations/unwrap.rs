//! Fixture: `.unwrap()` in non-test code must trigger `panic` at deny.

pub fn first_byte(input: &[u8]) -> u8 {
    input.first().copied().unwrap()
}
