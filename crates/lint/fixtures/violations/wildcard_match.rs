//! Fixture: a `_ =>` arm over the Token enum must trigger `wildcard-match`.

pub enum Token {
    Start(String),
    End(String),
    Text(String),
}

pub fn tag_name(token: &Token) -> Option<&str> {
    match token {
        Token::Start(name) => Some(name),
        Token::End(name) => Some(name),
        _ => None,
    }
}
