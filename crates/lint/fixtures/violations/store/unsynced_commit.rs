//! Violation fixture (persistence tier): a commit-path write inside a
//! `store` path with no `sync_all`/`sync_data` in the same function. Must
//! deny — the caller sees `Ok`, then the buffered frame evaporates when
//! power drops before the kernel flushes, leaving a torn tail the recovery
//! scan has to guess about.

use std::fs::File;
use std::io::Write;

fn append_frame(file: &mut File, frame: &[u8]) -> std::io::Result<()> {
    file.write_all(frame)?;
    Ok(())
}
