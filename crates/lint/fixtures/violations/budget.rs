//! Fixture: hot-path growth without governance — an input-proportional
//! allocation and a recursive descent, neither tied to any budget.

pub fn collect_names(input: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(input.len());
    for piece in input.split('<') {
        out.push(piece.to_owned());
    }
    out
}

pub fn walk(depth: usize) -> usize {
    if depth == 0 {
        return 0;
    }
    walk(depth - 1) + 1
}
