//! Fixture: a degradation recorded in the result but dropped from the
//! audit trail — the constructing function never touches a trace sink.

pub fn cap_candidates(observed: usize, cap: usize, events: &mut Vec<DegradationEvent>) {
    if observed > cap {
        events.push(DegradationEvent {
            stage: DegradationStage::Candidates,
            cause: LimitExceeded {
                limit: LimitKind::CandidateTags,
                cap,
                observed,
            },
        });
    }
}
