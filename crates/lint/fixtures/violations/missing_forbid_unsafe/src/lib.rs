//! Fixture: a crate root without `#![forbid(unsafe_code)]` must trigger
//! `forbid-unsafe` at deny.

pub fn identity(x: u8) -> u8 {
    x
}
