//! Violation fixture (network tier): a connection accepted inside a `serve`
//! path without arming both socket deadlines. Must deny — an accepted
//! `TcpStream` with no read/write timeout is a slowloris foothold.

use std::net::TcpListener;

fn accept_unarmed(listener: &TcpListener) -> std::io::Result<()> {
    let (stream, _peer) = listener.accept()?;
    drop(stream);
    Ok(())
}
