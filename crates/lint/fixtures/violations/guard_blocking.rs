//! Violation fixture: lock guards held across blocking calls. Whatever
//! the channel peer or joined thread is doing may need the held lock —
//! the shape is a deadlock (or at best a latency cliff) waiting for load.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

struct Dispatcher {
    queue: Mutex<Vec<u64>>,
    tx: SyncSender<u64>,
    rx: Receiver<u64>,
}

impl Dispatcher {
    fn publish_under_lock(&self) {
        let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if self.tx.send(queue.len() as u64).is_err() {
            return;
        }
    }

    fn drain_under_lock(&self) -> usize {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        while let Ok(job) = self.rx.recv() {
            queue.push(job);
        }
        queue.len()
    }

    fn join_under_lock(&self, worker: JoinHandle<()>) -> usize {
        let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if worker.join().is_err() {
            return 0;
        }
        queue.len()
    }
}
