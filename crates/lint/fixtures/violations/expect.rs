//! Fixture: `.expect(...)` in non-test code must trigger `panic` at deny.

pub fn parse(input: &str) -> usize {
    input.parse().expect("caller promised digits")
}
