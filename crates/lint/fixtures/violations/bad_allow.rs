//! Fixture: an allow directive without a justification must trigger
//! `bad-allow` at deny (and must not suppress the underlying finding).

pub fn first(bytes: &[u8]) -> u8 {
    bytes[0] // rbd-lint: allow(panic)
}
