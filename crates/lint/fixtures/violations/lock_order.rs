//! Violation fixture: a second mutex acquired while the first guard is
//! still live, with no declared canonical order. Two functions doing this
//! in opposite orders is the classic ABBA deadlock; the linter denies the
//! shape itself.

use std::sync::{Mutex, PoisonError};

struct Router {
    routes: Mutex<Vec<u64>>,
    stats: Mutex<Vec<u64>>,
}

impl Router {
    fn rebalance(&self) -> usize {
        let routes = self.routes.lock().unwrap_or_else(PoisonError::into_inner);
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        routes.len() + stats.len()
    }
}
