//! Fixture: a compliant crate root. Must produce zero findings.

#![forbid(unsafe_code)]

pub fn identity(x: u8) -> u8 {
    x
}
