//! Clean fixture: discarded `Result`s are fine when the failure is
//! recorded first — an adjacent trace emission proves the error reached
//! the audit trail — or when the `.ok()` value is actually used.

use std::fs;
use std::path::Path;
use std::sync::mpsc::SyncSender;

fn cleanup(path: &Path, trace_count: &mut u64) {
    *trace_count += 1;
    let _ = fs::remove_file(path);
}

fn notify(tx: &SyncSender<u64>, job: u64, log_dropped: &mut u64) {
    *log_dropped += 1;
    tx.try_send(job).ok();
}

fn parse(input: &str) -> Option<u64> {
    let parsed = input.parse::<u64>().ok();
    parsed
}
