//! Fixture: panic-family constructs inside `#[cfg(test)]` items are exempt.
//! Must produce zero findings.

pub fn double(x: u8) -> u8 {
    x.saturating_mul(2)
}

#[cfg(test)]
mod tests {
    use super::double;

    #[test]
    fn tests_may_unwrap_and_index() {
        let v = [double(2), double(3)];
        assert_eq!(v[0], 4);
        let first: Option<u8> = v.first().copied();
        assert_eq!(first.unwrap(), 4);
        if v[1] != 6 {
            panic!("arithmetic broke");
        }
    }
}
