//! Fixture: metric literals inside the shared namespace — snake_case
//! over [a-z0-9_] with a `serve_`/`pipeline_`/`extract_`/`trace_`
//! prefix — plus a name that flows through a variable, which is
//! structurally out of the rule's scope.

pub fn record(sink: &dyn TraceSink, registry: &Registry, span: &SpanRecord) {
    sink.add("serve_requests_ok", 1);
    sink.add("extract_tags_scanned", 12);
    registry.observe("pipeline_queue_wait", 5);
    registry.observe("trace_events_dropped", 1);
    registry.observe(span.name, span.nanos);
}
