//! Clean fixture: every blocking call happens after the guard is dropped,
//! and the one guard that does span a wait is handed to the condvar —
//! `Condvar::wait(guard)` atomically releases it, which is the idiom the
//! rule exists to protect.

use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

struct Dispatcher {
    queue: Mutex<Vec<u64>>,
    not_empty: Condvar,
    tx: SyncSender<u64>,
}

impl Dispatcher {
    fn publish(&self) {
        let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let depth = queue.len() as u64;
        drop(queue);
        if self.tx.send(depth).is_err() {
            return;
        }
    }

    fn wait_for_work(&self) -> usize {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        while queue.is_empty() {
            queue = self
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
        queue.len()
    }

    fn shutdown(&self, worker: JoinHandle<()>) {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.clear();
        drop(queue);
        if worker.join().is_err() {
            return;
        }
    }
}
