//! Clean fixture (persistence tier): every file write is paired with a
//! `sync_data` in the same function — the centralized write-and-sync shape
//! `crates/store`'s log follows. The `OpenOptions::write(true)` mode flag
//! is configuration, not a data write, and must not trip the rule.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

fn open_log(path: &Path) -> std::io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
}

fn write_and_sync(file: &mut File, offset: u64, bytes: &[u8]) -> std::io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(bytes)?;
    file.sync_data()?;
    Ok(())
}

fn commit(file: &mut File, end: u64, frame: &[u8]) -> std::io::Result<()> {
    write_and_sync(file, end, frame)
}
