//! Fixture: the same degradation, routed through the active trace sink —
//! the result vector and the audit trail stay in sync.

pub fn cap_candidates(
    observed: usize,
    cap: usize,
    events: &mut Vec<DegradationEvent>,
    sink: &dyn TraceSink,
) {
    if observed > cap {
        note_degradation(
            events,
            sink,
            DegradationEvent {
                stage: DegradationStage::Candidates,
                cause: LimitExceeded {
                    limit: LimitKind::CandidateTags,
                    cap,
                    observed,
                },
            },
        );
    }
}
