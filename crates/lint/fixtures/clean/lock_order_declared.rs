//! Clean fixture: nested lock acquisition under a declared canonical
//! order. The file-scoped `lock-order` directive names the only legal
//! nesting, so every function that takes both locks in that order passes
//! — and one that reversed them would still deny.

use std::sync::{Mutex, PoisonError};

// rbd-lint: lock-order(routes < stats)

struct Router {
    routes: Mutex<Vec<u64>>,
    stats: Mutex<Vec<u64>>,
}

impl Router {
    fn rebalance(&self) -> usize {
        let routes = self.routes.lock().unwrap_or_else(PoisonError::into_inner);
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        routes.len() + stats.len()
    }

    fn routes_only(&self) -> usize {
        let routes = self.routes.lock().unwrap_or_else(PoisonError::into_inner);
        routes.len()
    }
}
