//! Fixture: every rule, suppressed by a justified allow directive — the
//! escape-hatch direction. Must produce zero findings.

pub enum Token {
    Start(String),
    End(String),
}

pub fn first(bytes: &[u8]) -> u8 {
    // rbd-lint: allow(panic) — the caller checked `!bytes.is_empty()` one line up
    bytes[0]
}

pub fn offset32(offset: usize) -> u32 {
    // rbd-lint: allow(cast) — offsets are capped at u32::MAX by the builder
    offset as u32
}

pub fn is_start(token: &Token) -> bool {
    match token {
        Token::Start(_) => true,
        // rbd-lint: allow(wildcard-match) — binary predicate; new variants are non-starts
        _ => false,
    }
}

pub fn decoded(input: &str) -> String {
    // rbd-lint: allow(budget) — output never exceeds the already-capped input
    let mut out = String::with_capacity(input.len());
    out.push_str(input);
    out
}

pub fn bounded(input: &str, limit: usize) -> Vec<u8> {
    // Governed: the enclosing function names its limit, so no allow needed.
    Vec::with_capacity(input.len().min(limit))
}
