//! Clean fixture: no raw spawns, and the only channel is bounded. Thread
//! creation belongs to the rbd-pipeline pool; everything else just picks a
//! capacity.

use std::sync::mpsc;

fn bounded_fan_in(jobs: &[u64]) -> Vec<u64> {
    let (tx, rx) = mpsc::sync_channel(8);
    for &job in jobs {
        if tx.send(job * 2).is_err() {
            break;
        }
    }
    drop(tx);
    rx.iter().collect()
}
