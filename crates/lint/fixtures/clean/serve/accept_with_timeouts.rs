//! Clean fixture (network tier): the accepted connection gets both socket
//! deadlines in the same function that accepted it, before the stream can
//! leave — the shape `crates/serve`'s accept loop follows.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn accept_armed(listener: &TcpListener) -> std::io::Result<TcpStream> {
    let (stream, _peer) = listener.accept()?;
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    Ok(stream)
}
