//! A tiny SQL-ish query-expression language over [`crate::storage`].
//!
//! The `rbd query` CLI needs a textual surface for the fluent
//! [`crate::query::Query`] API. The grammar covers the algebra that layer
//! already implements — selection, projection, ordering, limits, counts:
//!
//! ```text
//! select <cols | * | count(*)> from <relation>
//!     [where <col> <op> <value> [and ...]]
//!     [order by <col> [asc | desc]]
//!     [limit N]
//! op := = | contains | < | > | is null | is not null
//! ```
//!
//! Values may be single-quoted (`'Honda Accord'`); `<` and `>` compare
//! numerically via [`crate::query::parse_number`], matching the 1998-era
//! report tools the query layer models. Keywords are case-insensitive.

use crate::query::Predicate;
use crate::storage::Database;
use std::fmt;

/// What the query projects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `*` — every column of the relation.
    All,
    /// `count(*)` — just the matching-row count.
    Count,
    /// An explicit column list.
    Columns(Vec<String>),
}

/// One parsed query expression.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Projection clause.
    pub projection: Projection,
    /// Target relation name.
    pub relation: String,
    /// Conjunction of column predicates from the `where` clause.
    pub filters: Vec<(String, Predicate)>,
    /// `order by` column and direction (`true` = ascending).
    pub order: Option<(String, bool)>,
    /// `limit` row cap.
    pub limit: Option<usize>,
}

/// A parse or execution failure, with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError(pub String);

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExprError {}

fn err<T>(message: impl Into<String>) -> Result<T, ExprError> {
    Err(ExprError(message.into()))
}

/// Splits the expression into words, keeping single-quoted strings as one
/// token (quotes stripped) and separating `=`, `<`, `>`, `(`, `)`, `,`
/// into their own tokens.
fn tokenize_expr(input: &str) -> Result<Vec<String>, ExprError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = input.chars();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                let mut s = String::new();
                let mut closed = false;
                for q in chars.by_ref() {
                    if q == '\'' {
                        closed = true;
                        break;
                    }
                    s.push(q);
                }
                if !closed {
                    return err("unterminated quoted string");
                }
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(format!("'{s}"));
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '=' | '<' | '>' | '(' | ')' | ',' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Ok(tokens)
}

/// `true` when the token is the (case-insensitive) keyword.
fn is_kw(token: &str, kw: &str) -> bool {
    token.eq_ignore_ascii_case(kw)
}

/// A quoted token's payload, or the bare token.
fn unquote(token: &str) -> &str {
    token.strip_prefix('\'').unwrap_or(token)
}

/// Parses one expression.
///
/// # Errors
///
/// [`ExprError`] with a message naming the offending clause.
pub fn parse(input: &str) -> Result<Expr, ExprError> {
    let tokens = tokenize_expr(input)?;
    let mut pos = 0;
    let next = |pos: &mut usize| -> Option<&String> {
        let t = tokens.get(*pos);
        *pos += 1;
        t
    };
    let Some(first) = next(&mut pos) else {
        return err("empty expression");
    };
    if !is_kw(first, "select") {
        return err(format!("expected `select`, got `{first}`"));
    }

    // Projection: `*`, `count ( * )`, or `col [, col ...]`.
    let projection = match tokens.get(pos) {
        Some(t) if t == "*" => {
            pos += 1;
            Projection::All
        }
        Some(t) if is_kw(t, "count") => {
            pos += 1;
            let shape: Vec<&str> = tokens
                .get(pos..pos + 3)
                .map(|w| w.iter().map(String::as_str).collect())
                .unwrap_or_default();
            if shape != ["(", "*", ")"] {
                return err("`count` must be written `count(*)`");
            }
            pos += 3;
            Projection::Count
        }
        Some(_) => {
            let mut cols = Vec::new();
            loop {
                let Some(col) = next(&mut pos) else {
                    return err("expected a column name in the select list");
                };
                if is_kw(col, "from") {
                    return err("expected a column name before `from`");
                }
                cols.push(unquote(col).to_owned());
                match tokens.get(pos) {
                    Some(t) if t == "," => pos += 1,
                    _ => break,
                }
            }
            Projection::Columns(cols)
        }
        None => return err("expected a projection after `select`"),
    };

    match next(&mut pos) {
        Some(t) if is_kw(t, "from") => {}
        other => return err(format!("expected `from`, got {other:?}")),
    }
    let Some(relation) = next(&mut pos).map(|t| unquote(t).to_owned()) else {
        return err("expected a relation name after `from`");
    };

    let mut filters = Vec::new();
    let mut order = None;
    let mut limit = None;
    while let Some(clause) = tokens.get(pos) {
        if is_kw(clause, "where") {
            pos += 1;
            loop {
                let Some(col) = next(&mut pos).map(|t| unquote(t).to_owned()) else {
                    return err("expected a column name in `where`");
                };
                let Some(op) = next(&mut pos).cloned() else {
                    return err(format!("expected an operator after `{col}`"));
                };
                let predicate = if op == "=" {
                    let Some(v) = next(&mut pos) else {
                        return err(format!("expected a value after `{col} =`"));
                    };
                    Predicate::Eq(unquote(v).to_owned())
                } else if is_kw(&op, "contains") {
                    let Some(v) = next(&mut pos) else {
                        return err(format!("expected a value after `{col} contains`"));
                    };
                    Predicate::Contains(unquote(v).to_owned())
                } else if op == "<" || op == ">" {
                    let Some(v) = next(&mut pos) else {
                        return err(format!("expected a number after `{col} {op}`"));
                    };
                    let Ok(n) = unquote(v).parse::<f64>() else {
                        return err(format!("`{col} {op}` needs a numeric literal, got `{v}`"));
                    };
                    if op == "<" {
                        Predicate::NumLt(n)
                    } else {
                        Predicate::NumGt(n)
                    }
                } else if is_kw(&op, "is") {
                    match (tokens.get(pos), tokens.get(pos + 1)) {
                        (Some(t), _) if is_kw(t, "null") => {
                            pos += 1;
                            Predicate::IsNull
                        }
                        (Some(t), Some(u)) if is_kw(t, "not") && is_kw(u, "null") => {
                            pos += 2;
                            Predicate::NotNull
                        }
                        _ => return err(format!("expected `null` or `not null` after `{col} is`")),
                    }
                } else {
                    return err(format!("unknown operator `{op}`"));
                };
                filters.push((col, predicate));
                match tokens.get(pos) {
                    Some(t) if is_kw(t, "and") => pos += 1,
                    _ => break,
                }
            }
        } else if is_kw(clause, "order") {
            pos += 1;
            match next(&mut pos) {
                Some(t) if is_kw(t, "by") => {}
                _ => return err("expected `by` after `order`"),
            }
            let Some(col) = next(&mut pos).map(|t| unquote(t).to_owned()) else {
                return err("expected a column name after `order by`");
            };
            let ascending = match tokens.get(pos) {
                Some(t) if is_kw(t, "desc") => {
                    pos += 1;
                    false
                }
                Some(t) if is_kw(t, "asc") => {
                    pos += 1;
                    true
                }
                _ => true,
            };
            order = Some((col, ascending));
        } else if is_kw(clause, "limit") {
            pos += 1;
            let Some(n) = next(&mut pos) else {
                return err("expected a row count after `limit`");
            };
            let Ok(n) = n.parse::<usize>() else {
                return err(format!("`limit` needs a non-negative integer, got `{n}`"));
            };
            limit = Some(n);
        } else {
            return err(format!("unexpected token `{clause}`"));
        }
    }

    Ok(Expr {
        projection,
        relation,
        filters,
        order,
        limit,
    })
}

/// An executed query's result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultSet {
    /// `count(*)` output.
    Count(usize),
    /// Projected rows with their column headers.
    Rows {
        /// Column names in projection order.
        columns: Vec<String>,
        /// One cell per column per matching row (`None` = NULL).
        rows: Vec<Vec<Option<String>>>,
    },
}

/// Runs a parsed expression against a database.
///
/// # Errors
///
/// [`ExprError`] when the relation does not exist.
pub fn run(db: &Database, expr: &Expr) -> Result<ResultSet, ExprError> {
    let Some(table) = db.table(&expr.relation) else {
        let known: Vec<&str> = db
            .tables()
            .iter()
            .map(|t| t.relation().name.as_str())
            .collect();
        return err(format!(
            "unknown relation `{}` (have: {})",
            expr.relation,
            known.join(", ")
        ));
    };
    let mut query = table.query();
    for (col, predicate) in &expr.filters {
        query = query.filter(col, predicate.clone());
    }
    if let Some((col, ascending)) = &expr.order {
        query = query.order_by(col, *ascending);
    }
    if let Some(n) = expr.limit {
        query = query.limit(n);
    }
    Ok(match &expr.projection {
        Projection::Count => ResultSet::Count(query.count()),
        Projection::All => {
            let columns: Vec<String> = table
                .relation()
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            ResultSet::Rows {
                rows: query.select(&names),
                columns,
            }
        }
        Projection::Columns(columns) => {
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            ResultSet::Rows {
                rows: query.select(&names),
                columns: columns.clone(),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_ontology::{domains, Scheme};

    fn db() -> Database {
        let mut db = Database::new(Scheme::from_ontology(&domains::car_ads()));
        let rows = [
            ("0", "1995", "Ford", "Taurus", "$6,500"),
            ("1", "1996", "Honda", "Accord", "$8,900"),
            ("2", "1997", "Dodge", "Neon", "$7,100"),
            ("3", "1996", "Honda", "Civic", "$9,900"),
        ];
        for (id, year, make, model, price) in rows {
            db.insert(
                "CarForSale",
                vec![
                    Some(id.into()),
                    Some(year.into()),
                    Some(make.into()),
                    Some(model.into()),
                    Some(price.into()),
                    None,
                    None,
                    None,
                ],
            )
            .expect("fixture row");
        }
        db
    }

    fn rows_of(r: ResultSet) -> Vec<Vec<Option<String>>> {
        match r {
            ResultSet::Rows { rows, .. } => rows,
            ResultSet::Count(_) => panic!("expected rows"),
        }
    }

    #[test]
    fn select_star_projects_every_column() {
        let db = db();
        let expr = parse("select * from CarForSale limit 1").expect("parse");
        let ResultSet::Rows { columns, rows } = run(&db, &expr).expect("run") else {
            panic!("expected rows");
        };
        assert_eq!(columns[0], "record_id");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), columns.len());
    }

    #[test]
    fn where_equality_and_projection() {
        let db = db();
        let expr = parse("select Model from CarForSale where Make = 'Honda'").expect("parse");
        let rows = rows_of(run(&db, &expr).expect("run"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_deref(), Some("Accord"));
    }

    #[test]
    fn numeric_comparison_and_conjunction() {
        let db = db();
        let expr = parse("select Model from CarForSale where Price < 8000 and Year > 1995")
            .expect("parse");
        let rows = rows_of(run(&db, &expr).expect("run"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("Neon"));
    }

    #[test]
    fn contains_order_and_limit() {
        let db = db();
        let expr = parse(
            "select Model from CarForSale where Make contains 'hon' order by Model desc limit 1",
        )
        .expect("parse");
        let rows = rows_of(run(&db, &expr).expect("run"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("Civic"));
    }

    #[test]
    fn null_predicates() {
        let db = db();
        let count = |s: &str| match run(&db, &parse(s).expect("parse")).expect("run") {
            ResultSet::Count(n) => n,
            ResultSet::Rows { .. } => panic!("expected count"),
        };
        assert_eq!(
            count("select count(*) from CarForSale where Mileage is null"),
            4
        );
        assert_eq!(
            count("select count(*) from CarForSale where Mileage is not null"),
            0
        );
    }

    #[test]
    fn count_star() {
        let db = db();
        let expr = parse("SELECT COUNT(*) FROM CarForSale WHERE Make = 'Honda'").expect("parse");
        assert_eq!(run(&db, &expr).expect("run"), ResultSet::Count(2));
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let expr = parse("select * from t where a = 'two words'").expect("parse");
        assert!(matches!(
            &expr.filters[0].1,
            Predicate::Eq(v) if v == "two words"
        ));
    }

    #[test]
    fn parse_errors_name_the_clause() {
        let msg = |s: &str| parse(s).expect_err("should fail").0;
        assert!(msg("delete from t").contains("expected `select`"));
        assert!(msg("select * from").contains("relation name"));
        assert!(msg("select * from t where a ~ 1").contains("unknown operator"));
        assert!(msg("select * from t where a < x").contains("numeric literal"));
        assert!(msg("select * from t limit many").contains("non-negative integer"));
        assert!(msg("select * from t where a = 'open").contains("unterminated"));
        assert!(msg("select count(x) from t").contains("count(*)"));
    }

    #[test]
    fn unknown_relation_lists_the_known_ones() {
        let db = db();
        let expr = parse("select * from Nope").expect("parse");
        let err = run(&db, &expr).expect_err("should fail");
        assert!(err.0.contains("unknown relation `Nope`"), "{err}");
        assert!(err.0.contains("CarForSale"), "{err}");
    }
}
