//! # rbd-db — in-memory relational database and instance generator
//!
//! The tail of the paper's Figure 1 pipeline: the **Database-Instance
//! Generator** populates a relational database (whose scheme the Ontology
//! Parser generated) from per-record Data-Record Table partitions, using
//! heuristics that *correlate extracted keywords with extracted constants*
//! and apply the ontology's cardinality constraints.
//!
//! The storage layer ([`storage`]) is a small but real relational substrate:
//! typed-as-text relations with arity, NOT-NULL and primary-key enforcement,
//! predicate scans and projections — enough to make the populated database a
//! queryable artifact rather than a print-out.
//!
//! ## Example
//!
//! ```
//! use rbd_db::{Database, InstanceGenerator};
//! use rbd_ontology::domains;
//! use rbd_recognizer::Recognizer;
//!
//! let ontology = domains::obituaries();
//! let rec = Recognizer::new(&ontology).unwrap();
//! let gen = InstanceGenerator::new(&ontology);
//! let records = vec![
//!     rec.recognize("Ann B. Smith died on May 1, 1998. She was born on June 2, 1920."),
//!     rec.recognize("Bob C. Jones died on May 3, 1998. Interment at Oak Hill Cemetery."),
//! ];
//! let db: Database = gen.populate(&records);
//! let deceased = db.table("Deceased").unwrap();
//! assert_eq!(deceased.len(), 2);
//! assert_eq!(deceased.get(0, "DeathDate"), Some("May 1, 1998"));
//! assert_eq!(deceased.get(1, "DeathDate"), Some("May 3, 1998"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod generate;
pub mod query;
pub mod storage;

pub use expr::{Expr, ExprError, Projection, ResultSet};
pub use generate::InstanceGenerator;
pub use query::{join, parse_number, Predicate, Query};
pub use storage::{Database, DbError, Row, Table};
