//! The Database-Instance Generator (Figure 1, step 5).
//!
//! Given one Data-Record Table per record, populate the generated scheme.
//! The heuristics reconstruct what the paper (and its companion papers
//! ECLS98/ECJ+98) describe:
//!
//! * **keyword–constant correlation** — when an object set has both a
//!   keyword match ("died on") and constant matches (dates), the constant
//!   *nearest after* the keyword is the field's value; this resolves value
//!   patterns shared between fields (every date rule matches every date);
//! * **cardinality constraints** — one-to-one / functional sets contribute
//!   at most one value per record (best candidate wins); many-valued sets
//!   contribute all distinct matched values to their satellite relation;
//! * **keyword-only fields** — a field indicated only by keywords stores
//!   the matched indicator text (evidence of presence), which is how our
//!   data frames model fields like `Age` whose keyword pattern embeds the
//!   value.

use crate::storage::{Database, Row};
use rbd_ontology::{Cardinality, MatchKind, ObjectSet, Ontology, Scheme};
use rbd_recognizer::{DataRecordTable, TableEntry};

/// Populates databases from per-record recognition output.
#[derive(Debug, Clone)]
pub struct InstanceGenerator {
    ontology: Ontology,
    scheme: Scheme,
}

impl InstanceGenerator {
    /// Prepares a generator for `ontology`.
    pub fn new(ontology: &Ontology) -> Self {
        InstanceGenerator {
            ontology: ontology.clone(),
            scheme: ontology.database_scheme(),
        }
    }

    /// The target scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Populates a fresh database: one entity row per record, satellite
    /// rows for many-valued sets.
    pub fn populate(&self, records: &[DataRecordTable]) -> Database {
        let mut db = Database::new(self.scheme.clone());
        for (id, record) in records.iter().enumerate() {
            self.populate_record(&mut db, id, record);
        }
        db
    }

    fn populate_record(&self, db: &mut Database, id: usize, record: &DataRecordTable) {
        let entity = self.scheme.entity().clone();
        let mut row: Row = vec![None; entity.columns.len()];
        row[0] = Some(id.to_string());

        for set in &self.ontology.object_sets {
            if !set.lexical {
                continue;
            }
            match set.cardinality {
                Cardinality::OneToOne | Cardinality::Functional => {
                    if let Some(col) = entity.column_index(&set.name) {
                        row[col] = self.best_value(record, set);
                    }
                }
                Cardinality::Many => {
                    let relation = format!("{}_{}", self.ontology.entity, set.name);
                    // Case-insensitive dedup: keyword rules match
                    // case-insensitively, so "Viewing" and "viewing" are the
                    // same evidence.
                    let mut seen: Vec<String> = Vec::new();
                    for e in record.for_descriptor(&set.name) {
                        let folded = e.value.to_lowercase();
                        if seen.contains(&folded) {
                            continue;
                        }
                        seen.push(folded);
                        // Composite key (id, value) makes duplicates
                        // impossible by construction here; insertion errors
                        // would indicate a bug, so propagate loudly.
                        db.insert(&relation, vec![Some(id.to_string()), Some(e.value.clone())])
                            .expect("satellite insert cannot violate constraints");
                    }
                }
            }
        }

        // One-to-one fields are NOT NULL in the scheme; an unrecognized
        // required field gets an explicit unknown marker rather than
        // aborting the whole record (extraction recall is < 100 % in
        // practice, as the paper's companion experiments show).
        for (i, col) in entity.columns.iter().enumerate() {
            if !col.nullable && row[i].is_none() {
                row[i] = Some(String::from("(unrecognized)"));
            }
        }
        db.insert(&entity.name, row)
            .expect("entity insert respects arity and keys by construction");
    }

    /// The best single value of an object set within one record:
    ///
    /// 1. keyword matched + constants → the constant nearest after the
    ///    first keyword (wrapping to the nearest anywhere if none follows);
    /// 2. keyword matched, keyword-only frame → the matched indicator text;
    /// 3. no keyword matched but the data frame *defines* keywords → the
    ///    field is absent: its value pattern is typically shared with other
    ///    fields (every date rule matches every date), so a constant
    ///    without its disambiguating keyword is not evidence;
    /// 4. constants only (keyword-less frame) → the first constant;
    /// 5. nothing → `None`.
    fn best_value(&self, record: &DataRecordTable, set: &ObjectSet) -> Option<String> {
        let entries: Vec<&TableEntry> = record.for_descriptor(&set.name).collect();
        if entries.is_empty() {
            return None;
        }
        let first_kw = entries.iter().find(|e| e.kind == MatchKind::Keyword);
        let constants: Vec<&&TableEntry> = entries
            .iter()
            .filter(|e| e.kind == MatchKind::Constant)
            .collect();
        match (first_kw, constants.as_slice()) {
            (Some(kw), consts) if !consts.is_empty() => {
                let after = consts
                    .iter()
                    .filter(|c| c.position >= kw.position)
                    .min_by_key(|c| c.position - kw.position);
                let chosen = after.unwrap_or_else(|| {
                    consts
                        .iter()
                        .min_by_key(|c| kw.position.abs_diff(c.position))
                        .expect("nonempty")
                });
                Some(chosen.value.clone())
            }
            (Some(kw), _) => Some(kw.value.clone()),
            (None, consts) if !consts.is_empty() => {
                if set.data_frame.has_keywords() {
                    // Rule 3: the frame requires keyword disambiguation.
                    None
                } else {
                    Some(consts[0].value.clone())
                }
            }
            (None, _) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_ontology::domains;
    use rbd_recognizer::Recognizer;

    fn populate(texts: &[&str]) -> Database {
        let ontology = domains::obituaries();
        let rec = Recognizer::new(&ontology).unwrap();
        let records: Vec<DataRecordTable> = texts.iter().map(|t| rec.recognize(t)).collect();
        InstanceGenerator::new(&ontology).populate(&records)
    }

    #[test]
    fn constants_without_required_keyword_are_not_evidence() {
        // One date, claimed textually by DeathDate / BirthDate / FuneralDate
        // value rules alike. Only DeathDate's keyword is present, so only
        // DeathDate gets the value.
        let db = populate(&["Ann B. Smith died on May 1, 1998 at 10:00 a.m."]);
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.get(0, "DeathDate"), Some("May 1, 1998"));
        assert_eq!(t.get(0, "BirthDate"), None);
        assert_eq!(t.get(0, "FuneralDate"), None);
        // Keyword-less frames still take their constants directly.
        assert_eq!(t.get(0, "FuneralTime"), Some("10:00 a.m."));
    }

    #[test]
    fn keyword_correlation_resolves_shared_date_patterns() {
        let db = populate(&[
            "Ann B. Smith was born on June 2, 1920 and died on May 1, 1998. \
             Funeral services will be held May 5, 1998 at 11:00 a.m.",
        ]);
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.get(0, "DeathDate"), Some("May 1, 1998"));
        assert_eq!(t.get(0, "BirthDate"), Some("June 2, 1920"));
        assert_eq!(t.get(0, "FuneralDate"), Some("May 5, 1998"));
    }

    #[test]
    fn one_row_per_record() {
        let db = populate(&[
            "Ann B. Smith died on May 1, 1998.",
            "Bob C. Jones died on May 2, 1998.",
            "Cal D. Young died on May 3, 1998.",
        ]);
        assert_eq!(db.table("Deceased").unwrap().len(), 3);
    }

    #[test]
    fn many_valued_satellites_deduplicated() {
        let db = populate(&[
            "Ann B. Smith died on May 1, 1998. Viewing Friday; viewing Saturday. \
             She is survived by many.",
        ]);
        let viewing = db.table("Deceased_Viewing").unwrap();
        // Two "viewing" keyword matches but identical matched text → one row.
        assert_eq!(viewing.len(), 1);
        let relative = db.table("Deceased_Relative").unwrap();
        assert_eq!(relative.len(), 1);
    }

    #[test]
    fn unrecognized_required_field_marked() {
        let db = populate(&["completely unrelated text with no names"]);
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.get(0, "DeceasedName"), Some("(unrecognized)"));
    }

    #[test]
    fn functional_absent_is_null() {
        let db = populate(&["Ann B. Smith died on May 1, 1998."]);
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.get(0, "Interment"), None);
    }

    #[test]
    fn car_ads_end_to_end_population() {
        let ontology = domains::car_ads();
        let rec = Recognizer::new(&ontology).unwrap();
        let records = vec![
            rec.recognize("1995 Ford Taurus, white, AC, cruise, 62,000 miles, $6,500 obo, call (801) 555-1234"),
            rec.recognize("1997 Honda Accord, black, CD player, $12,900, call 801-555-8888"),
        ];
        let db = InstanceGenerator::new(&ontology).populate(&records);
        let cars = db.table("CarForSale").unwrap();
        assert_eq!(cars.get(0, "Make"), Some("Ford"));
        assert_eq!(cars.get(1, "Make"), Some("Honda"));
        assert_eq!(cars.get(1, "Year"), Some("1997"));
        let features = db.table("CarForSale_Feature").unwrap();
        assert!(features.select("record_id", "0").count() >= 2);
    }
}
