//! The relational storage substrate.

use rbd_ontology::{Relation, Scheme};
use std::collections::HashSet;
use std::fmt;

/// A row: one optional text value per column.
pub type Row = Vec<Option<String>>;

/// Errors from inserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No relation with that name.
    UnknownRelation(String),
    /// Row arity does not match the relation.
    Arity {
        /// Relation name.
        relation: String,
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A NOT-NULL column received NULL.
    NullViolation {
        /// Relation name.
        relation: String,
        /// Offending column.
        column: String,
    },
    /// A duplicate primary key.
    KeyViolation {
        /// Relation name.
        relation: String,
        /// Rendered key values.
        key: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DbError::Arity {
                relation,
                expected,
                got,
            } => write!(f, "`{relation}`: expected {expected} values, got {got}"),
            DbError::NullViolation { relation, column } => {
                write!(f, "`{relation}`: NULL in NOT NULL column `{column}`")
            }
            DbError::KeyViolation { relation, key } => {
                write!(f, "`{relation}`: duplicate key ({key})")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// One relation's rows.
#[derive(Debug, Clone)]
pub struct Table {
    relation: Relation,
    rows: Vec<Row>,
    keys: HashSet<String>,
}

impl Table {
    fn new(relation: Relation) -> Self {
        Table {
            relation,
            rows: Vec::new(),
            keys: HashSet::new(),
        }
    }

    /// The relation this table instantiates.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Value of `column` in row `row` (`None` for NULL or out of range).
    pub fn get(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.relation.column_index(column)?;
        self.rows.get(row)?.get(col)?.as_deref()
    }

    /// Rows where `column = value`.
    pub fn select<'a>(
        &'a self,
        column: &str,
        value: &'a str,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        let col = self.relation.column_index(column);
        self.rows
            .iter()
            .filter(move |r| col.is_some_and(|c| r[c].as_deref() == Some(value)))
    }

    /// Projects one column over all rows (NULLs skipped).
    pub fn project(&self, column: &str) -> Vec<&str> {
        match self.relation.column_index(column) {
            None => Vec::new(),
            Some(c) => self.rows.iter().filter_map(|r| r[c].as_deref()).collect(),
        }
    }

    fn key_of(&self, row: &Row) -> String {
        let parts: Vec<&str> = row[..self.relation.key_len]
            .iter()
            .map(|v| v.as_deref().unwrap_or("\u{0}NULL"))
            .collect();
        parts.join("\u{1F}")
    }

    fn insert(&mut self, row: Row) -> Result<(), DbError> {
        let relation = &self.relation;
        if row.len() != relation.columns.len() {
            return Err(DbError::Arity {
                relation: relation.name.clone(),
                expected: relation.columns.len(),
                got: row.len(),
            });
        }
        for (col, val) in relation.columns.iter().zip(&row) {
            if !col.nullable && val.is_none() {
                return Err(DbError::NullViolation {
                    relation: relation.name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        let key = self.key_of(&row);
        if !self.keys.insert(key.clone()) {
            return Err(DbError::KeyViolation {
                relation: relation.name.clone(),
                key: key.replace('\u{1F}', ", "),
            });
        }
        self.rows.push(row);
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .relation
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        writeln!(f, "-- {} ({} rows)", self.relation.name, self.rows.len())?;
        writeln!(f, "{}", names.join(" | "))?;
        for row in &self.rows {
            let vals: Vec<&str> = row.iter().map(|v| v.as_deref().unwrap_or("∅")).collect();
            writeln!(f, "{}", vals.join(" | "))?;
        }
        Ok(())
    }
}

/// A populated database: one table per relation of a scheme.
#[derive(Debug, Clone)]
pub struct Database {
    scheme: Scheme,
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database over `scheme`.
    pub fn new(scheme: Scheme) -> Self {
        let tables = scheme.relations.iter().cloned().map(Table::new).collect();
        Database { scheme, tables }
    }

    /// The scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Looks up a table by relation name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.relation.name == name)
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Inserts a row into the named relation, enforcing arity, NOT-NULL and
    /// primary-key constraints.
    pub fn insert(&mut self, relation: &str, row: Row) -> Result<(), DbError> {
        let table = self
            .tables
            .iter_mut()
            .find(|t| t.relation.name == relation)
            .ok_or_else(|| DbError::UnknownRelation(relation.to_owned()))?;
        table.insert(row)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_ontology::{domains, Scheme};

    fn db() -> Database {
        Database::new(Scheme::from_ontology(&domains::obituaries()))
    }

    fn entity_row(id: &str, name: &str) -> Row {
        // Deceased: record_id, DeceasedName, DeathDate, BirthDate, Age,
        // FuneralDate, FuneralTime, Mortuary, Interment. The first three
        // are NOT NULL (surrogate key + the two one-to-one fields).
        let mut row = vec![
            Some(id.to_owned()),
            Some(name.to_owned()),
            Some("May 1, 1998".to_owned()),
        ];
        row.resize(9, None);
        row
    }

    #[test]
    fn insert_and_get() {
        let mut db = db();
        db.insert("Deceased", entity_row("0", "Ann Smith")).unwrap();
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0, "DeceasedName"), Some("Ann Smith"));
        assert_eq!(t.get(0, "BirthDate"), None);
    }

    #[test]
    fn arity_enforced() {
        let mut db = db();
        let err = db.insert("Deceased", vec![Some("0".into())]).unwrap_err();
        assert!(matches!(
            err,
            DbError::Arity {
                expected: 9,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn not_null_enforced() {
        let mut db = db();
        let mut row = entity_row("0", "x");
        row[1] = None; // DeceasedName is one-to-one → NOT NULL
        row[2] = None;
        let err = db.insert("Deceased", row).unwrap_err();
        assert!(matches!(err, DbError::NullViolation { .. }));
    }

    #[test]
    fn primary_key_enforced() {
        let mut db = db();
        db.insert("Deceased", entity_row("0", "a")).unwrap();
        let err = db.insert("Deceased", entity_row("0", "b")).unwrap_err();
        assert!(matches!(err, DbError::KeyViolation { .. }));
    }

    #[test]
    fn satellite_composite_key() {
        let mut db = db();
        db.insert(
            "Deceased_Relative",
            vec![Some("0".into()), Some("survived by".into())],
        )
        .unwrap();
        // Same id, different value: fine.
        db.insert(
            "Deceased_Relative",
            vec![Some("0".into()), Some("preceded in death by".into())],
        )
        .unwrap();
        // Exact duplicate: key violation.
        assert!(db
            .insert(
                "Deceased_Relative",
                vec![Some("0".into()), Some("survived by".into())],
            )
            .is_err());
    }

    #[test]
    fn unknown_relation() {
        let mut db = db();
        assert!(matches!(
            db.insert("Nope", vec![]).unwrap_err(),
            DbError::UnknownRelation(_)
        ));
    }

    #[test]
    fn select_and_project() {
        let mut db = db();
        db.insert("Deceased", entity_row("0", "Ann")).unwrap();
        db.insert("Deceased", entity_row("1", "Bob")).unwrap();
        let t = db.table("Deceased").unwrap();
        assert_eq!(t.select("DeceasedName", "Bob").count(), 1);
        assert_eq!(t.project("DeceasedName"), vec!["Ann", "Bob"]);
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    fn display_dumps_tables() {
        let mut db = db();
        db.insert("Deceased", entity_row("0", "Ann")).unwrap();
        let s = db.to_string();
        assert!(s.contains("-- Deceased (1 rows)"));
        assert!(s.contains("Ann"));
    }
}
