//! A small relational query layer over [`crate::storage`].
//!
//! The paper's motivation is that wrapped Web data becomes queryable "using
//! traditional query languages" (§1). This module supplies the minimal
//! algebra that makes the populated database an actual query target:
//! selection (filters), projection, ordering, limits, equi-joins between
//! the entity relation and its satellites, and grouped counts.
//!
//! Values are untyped text (as the scheme declares); comparisons offer both
//! lexicographic and numeric modes, the latter parsing leading numbers the
//! way 1998-era ad-hoc report tools did ("$6,500" → 6500).

use crate::storage::{Row, Table};
use std::collections::BTreeMap;

/// A filter predicate on one column.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Exact string equality.
    Eq(String),
    /// Substring containment (case-insensitive).
    Contains(String),
    /// Numeric comparison: column value parsed via [`parse_number`].
    NumLt(f64),
    /// Numeric comparison, greater-than.
    NumGt(f64),
    /// Value is non-NULL.
    NotNull,
    /// Value is NULL.
    IsNull,
}

impl Predicate {
    fn matches(&self, value: Option<&str>) -> bool {
        match self {
            Predicate::Eq(x) => value == Some(x.as_str()),
            Predicate::Contains(x) => value
                .map(|v| v.to_lowercase().contains(&x.to_lowercase()))
                .unwrap_or(false),
            Predicate::NumLt(x) => value.and_then(parse_number).is_some_and(|n| n < *x),
            Predicate::NumGt(x) => value.and_then(parse_number).is_some_and(|n| n > *x),
            Predicate::NotNull => value.is_some(),
            Predicate::IsNull => value.is_none(),
        }
    }
}

/// Parses the leading number out of a text value: `"$6,500 obo"` → `6500`,
/// `"1995 Ford"` → `1995`. Returns `None` when no digits lead the value
/// (after currency symbols and whitespace).
pub fn parse_number(value: &str) -> Option<f64> {
    let trimmed = value.trim_start_matches(|c: char| c.is_whitespace() || c == '$');
    let digits: String = trimmed
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == ',' || *c == '.')
        .filter(|c| *c != ',')
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// A fluent query over one table.
#[derive(Debug, Clone)]
pub struct Query<'t> {
    table: &'t Table,
    filters: Vec<(usize, Predicate)>,
    order: Option<(usize, bool, bool)>, // (column, ascending, numeric)
    limit: Option<usize>,
}

impl<'t> Query<'t> {
    pub(crate) fn new(table: &'t Table) -> Self {
        Query {
            table,
            filters: Vec::new(),
            order: None,
            limit: None,
        }
    }

    fn col(&self, name: &str) -> usize {
        self.table
            .relation()
            .column_index(name)
            .unwrap_or(usize::MAX)
    }

    /// Adds a filter; unknown columns match nothing.
    pub fn filter(mut self, column: &str, predicate: Predicate) -> Self {
        let idx = self.col(column);
        self.filters.push((idx, predicate));
        self
    }

    /// Shorthand for equality.
    pub fn eq(self, column: &str, value: impl Into<String>) -> Self {
        self.filter(column, Predicate::Eq(value.into()))
    }

    /// Orders lexicographically (NULLs last).
    pub fn order_by(mut self, column: &str, ascending: bool) -> Self {
        self.order = Some((self.col(column), ascending, false));
        self
    }

    /// Orders by the numeric interpretation of the column (NULLs and
    /// non-numeric values last).
    pub fn order_by_number(mut self, column: &str, ascending: bool) -> Self {
        self.order = Some((self.col(column), ascending, true));
        self
    }

    /// Caps the number of returned rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Executes the query, returning borrowed rows.
    pub fn rows(&self) -> Vec<&'t Row> {
        let mut out: Vec<&Row> = self
            .table
            .rows()
            .iter()
            .filter(|row| {
                self.filters.iter().all(|(idx, p)| {
                    let value = row.get(*idx).and_then(|v| v.as_deref());
                    p.matches(value)
                })
            })
            .collect();
        if let Some((idx, ascending, numeric)) = self.order {
            out.sort_by(|a, b| {
                let av = a.get(idx).and_then(|v| v.as_deref());
                let bv = b.get(idx).and_then(|v| v.as_deref());
                let ord = if numeric {
                    let an = av.and_then(parse_number);
                    let bn = bv.and_then(parse_number);
                    match (an, bn) {
                        (Some(x), Some(y)) => {
                            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
                        }
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    }
                } else {
                    match (av, bv) {
                        (Some(x), Some(y)) => x.cmp(y),
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    }
                };
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(n) = self.limit {
            out.truncate(n);
        }
        out
    }

    /// Executes and projects the named columns (`None` cells for NULLs or
    /// unknown columns).
    pub fn select(&self, columns: &[&str]) -> Vec<Vec<Option<String>>> {
        let idxs: Vec<usize> = columns.iter().map(|c| self.col(c)).collect();
        self.rows()
            .into_iter()
            .map(|row| {
                idxs.iter()
                    .map(|&i| row.get(i).and_then(Clone::clone))
                    .collect()
            })
            .collect()
    }

    /// Number of matching rows.
    pub fn count(&self) -> usize {
        self.rows().len()
    }

    /// Counts rows grouped by a column's value (NULLs excluded), descending
    /// by count then ascending by key.
    pub fn group_count(&self, column: &str) -> Vec<(String, usize)> {
        let idx = self.col(column);
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for row in self.rows() {
            if let Some(Some(v)) = row.get(idx) {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

impl Table {
    /// Starts a query over this table.
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }
}

/// An equi-join row: the left row plus the matching right row.
pub type JoinedRow<'a> = (&'a Row, &'a Row);

/// Equi-joins two tables on equal values of the named columns (inner join,
/// nested-loop with a hash on the right side).
pub fn join<'a>(
    left: &'a Table,
    left_col: &str,
    right: &'a Table,
    right_col: &str,
) -> Vec<JoinedRow<'a>> {
    let Some(li) = left.relation().column_index(left_col) else {
        return Vec::new();
    };
    let Some(ri) = right.relation().column_index(right_col) else {
        return Vec::new();
    };
    let mut index: std::collections::HashMap<&str, Vec<&Row>> = std::collections::HashMap::new();
    for row in right.rows() {
        if let Some(v) = row[ri].as_deref() {
            index.entry(v).or_default().push(row);
        }
    }
    let mut out = Vec::new();
    for lrow in left.rows() {
        if let Some(v) = lrow[li].as_deref() {
            if let Some(matches) = index.get(v) {
                for rrow in matches {
                    out.push((lrow, *rrow));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Database;
    use rbd_ontology::{domains, Scheme};

    fn car_db() -> Database {
        let mut db = Database::new(Scheme::from_ontology(&domains::car_ads()));
        // Columns: record_id, Year, Make, Model, Price, Mileage, Phone, Color
        let rows = [
            ("0", "1995", "Ford", "Taurus", "$6,500", "white"),
            ("1", "1996", "Honda", "Accord", "$8,900", "teal"),
            ("2", "1997", "Dodge", "Neon", "$7,100", "red"),
            ("3", "1993", "Toyota", "Corolla", "$3,400", "blue"),
            ("4", "1996", "Honda", "Civic", "$9,900", "red"),
        ];
        for (id, year, make, model, price, color) in rows {
            db.insert(
                "CarForSale",
                vec![
                    Some(id.into()),
                    Some(year.into()),
                    Some(make.into()),
                    Some(model.into()),
                    Some(price.into()),
                    None,
                    None,
                    Some(color.into()),
                ],
            )
            .unwrap();
        }
        for (id, feature) in [
            ("0", "AC"),
            ("0", "cruise"),
            ("1", "CD player"),
            ("4", "AC"),
        ] {
            db.insert(
                "CarForSale_Feature",
                vec![Some(id.into()), Some(feature.into())],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn parse_number_handles_period_formats() {
        assert_eq!(parse_number("$6,500"), Some(6500.0));
        assert_eq!(parse_number("1995 Ford"), Some(1995.0));
        assert_eq!(parse_number("  $12,500 obo"), Some(12500.0));
        assert_eq!(parse_number("3.5 credits"), Some(3.5));
        assert_eq!(parse_number("obo"), None);
        assert_eq!(parse_number(""), None);
    }

    #[test]
    fn filters_and_projection() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        let hondas = cars.query().eq("Make", "Honda").select(&["Model", "Price"]);
        assert_eq!(hondas.len(), 2);
        assert_eq!(hondas[0][0].as_deref(), Some("Accord"));
    }

    #[test]
    fn numeric_filters() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        let cheap = cars
            .query()
            .filter("Price", Predicate::NumLt(7000.0))
            .count();
        assert_eq!(cheap, 2); // $6,500 and $3,400
        let newer = cars
            .query()
            .filter("Year", Predicate::NumGt(1995.0))
            .count();
        assert_eq!(newer, 3);
    }

    #[test]
    fn ordering_and_limit() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        let two_cheapest = cars
            .query()
            .order_by_number("Price", true)
            .limit(2)
            .select(&["Model"]);
        assert_eq!(two_cheapest[0][0].as_deref(), Some("Corolla"));
        assert_eq!(two_cheapest[1][0].as_deref(), Some("Taurus"));
        let lexicographic = cars.query().order_by("Make", true).select(&["Make"]);
        assert_eq!(lexicographic[0][0].as_deref(), Some("Dodge"));
    }

    #[test]
    fn contains_and_null_predicates() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        assert_eq!(
            cars.query()
                .filter("Color", Predicate::Contains("RED".into()))
                .count(),
            2
        );
        assert_eq!(cars.query().filter("Mileage", Predicate::IsNull).count(), 5);
        assert_eq!(
            cars.query().filter("Mileage", Predicate::NotNull).count(),
            0
        );
    }

    #[test]
    fn group_counts() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        let by_make = cars.query().group_count("Make");
        assert_eq!(by_make[0], ("Honda".to_owned(), 2));
        assert_eq!(by_make.len(), 4);
    }

    #[test]
    fn entity_satellite_join() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        let features = db.table("CarForSale_Feature").unwrap();
        let joined = join(cars, "record_id", features, "record_id");
        assert_eq!(joined.len(), 4);
        // Car 0 has two features.
        let car0: Vec<_> = joined
            .iter()
            .filter(|(l, _)| l[0].as_deref() == Some("0"))
            .collect();
        assert_eq!(car0.len(), 2);
    }

    #[test]
    fn unknown_columns_are_harmless() {
        let db = car_db();
        let cars = db.table("CarForSale").unwrap();
        assert_eq!(cars.query().eq("Nope", "x").count(), 0);
        let projected = cars.query().limit(1).select(&["Nope", "Make"]);
        assert_eq!(projected[0][0], None);
        assert_eq!(projected[0][1].as_deref(), Some("Ford"));
    }
}
