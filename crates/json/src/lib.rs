//! # rbd-json — minimal in-tree JSON
//!
//! The evaluation harness emits machine-readable reports (`experiments
//! --json`, the bench harness's `BENCH_*.json`). This crate provides the
//! small JSON surface those need — a value type, an escaping-correct
//! serializer, and a [`ToJson`] conversion trait — with no external
//! dependencies, so the workspace builds and tests fully offline (see
//! DESIGN.md, "Hermetic build").
//!
//! Serialization is total — every [`Json`] value renders to a valid JSON
//! document, so there is no fallible path and no `expect` at call sites
//! (non-finite floats serialize as `null`, exactly as `serde_json` did).
//! A small recursive-descent parser ([`Json::parse`]) covers the read side:
//! the bench-regression gate reads its committed baseline back, and round-
//! tripping `parse(render(v)) == v` is property-tested. Parsing is fallible
//! but panic-free, with an explicit nesting-depth cap against adversarial
//! input.
//!
//! Object members keep their insertion order, which keeps report output
//! stable across runs and easy to diff.
//!
//! ## Example
//!
//! ```
//! use rbd_json::{Json, ToJson};
//!
//! let report = Json::object([
//!     ("seed", 1998u64.to_json()),
//!     ("rates", vec![97.5, 100.0].to_json()),
//!     ("note", "record-boundary \"analogue\"".to_json()),
//! ]);
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"seed":1998,"rates":[97.5,100],"note":"record-boundary \"analogue\""}"#
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
///
/// Numbers are split into three variants so integer report fields (counts,
/// seeds) serialize exactly, without a round trip through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (seeds are full-range `u64`).
    UInt(u64),
    /// A floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly one top-level value surrounded by optional
    /// whitespace. Numbers parse into the narrowest variant that holds them
    /// losslessly ([`Json::Int`] / [`Json::UInt`], falling back to
    /// [`Json::Float`]), so integer fields round-trip exactly.
    ///
    /// # Errors
    /// Returns [`ParseError`] (with a byte offset) on malformed input,
    /// trailing garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up an object member by key; `None` on missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice if it is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements if it is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace). Equivalent to `to_string()`.
    pub fn to_compact(&self) -> String {
        self.to_string()
    }

    /// Pretty rendering with two-space indentation, one member per line —
    /// the layout `serde_json::to_string_pretty` produced, so downstream
    /// diffs of `experiments --json` output stay quiet.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    push_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            // Scalars, "[]" and "{}" render identically in both modes.
            other => push_compact(out, other),
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset where the
/// parser stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth [`Json::parse`] accepts — a recursion bound, not a
/// practical limitation (bench reports nest three levels deep).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `lit` (an ASCII keyword like `true`) or fails.
    fn literal(&mut self, lit: &str) -> Result<(), ParseError> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume `{`
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening `"`
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one slice operation.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None)
                && self.peek().is_some_and(|b| b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // A high surrogate must pair with `\uDC00`–`\uDFFF`.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("unpaired surrogate escape"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    /// Reads exactly four hex digits as a code unit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.err("expected four hex digits"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("expected four hex digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            // Prefer exact integer variants; huge magnitudes fall through
            // to f64 exactly as serde_json's arbitrary-precision-off mode.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn push_compact(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => {
            // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::UInt(n) => {
            // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::Float(x) => push_float(out, *x),
        Json::Str(s) => push_escaped(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_compact(out, item);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, key);
                out.push(':');
                push_compact(out, item);
            }
            out.push('}');
        }
    }
}

/// JSON has no lexeme for NaN or the infinities; `null` is the established
/// lossy encoding (`serde_json`'s default for `f64::NAN`).
fn push_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-roundtrip formatting emits `1` for `1.0`, which
        // is a valid JSON number.
        // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    } else {
        out.push_str("null");
    }
}

/// Escapes `s` into `out` as a JSON string literal, including the
/// surrounding quotes. `"` and `\` get their short escapes, control
/// characters below U+0020 get `\b` `\t` `\n` `\f` `\r` or `\u00XX`, and
/// everything else — including non-ASCII — passes through as raw UTF-8
/// (RFC 8259 §7 permits unescaped code points above U+001F other than
/// `"` and `\`).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{0C}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if c < '\u{20}' => {
                // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        push_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Conversion into a [`Json`] value. The in-tree analogue of deriving
/// `serde::Serialize`: report types implement this by hand, which keeps
/// the field list explicit and the serialization infallible.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )*};
}
impl_tojson_signed!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for isize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        assert_eq!(Json::Float(100.0).to_string(), "100");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let obj = Json::object([
            ("z", Json::Int(1)),
            ("a", Json::Int(2)),
            ("m", Json::Int(3)),
        ]);
        assert_eq!(obj.to_string(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn nested_structures_render_compactly() {
        let v = Json::object([(
            "rows",
            Json::array([Json::array([Json::Int(1), Json::Null]), Json::Bool(false)]),
        )]);
        assert_eq!(v.to_string(), r#"{"rows":[[1,null],false]}"#);
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Json::object([
            ("seed", Json::UInt(1998)),
            ("sets", Json::array([Json::Int(6), Json::Int(7)])),
            ("empty_obj", Json::object::<String>([])),
            ("empty_arr", Json::array([])),
        ]);
        let expected = "{\n  \"seed\": 1998,\n  \"sets\": [\n    6,\n    7\n  ],\n  \"empty_obj\": {},\n  \"empty_arr\": []\n}";
        assert_eq!(v.to_pretty(), expected);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::Float(-0.015));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse(r#""hi there""#).unwrap(),
            Json::Str("hi there".into())
        );
    }

    #[test]
    fn parse_structures() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::object::<String>([]));
        assert_eq!(
            Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap(),
            Json::object([
                (
                    "a",
                    Json::array([Json::UInt(1), Json::object([("b", Json::Null)])])
                ),
                ("c", Json::Str("x".into())),
            ])
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\/d\n\t\u0041""#).unwrap(),
            Json::Str("a\"b\\c/d\n\tA".into())
        );
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            Json::parse(r#""\uD834\uDD1E""#).unwrap(),
            Json::Str("\u{1D11E}".into())
        );
        // Raw non-ASCII passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "nul",
            "01x",
            "1.",
            "1e",
            "-",
            "[1,]",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\uD834\"",
            "\"\\uDD1E\"",
            "1 2",
            "[1] trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_round_trips_bench_report_shape() {
        let report = Json::object([
            ("bench", "hotpath".to_json()),
            (
                "results",
                Json::array([Json::object([
                    ("group", "tokenize_tree".to_json()),
                    ("name", "256KiB".to_json()),
                    ("median_ns", 1_234_567.89.to_json()),
                    ("throughput_mib_s", 223.4.to_json()),
                ])]),
            ),
        ]);
        for rendered in [report.to_string(), report.to_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), report);
        }
        // A whole-number float renders as `223`, which parses back as the
        // exact-integer variant — numerically identical, which is all the
        // bench gate (an `as_f64` consumer) relies on.
        let parsed = Json::parse(&Json::Float(223.0).to_string()).unwrap();
        assert_eq!(parsed, Json::UInt(223));
        assert_eq!(parsed.as_f64(), Some(223.0));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"xs": [1, -2, 2.5], "s": "str"}"#).unwrap();
        let xs = v.get("xs").and_then(Json::as_array).unwrap();
        let nums: Vec<f64> = xs.iter().filter_map(Json::as_f64).collect();
        assert_eq!(nums, [1.0, -2.0, 2.5]);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("str"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("xs"), None);
        assert_eq!(Json::Bool(true).as_f64(), None);
    }

    #[test]
    fn tojson_primitives() {
        assert_eq!(17usize.to_json(), Json::UInt(17));
        assert_eq!((-4i32).to_json(), Json::Int(-4));
        assert_eq!(1.5f64.to_json(), Json::Float(1.5));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(Option::<usize>::None.to_json(), Json::Null);
        assert_eq!(Some(3usize).to_json(), Json::UInt(3));
        assert_eq!([1u32, 2].to_json().to_string(), "[1,2]");
        assert_eq!(vec!["a", "b"].to_json().to_string(), r#"["a","b"]"#);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rbd_prop::{check, gen, prop_assert_eq, Gen};

    /// Arbitrary JSON values built without floats (whose shortest-roundtrip
    /// rendering is exact anyway, but keeping the generator integral makes
    /// the equality assertion unconditional).
    fn arb_json(depth: u32) -> Gen<Json> {
        let scalar = Gen::one_of(vec![
            Gen::just(Json::Null),
            Gen::just(Json::Bool(true)),
            Gen::just(Json::Bool(false)),
            gen::string_from("0123456789", 1..=6).map(|s| match s.parse::<u64>() {
                Ok(n) => Json::UInt(n),
                Err(_) => Json::Null,
            }),
            gen::unicode_string(0..=8).map(Json::Str),
        ]);
        if depth == 0 {
            return scalar;
        }
        let inner = arb_json(depth - 1);
        let arr = Gen::new({
            let inner = inner.clone();
            move |rng| {
                let n = rng.random_range(0..=3usize);
                Json::Array((0..n).map(|_| inner.generate(rng)).collect())
            }
        });
        let key = gen::string_from("abc\"\\\u{1}é", 0..=4);
        let obj = Gen::new(move |rng| {
            let n = rng.random_range(0..=3usize);
            Json::Object(
                (0..n)
                    .map(|_| (key.generate(rng), inner.generate(rng)))
                    .collect(),
            )
        });
        Gen::one_of(vec![scalar, arr, obj])
    }

    /// Every serialized value parses back to the identical value, in both
    /// compact and pretty layouts.
    #[test]
    fn parse_inverts_render() {
        check("parse_inverts_render", &arb_json(3), |v: &Json| {
            prop_assert_eq!(&Json::parse(&v.to_string()).map_err(|e| e.to_string())?, v);
            prop_assert_eq!(&Json::parse(&v.to_pretty()).map_err(|e| e.to_string())?, v);
            Ok(())
        });
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parse_total_over_noise() {
        check(
            "parse_total_over_noise",
            &gen::unicode_string(0..=64),
            |s: &String| {
                let _ = Json::parse(s);
                Ok(())
            },
        );
    }
}
