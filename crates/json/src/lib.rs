//! # rbd-json — minimal in-tree JSON
//!
//! The evaluation harness emits machine-readable reports (`experiments
//! --json`, the bench harness's `BENCH_*.json`). This crate provides the
//! small JSON surface those need — a value type, an escaping-correct
//! serializer, and a [`ToJson`] conversion trait — with no external
//! dependencies, so the workspace builds and tests fully offline (see
//! DESIGN.md, "Hermetic build").
//!
//! Only *serialization* is provided: nothing in the pipeline parses JSON.
//! Serialization is total — every [`Json`] value renders to a valid JSON
//! document, so there is no fallible path and no `expect` at call sites
//! (non-finite floats serialize as `null`, exactly as `serde_json` did).
//!
//! Object members keep their insertion order, which keeps report output
//! stable across runs and easy to diff.
//!
//! ## Example
//!
//! ```
//! use rbd_json::{Json, ToJson};
//!
//! let report = Json::object([
//!     ("seed", 1998u64.to_json()),
//!     ("rates", vec![97.5, 100.0].to_json()),
//!     ("note", "record-boundary \"analogue\"".to_json()),
//! ]);
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"seed":1998,"rates":[97.5,100],"note":"record-boundary \"analogue\""}"#
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
///
/// Numbers are split into three variants so integer report fields (counts,
/// seeds) serialize exactly, without a round trip through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (seeds are full-range `u64`).
    UInt(u64),
    /// A floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; members keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Compact rendering (no whitespace). Equivalent to `to_string()`.
    pub fn to_compact(&self) -> String {
        self.to_string()
    }

    /// Pretty rendering with two-space indentation, one member per line —
    /// the layout `serde_json::to_string_pretty` produced, so downstream
    /// diffs of `experiments --json` output stay quiet.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    push_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            // Scalars, "[]" and "{}" render identically in both modes.
            other => push_compact(out, other),
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn push_compact(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => {
            // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::UInt(n) => {
            // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::Float(x) => push_float(out, *x),
        Json::Str(s) => push_escaped(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_compact(out, item);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, key);
                out.push(':');
                push_compact(out, item);
            }
            out.push('}');
        }
    }
}

/// JSON has no lexeme for NaN or the infinities; `null` is the established
/// lossy encoding (`serde_json`'s default for `f64::NAN`).
fn push_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-roundtrip formatting emits `1` for `1.0`, which
        // is a valid JSON number.
        // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    } else {
        out.push_str("null");
    }
}

/// Escapes `s` into `out` as a JSON string literal, including the
/// surrounding quotes. `"` and `\` get their short escapes, control
/// characters below U+0020 get `\b` `\t` `\n` `\f` `\r` or `\u00XX`, and
/// everything else — including non-ASCII — passes through as raw UTF-8
/// (RFC 8259 §7 permits unescaped code points above U+001F other than
/// `"` and `\`).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{0C}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if c < '\u{20}' => {
                // rbd-lint: allow(swallowed-error) — fmt::Write into a String is infallible
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        push_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Conversion into a [`Json`] value. The in-tree analogue of deriving
/// `serde::Serialize`: report types implement this by hand, which keeps
/// the field list explicit and the serialization infallible.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )*};
}
impl_tojson_signed!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for isize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        assert_eq!(Json::Float(100.0).to_string(), "100");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let obj = Json::object([
            ("z", Json::Int(1)),
            ("a", Json::Int(2)),
            ("m", Json::Int(3)),
        ]);
        assert_eq!(obj.to_string(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn nested_structures_render_compactly() {
        let v = Json::object([(
            "rows",
            Json::array([Json::array([Json::Int(1), Json::Null]), Json::Bool(false)]),
        )]);
        assert_eq!(v.to_string(), r#"{"rows":[[1,null],false]}"#);
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Json::object([
            ("seed", Json::UInt(1998)),
            ("sets", Json::array([Json::Int(6), Json::Int(7)])),
            ("empty_obj", Json::object::<String>([])),
            ("empty_arr", Json::array([])),
        ]);
        let expected = "{\n  \"seed\": 1998,\n  \"sets\": [\n    6,\n    7\n  ],\n  \"empty_obj\": {},\n  \"empty_arr\": []\n}";
        assert_eq!(v.to_pretty(), expected);
    }

    #[test]
    fn tojson_primitives() {
        assert_eq!(17usize.to_json(), Json::UInt(17));
        assert_eq!((-4i32).to_json(), Json::Int(-4));
        assert_eq!(1.5f64.to_json(), Json::Float(1.5));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(Option::<usize>::None.to_json(), Json::Null);
        assert_eq!(Some(3usize).to_json(), Json::UInt(3));
        assert_eq!([1u32, 2].to_json().to_string(), "[1,2]");
        assert_eq!(vec!["a", "b"].to_json().to_string(), r#"["a","b"]"#);
    }
}
