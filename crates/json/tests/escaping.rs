//! String-escaping conformance: every control character, the two
//! mandatory escapes (`"` and `\`), and non-ASCII passthrough. The
//! serializer must produce RFC 8259-valid output for arbitrary Rust
//! strings — report fields carry site names and separator tags today, but
//! nothing stops a future caller from serializing raw document text.

use rbd_json::{Json, ToJson};

fn render(s: &str) -> String {
    s.to_json().to_string()
}

#[test]
fn quote_and_backslash_get_short_escapes() {
    assert_eq!(render(r#"a"b"#), r#""a\"b""#);
    assert_eq!(render(r"a\b"), r#""a\\b""#);
    assert_eq!(render(r#"\""#), r#""\\\"""#);
}

#[test]
fn named_control_escapes() {
    assert_eq!(render("\u{08}"), r#""\b""#);
    assert_eq!(render("\t"), r#""\t""#);
    assert_eq!(render("\n"), r#""\n""#);
    assert_eq!(render("\u{0C}"), r#""\f""#);
    assert_eq!(render("\r"), r#""\r""#);
}

#[test]
fn every_other_control_char_uses_u_escape() {
    // All of U+0000..U+001F must be escaped one way or another.
    for code in 0u32..0x20 {
        let c = char::from_u32(code).expect("control chars are valid");
        let out = render(&c.to_string());
        match c {
            '\u{08}' | '\t' | '\n' | '\u{0C}' | '\r' => {
                assert_eq!(out.len(), 4, "short escape for U+{code:04X}: {out}");
            }
            _ => {
                assert_eq!(
                    out,
                    format!("\"\\u{code:04x}\""),
                    "U+{code:04X} must use \\u00XX"
                );
            }
        }
        // Never a raw control byte inside the literal.
        assert!(
            out.bytes().all(|b| b >= 0x20),
            "raw control byte in {out:?}"
        );
    }
}

#[test]
fn non_ascii_passes_through_as_utf8() {
    assert_eq!(render("é"), "\"é\"");
    assert_eq!(render("日本語"), "\"日本語\"");
    assert_eq!(render("🌀"), "\"🌀\"");
    // Astral and combining characters survive round-tripping into the
    // literal unchanged.
    assert_eq!(render("a\u{135d}b"), "\"a\u{135d}b\"");
}

#[test]
fn mixed_content() {
    assert_eq!(
        render("tab\there \"quoted\" \\ é\n"),
        "\"tab\\there \\\"quoted\\\" \\\\ é\\n\""
    );
}

#[test]
fn object_keys_are_escaped_too() {
    let v = Json::object([("we\"ird\nkey", Json::Null)]);
    assert_eq!(v.to_string(), "{\"we\\\"ird\\nkey\":null}");
    assert_eq!(v.to_pretty(), "{\n  \"we\\\"ird\\nkey\": null\n}");
}

#[test]
fn delete_char_is_not_escaped() {
    // U+007F is above U+001F; RFC 8259 does not require escaping it.
    assert_eq!(render("\u{7F}"), "\"\u{7F}\"");
}
