//! Per-worker job deques with two ends and two access patterns.
//!
//! The owner treats its deque as a LIFO stack (`push`/`pop` on the back):
//! the most recently queued job is the one whose input is hottest in
//! cache, so draining newest-first keeps a worker's working set tight.
//! Thieves take from the *front* — the oldest job — which is both the
//! coldest entry (the owner has moved past it) and the fairest one to
//! relocate: under a skewed load the jobs that have waited longest migrate
//! first, which is what bounds tail latency.
//!
//! The implementation is deliberately a mutexed `VecDeque`, not a lock-free
//! Chase-Lev deque: the workspace is hermetic (no crossbeam, no atomics
//! gymnastics behind `unsafe`, which `#![forbid(unsafe_code)]` rules out
//! anyway), and the deque is touched once per *job* — milliseconds of
//! extraction per lock acquisition — so the mutex is nowhere near the
//! critical path.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One worker's local job queue. Owner pushes and pops the back (LIFO);
/// other workers steal from the front (FIFO).
#[derive(Debug, Default)]
pub struct WorkerDeque<T> {
    jobs: Mutex<VecDeque<T>>,
}

impl<T> WorkerDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        WorkerDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner path: queues a job on the hot end.
    pub fn push(&self, job: T) {
        self.lock().push_back(job);
    }

    /// Owner path: takes the most recently queued job.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Thief path: takes the oldest queued job, leaving the owner's hot
    /// end untouched.
    pub fn steal(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Jobs currently queued (snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no jobs are queued (snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Poison-recovering lock: only this module's loop-free push/pop code
    /// runs under the lock, so a poisoned mutex cannot hold a torn queue.
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let dq = WorkerDeque::new();
        dq.push(1);
        dq.push(2);
        dq.push(3);
        assert_eq!(dq.len(), 3);
        // Owner gets the newest…
        assert_eq!(dq.pop(), Some(3));
        // …a thief gets the oldest.
        assert_eq!(dq.steal(), Some(1));
        assert_eq!(dq.pop(), Some(2));
        assert!(dq.is_empty());
        assert_eq!(dq.pop(), None);
        assert_eq!(dq.steal(), None);
    }

    #[test]
    fn interleaved_push_pop_steal_preserves_every_job() {
        let dq = WorkerDeque::new();
        let mut seen = Vec::new();
        for batch in 0..10 {
            for i in 0..5 {
                dq.push(batch * 5 + i);
            }
            seen.extend(dq.steal());
            seen.extend(dq.pop());
        }
        while let Some(v) = dq.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
