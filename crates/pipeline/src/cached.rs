//! Store-backed batch extraction: the content-hash cache of DESIGN.md §14.
//!
//! [`run_batch_stored`] wraps [`run_batch`](crate::run_batch) with a
//! persistent [`Store`]: every document's bytes are hashed (SHA-256)
//! before any extraction work, documents whose hash is already committed
//! in the store are served from disk without touching
//! tokenize → heuristics → recognize at all, and only the misses go
//! through the worker pool. Fresh extractions are appended to the store
//! in one crash-safe commit at the end of the run, so the next batch over
//! the same corpus is all hits.
//!
//! Failure policy, bottom to top:
//!
//! * a store **read** error (a committed frame that no longer passes its
//!   checksum, say) degrades that document to a miss — it re-runs through
//!   the pool and the typed [`StoreError`] travels on the result so
//!   `rbd batch --json` can report it; nothing panics on a corrupt file;
//! * a store **write** error at commit time loses only the cache (the
//!   extractions themselves are already in hand and are still returned);
//!   the error is surfaced once on the report;
//! * every cache decision is counted: `store_cache_hits`,
//!   `store_cache_misses`, `store_read_errors`, `store_write_errors`, and
//!   `store_docs_appended` land in the same metrics snapshot as the
//!   pipeline counters.

use crate::batch::{run_batch, BatchConfig, BatchError, BatchReport};
use crate::pool::PoolError;
use rbd_core::RecordExtractor;
use rbd_store::{ContentHash, Store, StoreError, StoredDoc};
use rbd_trace::{RegistrySnapshot, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Whether a document was served from the store or freshly extracted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The document's content hash was committed in the store; the stored
    /// extraction was served and the pipeline never ran.
    Hit,
    /// The document ran through the full extraction pipeline.
    Miss,
}

impl CacheStatus {
    /// The JSON-facing name: `"hit"` or `"miss"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// One document's outcome in a store-backed batch.
#[derive(Debug)]
pub struct CachedResult {
    /// The caller-assigned document id (the sort key of the batch).
    pub doc_id: u64,
    /// SHA-256 of the document bytes — the cache key.
    pub hash: ContentHash,
    /// Hit (served from the store) or miss (freshly extracted).
    pub cache: CacheStatus,
    /// The stored-form extraction: loaded from disk on a hit, built from
    /// the fresh extraction on a successful miss.
    pub outcome: Result<StoredDoc, BatchError>,
    /// A store read error that degraded this document from a would-be hit
    /// to a miss. The document still extracted normally; this is the
    /// typed reason the cache could not serve it.
    pub store_error: Option<StoreError>,
}

/// A finished store-backed batch.
#[derive(Debug)]
pub struct CachedBatchReport {
    /// One entry per input document, ascending `doc_id`.
    pub results: Vec<CachedResult>,
    /// Pipeline metrics for the miss run, plus the `store_` counters.
    pub metrics: RegistrySnapshot,
    /// Documents dropped by the shedding policy (misses only; hits are
    /// never shed — they skip the pool entirely).
    pub shed: usize,
    /// Documents run under strict limits by the shedding policy.
    pub strict: usize,
    /// Documents served from the store.
    pub hits: u64,
    /// Documents that ran through the pipeline.
    pub misses: u64,
    /// The commit error, if appending the fresh extractions failed. The
    /// extractions are still in `results`; only the cache was lost.
    pub write_error: Option<StoreError>,
}

/// Runs `docs` through the extraction pipeline with `store` as a
/// content-hash cache, committing fresh extractions back to the store.
///
/// `docs` entries are `(doc_id, source, html)`: `source` is an optional
/// provenance label (the CLI passes the file path) persisted with the
/// record. Results come back sorted by `doc_id`, exactly like
/// [`run_batch`](crate::run_batch).
///
/// # Errors
///
/// Returns the pool construction error (`jobs == 0`) — per-document and
/// per-store failures are reported in the [`CachedBatchReport`], never as
/// an `Err`.
pub fn run_batch_stored(
    extractor: &RecordExtractor,
    docs: Vec<(u64, Option<String>, String)>,
    config: &BatchConfig,
    sink: &Arc<dyn TraceSink>,
    store: &mut Store,
) -> Result<CachedBatchReport, PoolError> {
    if config.jobs == 0 {
        // Surface the invalid config even when every document would hit.
        return Err(PoolError::ZeroWorkers);
    }

    let mut results: Vec<CachedResult> = Vec::with_capacity(docs.len());
    let mut misses: Vec<(u64, String)> = Vec::new();
    let mut miss_meta: BTreeMap<u64, (ContentHash, Option<String>, Option<StoreError>)> =
        BTreeMap::new();
    let mut read_errors = 0u64;

    for (doc_id, source, html) in docs {
        let hash = ContentHash::of(html.as_bytes());
        let mut store_error = None;
        if store.contains(&hash) {
            match store.get(&hash) {
                Ok(Some(stored)) => {
                    results.push(CachedResult {
                        doc_id,
                        hash,
                        cache: CacheStatus::Hit,
                        outcome: Ok(stored),
                        store_error: None,
                    });
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    // A committed frame failed to read back: degrade to a
                    // miss and carry the typed error on the result.
                    read_errors += 1;
                    store_error = Some(e);
                }
            }
        }
        miss_meta.insert(doc_id, (hash, source, store_error));
        misses.push((doc_id, html));
    }

    let hits = results.len() as u64;
    let miss_count = misses.len() as u64;

    let (miss_report, appended, write_error) = if misses.is_empty() {
        (None, 0, None)
    } else {
        let report = run_batch(extractor, misses, config, sink)?;
        let fresh: Vec<StoredDoc> = report
            .results
            .iter()
            .filter_map(|r| {
                let (hash, source, _) = miss_meta.get(&r.doc_id)?;
                let extraction = r.outcome.as_ref().ok()?;
                Some(StoredDoc::from_extraction(
                    *hash,
                    source.as_deref(),
                    extraction,
                ))
            })
            .collect();
        // One crash-safe commit for the whole run: a failure here loses
        // only the cache, never the extractions already in hand.
        let (appended, write_error) = if fresh.is_empty() {
            (0, None)
        } else {
            match store.append_batch(&fresh) {
                Ok(n) => (n, None),
                Err(e) => (0, Some(e)),
            }
        };
        (Some(report), appended, write_error)
    };

    let (shed, strict, metrics) = match miss_report {
        Some(BatchReport {
            results: miss_results,
            metrics,
            shed,
            strict,
        }) => {
            for r in miss_results {
                let (hash, source, store_error) =
                    miss_meta
                        .remove(&r.doc_id)
                        .unwrap_or((ContentHash::of(&[]), None, None));
                let outcome = r.outcome.map(|extraction| {
                    StoredDoc::from_extraction(hash, source.as_deref(), &extraction)
                });
                results.push(CachedResult {
                    doc_id: r.doc_id,
                    hash,
                    cache: CacheStatus::Miss,
                    outcome,
                    store_error,
                });
            }
            (shed, strict, metrics)
        }
        None => (
            0,
            0,
            RegistrySnapshot {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            },
        ),
    };

    let mut metrics = metrics;
    metrics.counters.insert("store_cache_hits", hits);
    metrics.counters.insert("store_cache_misses", miss_count);
    metrics.counters.insert("store_read_errors", read_errors);
    metrics
        .counters
        .insert("store_write_errors", u64::from(write_error.is_some()));
    metrics.counters.insert("store_docs_appended", appended);

    results.sort_by_key(|r| r.doc_id);
    Ok(CachedBatchReport {
        results,
        metrics,
        shed,
        strict,
        hits,
        misses: miss_count,
        write_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_trace::NullSink;

    fn doc(records: usize, seed: usize) -> String {
        let mut d = String::from("<html><body><table><tr><td><h1>List</h1><hr>");
        for i in 0..records {
            d.push_str(&format!(
                "<b>Entry {i}-{seed}</b><br> body text for entry {i} of seed {seed}, \
                 long enough to look like a record.<br><hr>"
            ));
        }
        d.push_str("</td></tr></table></body></html>");
        d
    }

    fn corpus(n: u64) -> Vec<(u64, Option<String>, String)> {
        (0..n)
            .map(|i| {
                let seed = usize::try_from(i).expect("small corpus");
                let body = match i % 7 {
                    3 => String::new(),
                    5 => "plain text, no tags".to_owned(),
                    _ => doc(3 + (seed % 4), seed),
                };
                (i, Some(format!("doc-{i}.html")), body)
            })
            .collect()
    }

    fn sink() -> Arc<dyn TraceSink> {
        Arc::new(NullSink)
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("rbd-cached-unit-{name}-{}.rbd", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn second_run_is_all_hits_and_identical() {
        let path = scratch("rerun");
        let ex = RecordExtractor::default();
        let mut store = Store::open(&path).expect("open");

        let first = run_batch_stored(
            &ex,
            corpus(12),
            &BatchConfig::with_jobs(2),
            &sink(),
            &mut store,
        )
        .expect("valid config");
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses, 12);
        assert!(first.write_error.is_none());
        assert_eq!(first.metrics.counters.get("store_cache_misses"), Some(&12));

        let second = run_batch_stored(
            &ex,
            corpus(12),
            &BatchConfig::with_jobs(2),
            &sink(),
            &mut store,
        )
        .expect("valid config");
        // Only successfully extracted documents were cached; failures
        // (empty / tagless docs) re-run and miss again.
        let cached = first.results.iter().filter(|r| r.outcome.is_ok()).count() as u64;
        assert_eq!(second.hits, cached);
        assert!(second.hits > 0);
        assert_eq!(
            second.metrics.counters.get("store_cache_hits"),
            Some(&cached)
        );

        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.hash, b.hash);
            if let (Ok(fresh), Ok(hit)) = (&a.outcome, &b.outcome) {
                assert_eq!(b.cache, CacheStatus::Hit);
                assert_eq!(
                    fresh.response_json().to_compact(),
                    hit.response_json().to_compact(),
                    "doc {}: cache hit must be byte-identical",
                    a.doc_id
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn changed_byte_busts_the_cache() {
        let path = scratch("bust");
        let ex = RecordExtractor::default();
        let mut store = Store::open(&path).expect("open");
        let html = doc(4, 7);
        let docs = vec![(0u64, None, html.clone())];
        let r1 = run_batch_stored(&ex, docs, &BatchConfig::with_jobs(1), &sink(), &mut store)
            .expect("valid config");
        assert_eq!(r1.misses, 1);

        let mutated = html.replacen("Entry", "entry", 1);
        assert_ne!(mutated, html);
        let r2 = run_batch_stored(
            &ex,
            vec![(0u64, None, mutated)],
            &BatchConfig::with_jobs(1),
            &sink(),
            &mut store,
        )
        .expect("valid config");
        assert_eq!(r2.hits, 0, "one changed byte must miss");
        assert_eq!(r2.misses, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_jobs_rejected_even_for_all_hit_batch() {
        let path = scratch("zerojobs");
        let ex = RecordExtractor::default();
        let mut store = Store::open(&path).expect("open");
        let err = run_batch_stored(
            &ex,
            Vec::new(),
            &BatchConfig::with_jobs(0),
            &sink(),
            &mut store,
        );
        assert!(matches!(err, Err(PoolError::ZeroWorkers)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn results_sorted_with_mixed_hits_and_misses() {
        let path = scratch("mixed");
        let ex = RecordExtractor::default();
        let mut store = Store::open(&path).expect("open");
        // Prime the store with the even-numbered documents.
        let prime: Vec<_> = corpus(8)
            .into_iter()
            .filter(|(i, _, _)| i % 2 == 0)
            .collect();
        run_batch_stored(&ex, prime, &BatchConfig::with_jobs(2), &sink(), &mut store)
            .expect("valid config");
        let all = run_batch_stored(
            &ex,
            corpus(8),
            &BatchConfig::with_jobs(2),
            &sink(),
            &mut store,
        )
        .expect("valid config");
        let ids: Vec<u64> = all.results.iter().map(|r| r.doc_id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert!(all.hits > 0);
        assert!(all.misses > 0);
        assert_eq!(all.hits + all.misses, 8);
        let _ = std::fs::remove_file(&path);
    }
}
