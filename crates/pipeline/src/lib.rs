//! # rbd-pipeline — the concurrent batch-extraction engine
//!
//! Everything before this crate processes documents one at a time; this
//! crate is the throughput layer that runs many governed extractions at
//! once without giving up the properties the rest of the workspace is
//! built on: bounded memory, explicit degradation, deterministic output,
//! and zero external dependencies.
//!
//! Three layers, bottom up:
//!
//! * [`channel::Bounded`] — a bounded MPMC channel from one `Mutex` and
//!   two `Condvar`s. Capacity is a hard, visible limit: a full channel
//!   blocks (or refuses) the producer, it never grows. The `concurrency`
//!   rule in `rbd-lint` denies unbounded channel constructs everywhere
//!   for the same reason.
//! * [`pool::Pool`] — a fixed-size worker pool fed by one bounded
//!   injector, with per-worker LIFO deques plus work stealing (oldest job
//!   first) for tail latency, panic isolation via `catch_unwind`, and an
//!   optional [`pool::ShedPolicy`] that drops or strict-limits new work
//!   once the queue has stayed saturated past a watermark — every shed
//!   counted and reported through `rbd-trace`, never silent. Workers
//!   record metrics into private registries merged at shutdown
//!   (`Registry::merge`), so the hot path shares no metric lock.
//! * [`batch::run_batch`] — one call that runs a corpus of `(doc_id,
//!   html)` documents through a pool of `N` workers and returns per-
//!   document results **sorted by `doc_id`**: a concurrent batch is
//!   byte-identical to a serial sweep over the same inputs (given
//!   deterministic per-document limits), which the threaded arm of the
//!   chaos suite asserts end to end. [`cached::run_batch_stored`] layers
//!   the persistent extraction cache (`rbd-store`, DESIGN.md §14) over
//!   the same pool: workers hash first and only extract on a cache miss,
//!   fresh results commit to the store in one crash-safe batch, and each
//!   result reports its [`CacheStatus`].
//!
//! This crate is the only place in the workspace allowed to spawn
//! threads; the `concurrency` lint rule keeps it that way.
//!
//! ## Example
//!
//! ```
//! use rbd_core::RecordExtractor;
//! use rbd_pipeline::{run_batch, BatchConfig};
//! use rbd_trace::{NullSink, TraceSink};
//! use std::sync::Arc;
//!
//! let extractor = RecordExtractor::default();
//! let docs: Vec<(u64, String)> = (0..8)
//!     .map(|i| (i, "<td><p>a a</p><p>b b</p><p>c c</p></td>".to_owned()))
//!     .collect();
//! let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
//! let report = run_batch(&extractor, docs, &BatchConfig::with_jobs(2), &sink).unwrap();
//! assert_eq!(report.results.len(), 8);
//! // Deterministic: results come back sorted by doc_id.
//! assert!(report.results.windows(2).all(|w| w[0].doc_id < w[1].doc_id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cached;
pub mod channel;
pub mod deque;
pub mod pool;

pub use batch::{run_batch, BatchConfig, BatchError, BatchReport, BatchResult};
pub use cached::{run_batch_stored, CacheStatus, CachedBatchReport, CachedResult};
pub use channel::{Bounded, RecvTimeout, TrySendError};
pub use deque::WorkerDeque;
pub use pool::{
    Admission, JobPanic, JobResult, Pool, PoolConfig, PoolError, ShedMode, ShedPolicy,
    ShutdownReport, SubmitError, TrySubmitError,
};
