//! The fixed-size work-stealing worker pool.
//!
//! Topology: one bounded **injector** channel feeds `N` worker threads,
//! each owning a [`WorkerDeque`]. A worker drains its own deque LIFO,
//! refills it in batches from the injector, and — only when both are
//! empty — steals the *oldest* job from a sibling. Completed jobs leave
//! through one bounded **completion** channel as [`JobResult`]s carrying
//! the job id, the worker that ran it, and its queue-wait / run-time
//! split, so the submitter can re-establish a deterministic order by
//! sorting on the id it chose.
//!
//! Three policies are explicit rather than emergent:
//!
//! * **Backpressure** — [`Pool::submit`] blocks on a full injector;
//!   [`Pool::try_submit`] returns [`TrySubmitError::QueueFull`] instead.
//!   Nothing in the pool ever grows without bound.
//! * **Load shedding** — an optional [`ShedPolicy`] watches the injector
//!   depth at submission time. Once the queue has stayed at or above the
//!   watermark for the configured sustain window, new work is either
//!   dropped ([`ShedMode::Drop`]) or admitted flagged for strict limits
//!   ([`ShedMode::Strict`]); either way the shed is reported to the trace
//!   sink as a degradation event and counted, never silent.
//! * **Panic isolation** — the runner executes under
//!   [`std::panic::catch_unwind`]; a panicking job becomes a
//!   [`JobPanic`] in its own completion record and the worker carries on.
//!   The pool cannot be poisoned by its payloads.

use crate::channel::{Bounded, RecvTimeout, TrySendError};
use crate::deque::WorkerDeque;
use rbd_core::limits::DegradationStage;
use rbd_limits::LimitKind;
use rbd_trace::{Registry, RegistrySnapshot, TraceEvent, TraceSink};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the shedding policy does with work that arrives while the queue is
/// saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedMode {
    /// Refuse the job: submission returns a `Shed` error and the caller
    /// decides (retry later, fail the document, spill to disk…).
    Drop,
    /// Admit the job but flag it [`Admission::Strict`], telling the runner
    /// to execute under its tightest resource limits so the backlog drains
    /// faster at reduced fidelity instead of growing.
    Strict,
}

/// When and how the pool sheds load. The policy fires only when saturation
/// is *sustained*: a momentary burst that fills the queue and drains again
/// within `sustained` is ordinary backpressure, not overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queue depth (in jobs) at or above which the queue counts as
    /// saturated.
    pub watermark: usize,
    /// How long saturation must persist before shedding starts.
    pub sustained: Duration,
    /// What to do with new work once shedding starts.
    pub mode: ShedMode,
}

/// How a job was admitted — passed to the runner so it can pick its
/// resource profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted normally; run at the configured fidelity.
    Normal,
    /// Admitted during sustained saturation under [`ShedMode::Strict`]:
    /// the runner should use its strictest limits. Carries the watermark
    /// and the observed queue depth for the degradation report.
    Strict {
        /// The policy's saturation watermark.
        watermark: usize,
        /// Injector depth observed at submission.
        depth: usize,
    },
}

/// A job the pool caught panicking. The panic payload is flattened to a
/// message; the job's slot in the completion stream is otherwise normal —
/// one submission, one result, panic or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, stringified (`&str` and `String` payloads pass
    /// through verbatim).
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// One completed job, as delivered on the completion channel.
#[derive(Debug, Clone)]
pub struct JobResult<R> {
    /// The id [`Pool::submit`] returned for this job. Ids are assigned in
    /// submission order, so sorting results by id restores it.
    pub job_id: u64,
    /// Index of the worker that ran the job (`0..workers`).
    pub worker: usize,
    /// How the job was admitted (normal or strict-shed).
    pub admission: Admission,
    /// Time between submission and the worker picking the job up.
    pub queue_wait: Duration,
    /// Time the runner spent on the job.
    pub run_time: Duration,
    /// The runner's output, or the caught panic.
    pub output: Result<R, JobPanic>,
}

/// An internal unit of work: payload plus the bookkeeping the completion
/// record needs.
#[derive(Debug)]
struct Job<T> {
    id: u64,
    payload: T,
    admission: Admission,
    submitted: Instant,
}

/// Pool construction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// `workers == 0`: a pool with no workers can accept jobs but never
    /// run one — every submission would deadlock or rot in the queue, so
    /// the configuration is rejected outright.
    ZeroWorkers,
    /// The OS refused to spawn a worker thread.
    Spawn(String),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::ZeroWorkers => f.write_str("pool requires at least one worker"),
            PoolError::Spawn(e) => write!(f, "failed to spawn worker thread: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Why a blocking submission failed. The payload always comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<T> {
    /// The pool has been shut down.
    Closed(T),
    /// The shedding policy ([`ShedMode::Drop`]) refused the job.
    Shed {
        /// The refused payload, returned to the caller.
        job: T,
        /// The policy's saturation watermark.
        watermark: usize,
        /// Injector depth observed at submission.
        depth: usize,
    },
}

/// Why a non-blocking submission failed. The payload always comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySubmitError<T> {
    /// The injector is at capacity — backpressure; try again after
    /// draining a completion.
    QueueFull(T),
    /// The pool has been shut down.
    Closed(T),
    /// The shedding policy ([`ShedMode::Drop`]) refused the job.
    Shed {
        /// The refused payload, returned to the caller.
        job: T,
        /// The policy's saturation watermark.
        watermark: usize,
        /// Injector depth observed at submission.
        depth: usize,
    },
}

/// Pool sizing and policy.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads. Must be at least one.
    pub workers: usize,
    /// Injector capacity in jobs; zero is rounded up to one.
    pub queue_capacity: usize,
    /// Completion-channel capacity; `None` sizes it to
    /// `queue_capacity + workers`, enough for every queued and in-flight
    /// job to complete without the submitter draining.
    pub completion_capacity: Option<usize>,
    /// How many jobs a worker moves from the injector to its local deque
    /// per refill (amortizes injector lock traffic).
    pub refill_batch: usize,
    /// How long an idle worker waits on the injector before rescanning its
    /// siblings' deques for stealable work.
    pub steal_poll: Duration,
    /// Optional load-shedding policy; `None` means backpressure only.
    pub shed: Option<ShedPolicy>,
    /// `true` (the default) delivers a [`JobResult`] per job on the
    /// completion channel. `false` is **detached** mode for jobs that route
    /// their own results (e.g. a network handler writing its response to
    /// the connection it owns): no completion is sent, so nothing wedges
    /// when nobody drains, and per-job metrics still land in the worker
    /// registries merged at shutdown.
    pub deliver_completions: bool,
}

impl PoolConfig {
    /// A config with `workers` threads, a `2 × workers` injector, and no
    /// shedding.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            queue_capacity: workers.saturating_mul(2).max(1),
            completion_capacity: None,
            refill_batch: 4,
            steal_poll: Duration::from_millis(1),
            shed: None,
            deliver_completions: true,
        }
    }

    /// Sets the injector capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Installs a load-shedding policy.
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// Switches the pool to detached mode: jobs produce no [`JobResult`]s
    /// on the completion channel (see
    /// [`PoolConfig::deliver_completions`]).
    #[must_use]
    pub fn detached(mut self) -> Self {
        self.deliver_completions = false;
        self
    }
}

/// Everything the worker threads share.
struct Shared<T, R> {
    injector: Bounded<Job<T>>,
    deques: Vec<WorkerDeque<Job<T>>>,
    completions: Bounded<JobResult<R>>,
    runner: Box<dyn Fn(T, Admission) -> R + Send + Sync>,
    sink: Arc<dyn TraceSink>,
    deliver_completions: bool,
}

impl<T, R> fmt::Debug for Shared<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("queued", &self.injector.len())
            .field("workers", &self.deques.len())
            .finish_non_exhaustive()
    }
}

/// What [`Pool::shutdown`] hands back after the last worker exits.
#[derive(Debug)]
pub struct ShutdownReport<R> {
    /// Completions the submitter had not received before shutdown, in
    /// completion order. Together with what was already received, every
    /// admitted job appears exactly once. Always empty in detached mode.
    pub unclaimed: Vec<JobResult<R>>,
    /// All workers' private metric registries, merged: job counts, steals,
    /// panics, queue-wait and run-time histograms. Workers abandoned at a
    /// drain deadline could not contribute theirs.
    pub metrics: RegistrySnapshot,
    /// Workers that died outside a job (should always be zero — job
    /// panics are caught and reported per job).
    pub worker_panics: usize,
    /// Workers still running when a [`Pool::shutdown_within`] drain
    /// deadline expired. Their threads keep finishing in the background
    /// (threads cannot be killed), but the pool stopped waiting for them.
    /// Always zero after a plain [`Pool::shutdown`].
    pub abandoned: usize,
}

/// The worker pool. `T` is the job payload, `R` the runner's output.
#[derive(Debug)]
pub struct Pool<T, R> {
    shared: Arc<Shared<T, R>>,
    handles: Vec<JoinHandle<RegistrySnapshot>>,
    next_id: AtomicU64,
    /// When the injector first hit the watermark, if it is currently at or
    /// above it. Reset the moment a submission observes it below.
    saturated_since: Mutex<Option<Instant>>,
    shed: Option<ShedPolicy>,
}

/// Internal admission decision for one submission.
enum Decision {
    Admit(Admission),
    Shed { watermark: usize, depth: usize },
}

impl<T: Send + 'static, R: Send + 'static> Pool<T, R> {
    /// Spawns the workers. `runner` executes each job; it receives the
    /// payload and the [`Admission`] the shedding policy chose. `sink`
    /// receives submission/shed counters and shed degradation events;
    /// per-job metrics go to private per-worker registries merged in
    /// [`Pool::shutdown`].
    pub fn new(
        config: PoolConfig,
        runner: impl Fn(T, Admission) -> R + Send + Sync + 'static,
        sink: Arc<dyn TraceSink>,
    ) -> Result<Self, PoolError> {
        let PoolConfig {
            workers,
            queue_capacity,
            completion_capacity,
            refill_batch,
            steal_poll,
            shed,
            deliver_completions,
        } = config;
        if workers == 0 {
            return Err(PoolError::ZeroWorkers);
        }
        let completion_capacity = completion_capacity.unwrap_or(queue_capacity.max(1) + workers);
        let shared = Arc::new(Shared {
            injector: Bounded::new(queue_capacity),
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            completions: Bounded::new(completion_capacity),
            runner: Box::new(runner),
            sink,
            deliver_completions,
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let poll = steal_poll;
            let refill = refill_batch.max(1);
            let spawned = std::thread::Builder::new()
                .name(format!("rbd-worker-{index}"))
                .spawn(move || worker_loop(&worker_shared, index, poll, refill));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind: release the workers already running.
                    shared.injector.close();
                    shared.completions.close();
                    return Err(PoolError::Spawn(e.to_string()));
                }
            }
        }
        Ok(Pool {
            shared,
            handles,
            next_id: AtomicU64::new(0),
            saturated_since: Mutex::new(None),
            shed,
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Jobs waiting in the injector right now (excludes jobs already moved
    /// to worker deques or running).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.injector.len()
    }

    /// Submits a job, blocking while the injector is full. Returns the
    /// job's id — ids are assigned in submission order, so sorting
    /// completions by id reproduces it.
    ///
    /// Backpressure is end to end: the completion channel is bounded too,
    /// so a submitter that never drains results can wedge the pool once
    /// `completion_capacity` results are outstanding (workers block
    /// delivering, the injector fills, `submit` blocks). Either drain
    /// concurrently — the [`Pool::try_submit`] + [`Pool::recv_result`]
    /// alternation `run_batch` uses — or size `completion_capacity` to the
    /// whole batch.
    pub fn submit(&self, payload: T) -> Result<u64, SubmitError<T>> {
        match self.decide() {
            Decision::Shed { watermark, depth } => Err(SubmitError::Shed {
                job: payload,
                watermark,
                depth,
            }),
            Decision::Admit(admission) => {
                let (id, job) = self.make_job(payload, admission);
                match self.shared.injector.send(job) {
                    Ok(()) => {
                        self.shared.sink.add("pipeline_jobs_submitted", 1);
                        Ok(id)
                    }
                    Err(job) => Err(SubmitError::Closed(job.payload)),
                }
            }
        }
    }

    /// Submits a job only if the injector has room right now;
    /// [`TrySubmitError::QueueFull`] is the backpressure signal.
    pub fn try_submit(&self, payload: T) -> Result<u64, TrySubmitError<T>> {
        match self.decide() {
            Decision::Shed { watermark, depth } => Err(TrySubmitError::Shed {
                job: payload,
                watermark,
                depth,
            }),
            Decision::Admit(admission) => {
                let (id, job) = self.make_job(payload, admission);
                match self.shared.injector.try_send(job) {
                    Ok(()) => {
                        self.shared.sink.add("pipeline_jobs_submitted", 1);
                        Ok(id)
                    }
                    Err(TrySendError::Full(job)) => Err(TrySubmitError::QueueFull(job.payload)),
                    Err(TrySendError::Closed(job)) => Err(TrySubmitError::Closed(job.payload)),
                }
            }
        }
    }

    /// Blocks for the next completion; `None` once the pool is shut down
    /// and the completion channel drained.
    pub fn recv_result(&self) -> Option<JobResult<R>> {
        self.shared.completions.recv()
    }

    /// The next completion, if one is ready right now.
    pub fn try_recv_result(&self) -> Option<JobResult<R>> {
        self.shared.completions.try_recv()
    }

    /// Closes the injector, lets every already-admitted job finish, joins
    /// the workers, and returns whatever completions the submitter had
    /// not drained. Completions are drained *while* joining, so shutdown
    /// cannot deadlock on a full completion channel — the clean-drain
    /// guarantee the chaos suite asserts.
    pub fn shutdown(self) -> ShutdownReport<R> {
        self.drain(None)
    }

    /// [`Pool::shutdown`] with a drain deadline: already-admitted jobs get
    /// up to `deadline` of wall clock to finish; workers still running
    /// when it expires are *abandoned* — their `JoinHandle`s dropped, the
    /// channels closed so they exit as soon as their current job returns —
    /// and counted in [`ShutdownReport::abandoned`]. This is the graceful-
    /// shutdown primitive for a long-lived service: drain in-flight work,
    /// but never let one wedged request hold the process open forever.
    pub fn shutdown_within(self, deadline: Duration) -> ShutdownReport<R> {
        self.drain(Some(deadline))
    }

    fn drain(mut self, deadline: Option<Duration>) -> ShutdownReport<R> {
        self.shared.injector.close();
        let started = Instant::now();
        let mut metrics = Registry::new();
        let mut unclaimed = Vec::new();
        let mut worker_panics = 0usize;
        let mut handles = std::mem::take(&mut self.handles);
        loop {
            while let Some(result) = self.shared.completions.try_recv() {
                unclaimed.push(result);
            }
            let mut still_running = Vec::with_capacity(handles.len());
            for handle in handles {
                if handle.is_finished() {
                    match handle.join() {
                        Ok(snapshot) => metrics.merge(&snapshot),
                        Err(_) => worker_panics += 1,
                    }
                } else {
                    still_running.push(handle);
                }
            }
            handles = still_running;
            if handles.is_empty() {
                break;
            }
            if deadline.is_some_and(|d| started.elapsed() >= d) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let abandoned = handles.len();
        // Dropping the surviving handles detaches the threads; closing the
        // channels turns their next blocking wait into an exit path.
        drop(handles);
        self.shared.completions.close();
        while let Some(result) = self.shared.completions.try_recv() {
            unclaimed.push(result);
        }
        ShutdownReport {
            unclaimed,
            metrics: metrics.typed_snapshot(),
            worker_panics,
            abandoned,
        }
    }

    /// Assigns the next id and wraps the payload.
    fn make_job(&self, payload: T, admission: Admission) -> (u64, Job<T>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        (
            id,
            Job {
                id,
                payload,
                admission,
                submitted: Instant::now(),
            },
        )
    }

    /// Applies the shedding policy to one submission attempt.
    fn decide(&self) -> Decision {
        let Some(policy) = self.shed else {
            return Decision::Admit(Admission::Normal);
        };
        let depth = self.shared.injector.len();
        let mut since = self
            .saturated_since
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if depth < policy.watermark {
            *since = None;
            return Decision::Admit(Admission::Normal);
        }
        let start = since.get_or_insert_with(Instant::now);
        if start.elapsed() < policy.sustained {
            // Saturated, but not yet long enough: plain backpressure.
            return Decision::Admit(Admission::Normal);
        }
        drop(since);
        self.report_shed(&policy, depth);
        match policy.mode {
            ShedMode::Drop => Decision::Shed {
                watermark: policy.watermark,
                depth,
            },
            ShedMode::Strict => Decision::Admit(Admission::Strict {
                watermark: policy.watermark,
                depth,
            }),
        }
    }

    /// Every shed decision reaches the sink — as a counter always, and as
    /// a degradation event on the audit trail when tracing is on.
    fn report_shed(&self, policy: &ShedPolicy, depth: usize) {
        let sink = &self.shared.sink;
        sink.add(
            match policy.mode {
                ShedMode::Drop => "pipeline_jobs_shed",
                ShedMode::Strict => "pipeline_jobs_strict",
            },
            1,
        );
        if sink.enabled() {
            sink.event(TraceEvent::Degradation {
                stage: DegradationStage::Pipeline.to_string(),
                limit: LimitKind::QueueDepth.name().to_owned(),
                cap: u64::try_from(policy.watermark).unwrap_or(u64::MAX),
                observed: u64::try_from(depth).unwrap_or(u64::MAX),
            });
        }
    }
}

impl<T, R> Drop for Pool<T, R> {
    /// Dropping without [`Pool::shutdown`] must not leave worker threads
    /// parked forever: closing both channels turns every blocking wait
    /// inside a worker into an exit path. Results still queued are lost —
    /// which is what abandoning a pool means — but the threads terminate.
    fn drop(&mut self) {
        self.shared.injector.close();
        self.shared.completions.close();
    }
}

/// One worker thread: drain own deque (LIFO) → batch-refill from the
/// injector → steal from a sibling (oldest first) → short wait on the
/// injector, repeat. Exits when the injector is closed and no work remains
/// anywhere it can see. Returns its private metrics for the shutdown
/// merge.
fn worker_loop<T, R>(
    shared: &Shared<T, R>,
    me: usize,
    poll: Duration,
    refill: usize,
) -> RegistrySnapshot {
    let metrics = Registry::new();
    loop {
        // 1. Own deque, newest first: the cache-warm path.
        if let Some(job) = shared.deques.get(me).and_then(WorkerDeque::pop) {
            if !run_job(shared, &metrics, me, job) {
                break;
            }
            continue;
        }
        // 2. Refill from the injector in one lock acquisition.
        let mut grabbed = shared.injector.try_recv_batch(refill);
        if !grabbed.is_empty() {
            let first = grabbed.remove(0);
            if let Some(deque) = shared.deques.get(me) {
                for job in grabbed {
                    deque.push(job);
                }
            }
            if !run_job(shared, &metrics, me, first) {
                break;
            }
            continue;
        }
        // 3. Steal the oldest job from a sibling.
        if let Some(job) = steal_from_siblings(shared, me) {
            metrics.add("pipeline_steals", 1);
            if !run_job(shared, &metrics, me, job) {
                break;
            }
            continue;
        }
        // 4. Nothing anywhere: wait briefly for the injector, then rescan
        //    (a sibling may have become stealable while we slept).
        match shared.injector.recv_timeout(poll) {
            RecvTimeout::Item(job) => {
                if !run_job(shared, &metrics, me, job) {
                    break;
                }
            }
            RecvTimeout::TimedOut => {}
            RecvTimeout::Disconnected => {
                // Closed and drained. One final sweep so a job pushed to a
                // sibling's deque just before the close is not stranded if
                // its owner is busy with a long job.
                if let Some(job) = steal_from_siblings(shared, me) {
                    metrics.add("pipeline_steals", 1);
                    if !run_job(shared, &metrics, me, job) {
                        break;
                    }
                    continue;
                }
                break;
            }
        }
    }
    metrics.typed_snapshot()
}

/// Scans the other workers' deques round-robin starting after `me`.
fn steal_from_siblings<T, R>(shared: &Shared<T, R>, me: usize) -> Option<Job<T>> {
    let n = shared.deques.len();
    (1..n)
        .filter_map(|offset| shared.deques.get((me + offset) % n))
        .find_map(WorkerDeque::steal)
}

/// Runs one job under `catch_unwind` and delivers its completion record.
/// Returns `false` when the completion channel is closed — the signal
/// that the pool was abandoned and the worker should exit.
fn run_job<T, R>(shared: &Shared<T, R>, metrics: &Registry, me: usize, job: Job<T>) -> bool {
    let queue_wait = job.submitted.elapsed();
    let Job {
        id,
        payload,
        admission,
        ..
    } = job;
    let started = Instant::now();
    // AssertUnwindSafe: the runner only sees state it owns (the moved
    // payload) or shares behind `&` (the caller's extractor, whose methods
    // take `&self` and keep no cross-call mutable state), so a panic
    // cannot leave anything observable torn.
    let outcome = catch_unwind(AssertUnwindSafe(|| (shared.runner)(payload, admission)));
    let run_time = started.elapsed();
    metrics.add("pipeline_jobs_run", 1);
    metrics.observe("pipeline_queue_wait", duration_ns(queue_wait));
    metrics.observe("pipeline_run_time", duration_ns(run_time));
    let output = outcome.map_err(|panic| {
        metrics.add("pipeline_jobs_panicked", 1);
        shared.sink.add("pipeline_jobs_panicked", 1);
        JobPanic {
            message: panic_message(panic.as_ref()),
        }
    });
    if !shared.deliver_completions {
        // Detached mode: the job routed its own result; the channel stays
        // untouched so an undrained pool can never wedge the workers.
        return true;
    }
    shared
        .completions
        .send(JobResult {
            job_id: id,
            worker: me,
            admission,
            queue_wait,
            run_time,
            output,
        })
        .is_ok()
}

/// Flattens a panic payload to a message. `panic!("…")` produces `&str`
/// or `String`; anything else gets a placeholder.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Saturating nanosecond conversion for histogram recording.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_trace::{CollectingSink, NullSink};

    fn null_sink() -> Arc<dyn TraceSink> {
        Arc::new(NullSink)
    }

    /// Submits `count` squaring jobs and collects every result, plus the
    /// id → payload map of the successful submissions. Ids burnt by
    /// `QueueFull` retries leave gaps, so the map — not contiguity — is
    /// the ground truth.
    fn run_squares(
        workers: usize,
        count: u64,
    ) -> (Vec<JobResult<u64>>, std::collections::BTreeMap<u64, u64>) {
        let pool = Pool::new(
            PoolConfig::with_workers(workers),
            |x: u64, _| x * x,
            null_sink(),
        )
        .expect("valid config");
        let mut results = Vec::new();
        let mut submitted = std::collections::BTreeMap::new();
        for x in 0..count {
            loop {
                match pool.try_submit(x) {
                    Ok(id) => {
                        submitted.insert(id, x);
                        break;
                    }
                    Err(TrySubmitError::QueueFull(_)) => {
                        results.extend(pool.recv_result());
                    }
                    Err(e) => panic!("unexpected submit failure: {e:?}"),
                }
            }
        }
        while results.len() < usize::try_from(count).expect("small count") {
            results.extend(pool.recv_result());
        }
        let report = pool.shutdown();
        assert!(report.unclaimed.is_empty(), "all results already drained");
        assert_eq!(report.worker_panics, 0);
        (results, submitted)
    }

    #[test]
    fn every_job_completes_exactly_once() {
        for workers in [1, 2, 4] {
            let (mut results, submitted) = run_squares(workers, 100);
            results.sort_by_key(|r| r.job_id);
            // Exactly the successful submissions completed — no job lost,
            // none duplicated — and ids are monotone in submission order.
            let ids: Vec<u64> = results.iter().map(|r| r.job_id).collect();
            let expected: Vec<u64> = submitted.keys().copied().collect();
            assert_eq!(ids, expected, "workers={workers}");
            let mut payloads: Vec<u64> = submitted.values().copied().collect();
            payloads.sort_unstable();
            assert_eq!(payloads, (0..100).collect::<Vec<_>>(), "workers={workers}");
            for r in &results {
                let x = submitted[&r.job_id];
                assert_eq!(r.output.as_ref().copied().expect("no panics"), x * x);
                assert!(r.worker < workers);
            }
        }
    }

    #[test]
    fn zero_workers_is_rejected() {
        let result: Result<Pool<u64, u64>, PoolError> =
            Pool::new(PoolConfig::with_workers(0), |x, _| x, null_sink());
        assert_eq!(result.err(), Some(PoolError::ZeroWorkers));
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = Pool::new(
            PoolConfig::with_workers(2),
            |x: u64, _| {
                assert!(x != 13, "unlucky payload");
                x + 1
            },
            null_sink(),
        )
        .expect("valid config");
        for x in [13u64, 1, 2, 3] {
            pool.submit(x).expect("open pool");
        }
        let mut results: Vec<JobResult<u64>> = Vec::new();
        while results.len() < 4 {
            results.extend(pool.recv_result());
        }
        let report = pool.shutdown();
        results.sort_by_key(|r| r.job_id);
        let panicked = &results[0];
        assert!(matches!(&panicked.output, Err(p) if p.message.contains("unlucky")));
        // The pool survived: the other three ran normally.
        assert!(results[1..].iter().all(|r| r.output.is_ok()));
        assert_eq!(
            report.metrics.counters.get("pipeline_jobs_panicked"),
            Some(&1)
        );
        assert_eq!(report.metrics.counters.get("pipeline_jobs_run"), Some(&4));
    }

    #[test]
    fn shutdown_returns_unclaimed_results() {
        let pool = Pool::new(
            PoolConfig::with_workers(2).with_queue_capacity(64),
            |x: u64, _| x,
            null_sink(),
        )
        .expect("valid config");
        for x in 0..20u64 {
            pool.submit(x).expect("open pool");
        }
        // Shut down without draining anything: nothing may be lost.
        let report = pool.shutdown();
        let mut ids: Vec<u64> = report.unclaimed.iter().map(|r| r.job_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn drop_mode_sheds_and_reports() {
        let sink = Arc::new(CollectingSink::new());
        // One worker parked on jobs that wait for a channel we control.
        let gate: Arc<Bounded<()>> = Arc::new(Bounded::new(64));
        let pool = {
            let gate = Arc::clone(&gate);
            Pool::new(
                PoolConfig::with_workers(1)
                    .with_queue_capacity(4)
                    .with_shed(ShedPolicy {
                        watermark: 2,
                        sustained: Duration::ZERO,
                        mode: ShedMode::Drop,
                    }),
                move |x: u64, _| {
                    gate.recv();
                    x
                },
                Arc::clone(&sink) as Arc<dyn TraceSink>,
            )
            .expect("valid config")
        };
        // Fill past the watermark; with a zero sustain window the next
        // submission must shed.
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for x in 0..8u64 {
            match pool.try_submit(x) {
                Ok(_) => admitted += 1,
                Err(TrySubmitError::Shed {
                    watermark, depth, ..
                }) => {
                    shed += 1;
                    assert_eq!(watermark, 2);
                    assert!(depth >= 2);
                }
                Err(TrySubmitError::QueueFull(_)) => break,
                Err(e) => panic!("unexpected: {e:?}"),
            }
        }
        assert!(shed > 0, "sustained saturation must shed");
        assert_eq!(sink.registry().counter("pipeline_jobs_shed"), shed);
        assert!(
            sink.events().iter().any(
                |e| matches!(e, TraceEvent::Degradation { limit, .. } if limit == "queue-depth")
            ),
            "shed must reach the audit trail: {:?}",
            sink.events()
        );
        // Release the workers and verify the admitted jobs all complete.
        for _ in 0..admitted {
            gate.send(()).expect("gate open");
        }
        let mut got = 0;
        while got < admitted {
            if pool.recv_result().is_some() {
                got += 1;
            }
        }
        gate.close();
        let report = pool.shutdown();
        assert!(report.unclaimed.is_empty());
    }

    #[test]
    fn strict_mode_admits_with_strict_admission() {
        let sink = Arc::new(CollectingSink::new());
        let gate: Arc<Bounded<()>> = Arc::new(Bounded::new(64));
        let pool = {
            let gate = Arc::clone(&gate);
            Pool::new(
                PoolConfig::with_workers(1)
                    .with_queue_capacity(8)
                    .with_shed(ShedPolicy {
                        watermark: 2,
                        sustained: Duration::ZERO,
                        mode: ShedMode::Strict,
                    }),
                move |x: u64, admission| {
                    gate.recv();
                    match admission {
                        Admission::Normal => x,
                        Admission::Strict { .. } => x + 1_000,
                    }
                },
                Arc::clone(&sink) as Arc<dyn TraceSink>,
            )
            .expect("valid config")
        };
        for x in 0..6u64 {
            pool.submit(x).expect("strict mode never drops");
        }
        for _ in 0..6 {
            gate.send(()).expect("gate open");
        }
        let mut results: Vec<JobResult<u64>> = Vec::new();
        while results.len() < 6 {
            results.extend(pool.recv_result());
        }
        gate.close();
        pool.shutdown();
        results.sort_by_key(|r| r.job_id);
        let strict: Vec<&JobResult<u64>> = results
            .iter()
            .filter(|r| matches!(r.admission, Admission::Strict { .. }))
            .collect();
        assert!(!strict.is_empty(), "saturation must flag strict admissions");
        // The runner observed the same admission the result reports.
        for r in &results {
            let expected = match r.admission {
                Admission::Normal => r.job_id,
                Admission::Strict { .. } => r.job_id + 1_000,
            };
            assert_eq!(r.output.as_ref().copied().expect("no panics"), expected);
        }
        assert_eq!(
            sink.registry().counter("pipeline_jobs_strict"),
            strict.len() as u64
        );
    }

    #[test]
    fn saturation_below_sustain_window_does_not_shed() {
        let pool = Pool::new(
            PoolConfig::with_workers(1)
                .with_queue_capacity(4)
                .with_shed(ShedPolicy {
                    watermark: 1,
                    sustained: Duration::from_secs(3600),
                    mode: ShedMode::Drop,
                }),
            |x: u64, _| x,
            null_sink(),
        )
        .expect("valid config");
        // The queue crosses the watermark instantly, but the sustain
        // window is an hour: every submission must be admitted.
        for x in 0..4u64 {
            pool.submit(x).expect("no shedding inside the window");
        }
        let mut results = Vec::new();
        while results.len() < 4 {
            results.extend(pool.recv_result());
        }
        pool.shutdown();
    }

    #[test]
    fn detached_pool_runs_jobs_without_completions() {
        use std::sync::atomic::AtomicU64;
        let ran = Arc::new(AtomicU64::new(0));
        let pool = {
            let ran = Arc::clone(&ran);
            Pool::new(
                PoolConfig::with_workers(2)
                    .with_queue_capacity(8)
                    .detached(),
                move |x: u64, _| {
                    ran.fetch_add(x, Ordering::SeqCst);
                },
                null_sink(),
            )
            .expect("valid config")
        };
        // Far more jobs than the completion channel could hold: in
        // delivering mode an undrained submitter would wedge here; in
        // detached mode every job must run to completion regardless.
        for x in 0..100u64 {
            pool.submit(x).expect("open pool");
        }
        let report = pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), (0..100).sum::<u64>());
        assert!(report.unclaimed.is_empty(), "detached mode sends nothing");
        assert_eq!(report.metrics.counters.get("pipeline_jobs_run"), Some(&100));
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn detached_pool_still_counts_panics() {
        let pool = Pool::new(
            PoolConfig::with_workers(1).detached(),
            |x: u64, _| assert!(x != 7, "bad payload"),
            null_sink(),
        )
        .expect("valid config");
        for x in [7u64, 1, 2] {
            pool.submit(x).expect("open pool");
        }
        let report = pool.shutdown();
        assert_eq!(report.metrics.counters.get("pipeline_jobs_run"), Some(&3));
        assert_eq!(
            report.metrics.counters.get("pipeline_jobs_panicked"),
            Some(&1)
        );
        assert_eq!(report.worker_panics, 0, "job panics are caught, not fatal");
    }

    #[test]
    fn shutdown_within_abandons_a_wedged_worker() {
        let gate: Arc<Bounded<()>> = Arc::new(Bounded::new(4));
        let pool = {
            let gate = Arc::clone(&gate);
            Pool::new(
                PoolConfig::with_workers(1).detached(),
                move |_: u64, _| {
                    gate.recv();
                },
                null_sink(),
            )
            .expect("valid config")
        };
        pool.submit(0).expect("open pool");
        // The single worker is parked inside the job waiting on the gate;
        // the drain deadline must expire and abandon it rather than hang.
        let started = Instant::now();
        let report = pool.shutdown_within(Duration::from_millis(50));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain deadline must bound shutdown"
        );
        assert_eq!(report.abandoned, 1);
        // Release the detached thread so it exits cleanly in background.
        gate.close();
    }

    #[test]
    fn shutdown_within_reports_zero_abandoned_when_workers_finish() {
        let pool = Pool::new(PoolConfig::with_workers(2), |x: u64, _| x, null_sink())
            .expect("valid config");
        for x in 0..10u64 {
            pool.submit(x).expect("open pool");
        }
        let report = pool.shutdown_within(Duration::from_secs(30));
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.unclaimed.len(), 10);
    }

    #[test]
    fn metrics_cover_every_job() {
        let (results, _) = run_squares(4, 50);
        assert_eq!(results.len(), 50);
        // This submitter never drains, so the completion channel (sized
        // from the queue capacity) must have room for the whole batch —
        // otherwise the bounded completions exert backpressure right back
        // through the workers and `submit` blocks forever, by design.
        let pool = Pool::new(
            PoolConfig::with_workers(4).with_queue_capacity(64),
            |x: u64, _| x,
            null_sink(),
        )
        .expect("valid config");
        for x in 0..50u64 {
            pool.submit(x).expect("open pool");
        }
        let report = pool.shutdown();
        assert_eq!(report.metrics.counters.get("pipeline_jobs_run"), Some(&50));
        let wait = report
            .metrics
            .histograms
            .get("pipeline_queue_wait")
            .expect("queue-wait histogram");
        assert_eq!(wait.count, 50);
        let run = report
            .metrics
            .histograms
            .get("pipeline_run_time")
            .expect("run-time histogram");
        assert_eq!(run.count, 50);
    }
}
