//! A bounded multi-producer multi-consumer channel built from one `Mutex`
//! and two `Condvar`s — the only synchronization primitives the standard
//! library offers that compose into a capacity-bounded queue without
//! external crates.
//!
//! Why not `std::sync::mpsc`? Two reasons, both structural:
//!
//! 1. `mpsc` is single-consumer: a worker pool needs every worker pulling
//!    from the same injector, which forces an `Arc<Mutex<Receiver>>` wrapper
//!    whose lock serializes exactly the path that should scale.
//! 2. `mpsc::channel()` is unbounded — an overload does not push back, it
//!    allocates until the process dies. This crate's whole premise is that
//!    capacity is a first-class, visible limit (the `concurrency` rule in
//!    `rbd-lint` denies unbounded channel constructs for the same reason).
//!
//! The design is the textbook monitor: producers wait on `not_full`,
//! consumers wait on `not_empty`, and every state transition notifies the
//! waiters it could have unblocked. Closing is sticky and drains cleanly —
//! `recv` keeps returning queued items after `close()` and reports
//! disconnection only once the queue is empty, so no accepted item is ever
//! lost to a shutdown race.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The queue and the closed flag, guarded together so "closed" and "empty"
/// are always observed consistently.
#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC channel. All methods take `&self`; share it via `Arc`.
#[derive(Debug)]
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    /// Signalled when space frees up (a `recv`) or the channel closes.
    not_full: Condvar,
    /// Signalled when an item arrives (a `send`) or the channel closes.
    not_empty: Condvar,
    capacity: usize,
}

/// Why a non-blocking send did not take the value. The value comes back to
/// the caller either way — nothing is dropped silently.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; backpressure applies.
    Full(T),
    /// The channel was closed; no further sends can ever succeed.
    Closed(T),
}

/// Outcome of a bounded-wait receive.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// An item arrived (or was already queued).
    Item(T),
    /// The wait expired with the queue still empty but the channel open.
    TimedOut,
    /// The channel is closed *and* drained: no item will ever arrive.
    Disconnected,
}

impl<T> Bounded<T> {
    /// Creates a channel holding at most `capacity` items. A zero capacity
    /// is rounded up to one: a channel that can never accept an item is a
    /// deadlock generator, not a rendezvous primitive.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Bounded {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued. A snapshot — stale the moment it returns —
    /// but exact at the instant it was taken, which is all the shedding
    /// watermark needs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// `true` when no items are queued (same snapshot caveat as `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().queue.is_empty()
    }

    /// `true` once `close` has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Blocks until the value is queued, returning it back on a closed
    /// channel. This is the backpressure path: a full channel makes the
    /// producer wait, it never makes the queue grow.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(value);
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(value);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Queues the value only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TrySendError::Closed(value));
        }
        if state.queue.len() >= self.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item arrives; `None` means closed and fully
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(value);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes an item only if one is queued right now. `None` is ambiguous
    /// between "empty" and "closed" by design — pool workers that need the
    /// distinction use [`Bounded::recv_timeout`].
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.lock();
        let value = state.queue.pop_front();
        drop(state);
        if value.is_some() {
            self.not_full.notify_one();
        }
        value
    }

    /// Takes up to `max` items in one lock acquisition — the batch-refill
    /// path workers use to amortize lock traffic when moving injector work
    /// into their local deques.
    pub fn try_recv_batch(&self, max: usize) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut state = self.lock();
        let take = state.queue.len().min(max);
        let grabbed: Vec<T> = state.queue.drain(..take).collect();
        drop(state);
        if !grabbed.is_empty() {
            // Potentially freed several slots: wake every blocked producer.
            self.not_full.notify_all();
        }
        grabbed
    }

    /// Waits at most `timeout` for an item. Idle pool workers use this as
    /// their poll tick so they periodically revisit their siblings' deques
    /// for stealable work instead of parking forever on the injector.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let mut state = self.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return RecvTimeout::Item(value);
            }
            if state.closed {
                return RecvTimeout::Disconnected;
            }
            let (next, wait) = self
                .not_empty
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if wait.timed_out() {
                // One last look under the lock, then report the timeout.
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.not_full.notify_one();
                    return RecvTimeout::Item(value);
                }
                return if state.closed {
                    RecvTimeout::Disconnected
                } else {
                    RecvTimeout::TimedOut
                };
            }
        }
    }

    /// Closes the channel: future sends fail, queued items remain
    /// receivable, and every blocked sender and receiver wakes up to
    /// observe the new state.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Locks the state, recovering from poisoning: the invariants here are
    /// maintained entirely by this module (no user code runs under the
    /// lock), so a poisoned mutex only means some *other* thread panicked
    /// between its lock and unlock of a structurally consistent queue.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let ch = Bounded::new(4);
        for i in 0..4 {
            ch.send(i).expect("open channel");
        }
        assert_eq!(ch.len(), 4);
        assert_eq!(
            (ch.recv(), ch.recv(), ch.recv(), ch.recv()),
            (Some(0), Some(1), Some(2), Some(3))
        );
        assert!(ch.is_empty());
    }

    #[test]
    fn try_send_reports_full_then_closed() {
        let ch = Bounded::new(1);
        ch.try_send(1).expect("room for one");
        assert_eq!(ch.try_send(2), Err(TrySendError::Full(2)));
        ch.close();
        assert_eq!(ch.try_send(3), Err(TrySendError::Closed(3)));
        // The queued item survives the close.
        assert_eq!(ch.try_recv(), Some(1));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn zero_capacity_rounds_up_to_one() {
        let ch = Bounded::new(0);
        assert_eq!(ch.capacity(), 1);
        ch.send(7).expect("capacity one, not zero");
        assert_eq!(ch.recv(), Some(7));
    }

    #[test]
    fn close_drains_cleanly() {
        let ch = Bounded::new(8);
        ch.send("a").expect("open");
        ch.send("b").expect("open");
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(ch.send("c"), Err("c"));
        assert_eq!(ch.recv(), Some("a"));
        assert_eq!(ch.recv(), Some("b"));
        assert_eq!(ch.recv(), None, "closed and drained");
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_closed() {
        let ch: Bounded<u32> = Bounded::new(1);
        assert_eq!(
            ch.recv_timeout(Duration::from_millis(1)),
            RecvTimeout::TimedOut
        );
        ch.send(9).expect("open");
        assert_eq!(
            ch.recv_timeout(Duration::from_millis(1)),
            RecvTimeout::Item(9)
        );
        ch.close();
        assert_eq!(
            ch.recv_timeout(Duration::from_millis(1)),
            RecvTimeout::Disconnected
        );
    }

    #[test]
    fn try_recv_batch_amortizes_and_wakes_producers() {
        let ch = Bounded::new(4);
        for i in 0..4 {
            ch.send(i).expect("open");
        }
        assert_eq!(ch.try_recv_batch(3), vec![0, 1, 2]);
        assert_eq!(ch.try_recv_batch(3), vec![3]);
        assert_eq!(ch.try_recv_batch(3), Vec::<i32>::new());
        assert_eq!(ch.try_recv_batch(0), Vec::<i32>::new());
    }

    #[test]
    fn blocked_sender_unblocks_on_recv() {
        let ch = Arc::new(Bounded::new(1));
        ch.send(1).expect("open");
        let producer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || ch.send(2))
        };
        // The producer is (about to be) parked on not_full; receiving must
        // wake it.
        assert_eq!(ch.recv(), Some(1));
        producer.join().expect("no panic").expect("send succeeded");
        assert_eq!(ch.recv(), Some(2));
    }

    #[test]
    fn blocked_receiver_unblocks_on_close() {
        let ch: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || ch.recv())
        };
        ch.close();
        assert_eq!(consumer.join().expect("no panic"), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 250;
        let ch: Arc<Bounded<u64>> = Arc::new(Bounded::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ch = Arc::clone(&ch);
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    ch.send(p * PER_PRODUCER + i).expect("open");
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = ch.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        ch.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected, "every sent item received exactly once");
    }
}
