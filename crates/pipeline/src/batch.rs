//! Batch extraction: a corpus of documents through one pool, out in
//! deterministic order.
//!
//! [`run_batch`] owns the whole lifecycle: it builds a [`Pool`] whose
//! runner is one governed extraction per document (the extractor's
//! [`Limits`] deadline still applies to each document individually),
//! pumps documents in with `try_submit`, absorbs backpressure by draining
//! one completion whenever the queue is full, and finally sorts the
//! results by document id — so a 4-worker run and a serial sweep produce
//! byte-identical output for the same inputs.
//!
//! The submission pump is single-threaded on purpose. Because the
//! submitter alternates between a non-blocking submit and a blocking
//! completion receive, it can never hold both channels full at once,
//! which is the classic bounded-queue-pair deadlock; the alternation is
//! the proof that every admitted document's completion is eventually
//! received.

use crate::pool::{Admission, JobResult, Pool, PoolConfig, PoolError, ShedPolicy, TrySubmitError};
use rbd_core::limits::{DegradationEvent, DegradationStage, LimitExceeded, Limits};
use rbd_core::{DiscoveryError, Extraction, RecordExtractor};
use rbd_limits::LimitKind;
use rbd_trace::{RegistrySnapshot, TraceSink};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Batch-run sizing: worker count, queue depth, shedding.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads (the CLI's `--jobs`). Zero is rejected by
    /// [`run_batch`] just as [`Pool::new`] rejects it.
    pub jobs: usize,
    /// Injector capacity; defaults to `2 × jobs`.
    pub queue_capacity: usize,
    /// Optional load-shedding policy for the run.
    pub shed: Option<ShedPolicy>,
}

impl BatchConfig {
    /// A config with `jobs` workers, a `2 × jobs` queue, and no shedding.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        BatchConfig {
            jobs,
            queue_capacity: jobs.saturating_mul(2).max(1),
            shed: None,
        }
    }

    /// Installs a load-shedding policy.
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }
}

/// Why one document produced no extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The extractor ran and failed (the same errors a serial run yields).
    Discovery(DiscoveryError),
    /// The shedding policy dropped the document before it ran.
    Shed {
        /// The policy's saturation watermark.
        watermark: usize,
        /// Injector depth observed at submission.
        depth: usize,
    },
    /// The extraction panicked; the pool caught it and the batch carried
    /// on.
    Panicked(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Discovery(e) => write!(f, "{e}"),
            BatchError::Shed { watermark, depth } => write!(
                f,
                "shed by the batch pipeline: queue depth {depth} over watermark {watermark}"
            ),
            BatchError::Panicked(msg) => write!(f, "extraction panicked: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// One document's outcome within a batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The caller-assigned document id (the sort key of the batch).
    pub doc_id: u64,
    /// Which worker ran the document; `None` when it was shed unrun.
    pub worker: Option<usize>,
    /// Time the document waited in the queue (zero when shed).
    pub queue_wait: Duration,
    /// Time the extraction took (zero when shed).
    pub run_time: Duration,
    /// The extraction, or why there is none.
    pub outcome: Result<Extraction, BatchError>,
}

/// A finished batch: per-document results sorted by `doc_id`, plus the
/// merged worker metrics.
#[derive(Debug)]
pub struct BatchReport {
    /// One entry per input document, ascending `doc_id`.
    pub results: Vec<BatchResult>,
    /// Merged per-worker registries: `pipeline_jobs_run`,
    /// `pipeline_steals`, `pipeline_queue_wait` / `pipeline_run_time`
    /// histograms, and so on.
    pub metrics: RegistrySnapshot,
    /// Documents dropped by the shedding policy.
    pub shed: usize,
    /// Documents run under strict limits by the shedding policy.
    pub strict: usize,
}

impl BatchReport {
    /// Documents that produced an extraction.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_ok()).count()
    }
}

/// Runs every document through a fresh pool of `config.jobs` workers and
/// returns the results sorted by `doc_id`.
///
/// `extractor` is cloned per pool (its configuration, ontology rules, and
/// limits travel with it); a second clone reconfigured with
/// [`Limits::strict`] serves documents admitted under
/// [`Admission::Strict`], and each such document carries a
/// [`DegradationStage::Pipeline`] event in its extraction report.
/// `sink` observes the run: submission/shed counters and shed degradation
/// events from the pool, and the full per-document audit trail whenever
/// the sink is enabled.
pub fn run_batch(
    extractor: &RecordExtractor,
    docs: Vec<(u64, String)>,
    config: &BatchConfig,
    sink: &Arc<dyn TraceSink>,
) -> Result<BatchReport, PoolError> {
    let total = docs.len();
    let strict_extractor =
        RecordExtractor::new(extractor.config().clone().with_limits(Limits::strict()))
            .map_err(|e| PoolError::Spawn(format!("strict-limits profile failed to build: {e}")))?;

    let runner = {
        let normal = extractor.clone();
        let sink = Arc::clone(sink);
        move |(doc_id, html): (u64, String), admission: Admission| {
            // Each document is one trace: a fresh id plus a root span,
            // stamped onto every stage span the extraction records, so a
            // `--trace` dump separates into per-document span trees. The
            // disabled path (metrics-only batch runs) skips all of it.
            let (scoped, root) = if sink.enabled() {
                let trace = rbd_trace::TraceId::generate();
                let root = rbd_trace::Span::start("batch:doc").with_context(trace, None);
                (
                    Some(rbd_trace::ScopedSink::new(
                        sink.as_ref(),
                        trace,
                        Some(root.id()),
                    )),
                    Some(root),
                )
            } else {
                (None, None)
            };
            let doc_sink: &dyn TraceSink = match &scoped {
                Some(s) => s,
                None => sink.as_ref(),
            };
            let result = match admission {
                Admission::Normal => normal.extract_records_traced(&html, doc_sink),
                Admission::Strict { watermark, depth } => strict_extractor
                    .extract_records_traced(&html, doc_sink)
                    .map(|mut extraction| {
                        // The pool already put this shed on the sink's
                        // audit trail at admission time; the per-document
                        // report gets its copy here so a strict-limited
                        // result is self-describing.
                        let event = DegradationEvent {
                            stage: DegradationStage::Pipeline,
                            cause: LimitExceeded {
                                limit: LimitKind::QueueDepth,
                                cap: watermark,
                                observed: depth,
                            },
                        };
                        extraction.degradation.push(event);
                        extraction.outcome.degradation.push(event);
                        extraction
                    }),
            };
            if let Some(root) = root {
                root.finish(sink.as_ref());
            }
            (doc_id, result)
        }
    };

    let pool_config = PoolConfig {
        queue_capacity: config.queue_capacity,
        shed: config.shed,
        ..PoolConfig::with_workers(config.jobs)
    };
    let pool = Pool::new(pool_config, runner, Arc::clone(sink))?;

    let mut doc_of_job: BTreeMap<u64, u64> = BTreeMap::new();
    let mut results: Vec<BatchResult> = Vec::with_capacity(total);
    let mut shed = 0usize;
    let mut strict = 0usize;

    for mut doc in docs {
        loop {
            let doc_id = doc.0;
            match pool.try_submit(doc) {
                Ok(job_id) => {
                    doc_of_job.insert(job_id, doc_id);
                    break;
                }
                Err(TrySubmitError::QueueFull(returned)) => {
                    // Backpressure: free a queue slot by consuming one
                    // completion, then retry the same document.
                    doc = returned;
                    if let Some(done) = pool.recv_result() {
                        results.push(convert(&doc_of_job, done, &mut strict));
                    }
                }
                Err(TrySubmitError::Shed {
                    job,
                    watermark,
                    depth,
                }) => {
                    shed += 1;
                    results.push(BatchResult {
                        doc_id: job.0,
                        worker: None,
                        queue_wait: Duration::ZERO,
                        run_time: Duration::ZERO,
                        outcome: Err(BatchError::Shed { watermark, depth }),
                    });
                    break;
                }
                Err(TrySubmitError::Closed(job)) => {
                    // Unreachable while we own the pool, but never drop a
                    // document silently.
                    results.push(BatchResult {
                        doc_id: job.0,
                        worker: None,
                        queue_wait: Duration::ZERO,
                        run_time: Duration::ZERO,
                        outcome: Err(BatchError::Panicked(
                            "pool closed during submission".to_owned(),
                        )),
                    });
                    break;
                }
            }
        }
    }

    // Drain: one result per input document, then a clean shutdown.
    while results.len() < total {
        match pool.recv_result() {
            Some(done) => results.push(convert(&doc_of_job, done, &mut strict)),
            None => break,
        }
    }
    let shutdown = pool.shutdown();
    for done in shutdown.unclaimed {
        results.push(convert(&doc_of_job, done, &mut strict));
    }

    results.sort_by_key(|r| r.doc_id);
    Ok(BatchReport {
        results,
        metrics: shutdown.metrics,
        shed,
        strict,
    })
}

/// Maps a pool completion back to its document.
fn convert(
    doc_of_job: &BTreeMap<u64, u64>,
    done: JobResult<(u64, Result<Extraction, DiscoveryError>)>,
    strict: &mut usize,
) -> BatchResult {
    if matches!(done.admission, Admission::Strict { .. }) {
        *strict += 1;
    }
    let (doc_id, outcome) = match done.output {
        Ok((doc_id, Ok(extraction))) => (doc_id, Ok(extraction)),
        Ok((doc_id, Err(e))) => (doc_id, Err(BatchError::Discovery(e))),
        Err(panic) => (
            // The payload died with the panic; the submission-time map
            // still knows which document this job was.
            doc_of_job.get(&done.job_id).copied().unwrap_or(u64::MAX),
            Err(BatchError::Panicked(panic.message)),
        ),
    };
    BatchResult {
        doc_id,
        worker: Some(done.worker),
        queue_wait: done.queue_wait,
        run_time: done.run_time,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_trace::NullSink;

    fn doc(records: usize, seed: usize) -> String {
        let mut d = String::from("<html><body><table><tr><td><h1>List</h1><hr>");
        for i in 0..records {
            d.push_str(&format!(
                "<b>Entry {i}-{seed}</b><br> body text for entry {i} of seed {seed}, \
                 long enough to look like a record.<br><hr>"
            ));
        }
        d.push_str("</td></tr></table></body></html>");
        d
    }

    fn corpus(n: u64) -> Vec<(u64, String)> {
        (0..n)
            .map(|i| {
                let seed = usize::try_from(i).expect("small corpus");
                let body = match i % 7 {
                    // A couple of degenerate documents so error paths run.
                    3 => String::new(),
                    5 => "plain text, no tags".to_owned(),
                    _ => doc(3 + (seed % 4), seed),
                };
                (i, body)
            })
            .collect()
    }

    fn sink() -> Arc<dyn TraceSink> {
        Arc::new(NullSink)
    }

    #[test]
    fn zero_jobs_is_rejected() {
        let ex = RecordExtractor::default();
        let err = run_batch(&ex, corpus(4), &BatchConfig::with_jobs(0), &sink());
        assert!(matches!(err, Err(PoolError::ZeroWorkers)));
    }

    #[test]
    fn batch_matches_serial_sweep() {
        let ex = RecordExtractor::default();
        let docs = corpus(40);
        let serial: Vec<(u64, Result<Extraction, DiscoveryError>)> = docs
            .iter()
            .map(|(id, html)| (*id, ex.extract_records(html)))
            .collect();
        let report =
            run_batch(&ex, docs, &BatchConfig::with_jobs(4), &sink()).expect("valid config");
        assert_eq!(report.results.len(), serial.len());
        assert_eq!(report.shed, 0);
        for (got, (want_id, want)) in report.results.iter().zip(&serial) {
            assert_eq!(got.doc_id, *want_id, "sorted by doc_id");
            match (&got.outcome, want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.outcome.separator, w.outcome.separator);
                    assert_eq!(g.records.len(), w.records.len());
                    assert_eq!(
                        g.records.iter().map(|r| &r.text).collect::<Vec<_>>(),
                        w.records.iter().map(|r| &r.text).collect::<Vec<_>>()
                    );
                }
                (Err(BatchError::Discovery(g)), Err(w)) => assert_eq!(g, w),
                (got, want) => panic!("doc {want_id}: batch {got:?} vs serial {want:?}"),
            }
        }
        assert_eq!(
            report.metrics.counters.get("pipeline_jobs_run"),
            Some(&40),
            "{:?}",
            report.metrics.counters
        );
    }

    #[test]
    fn single_worker_batch_still_sorted_and_complete() {
        let ex = RecordExtractor::default();
        let report =
            run_batch(&ex, corpus(10), &BatchConfig::with_jobs(1), &sink()).expect("valid config");
        let ids: Vec<u64> = report.results.iter().map(|r| r.doc_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert!(report.succeeded() > 0);
    }

    #[test]
    fn traced_batch_yields_one_span_tree_per_document() {
        let ex = RecordExtractor::default();
        let collecting = Arc::new(rbd_trace::CollectingSink::new());
        let audit: Arc<dyn TraceSink> = Arc::clone(&collecting) as Arc<dyn TraceSink>;
        let n = 6u64;
        run_batch(&ex, corpus(n), &BatchConfig::with_jobs(2), &audit).expect("valid config");

        let spans = collecting.spans();
        let roots: Vec<_> = spans.iter().filter(|s| s.name == "batch:doc").collect();
        assert_eq!(
            roots.len(),
            usize::try_from(n).expect("small"),
            "one root per document"
        );

        let mut traces: Vec<_> = roots.iter().map(|r| r.trace).collect();
        traces.sort();
        traces.dedup();
        assert_eq!(traces.len(), roots.len(), "distinct trace per document");

        // Every stage span is stamped with some root's trace and parented
        // under that root.
        for span in spans.iter().filter(|s| s.name != "batch:doc") {
            assert!(span.trace.is_set(), "unstamped span {span:?}");
            let root = roots
                .iter()
                .find(|r| r.trace == span.trace)
                .unwrap_or_else(|| panic!("span {span:?} belongs to no document root"));
            assert_eq!(span.parent, Some(root.span), "span {span:?}");
        }
        // The non-degenerate documents exercise the full pipeline.
        assert!(spans.iter().any(|s| s.name == "tokenize"));
        assert!(spans.iter().any(|s| s.name == "tree_build"));
    }
}
