//! Algebraic properties of Stanford certainty combination and structural
//! invariants of the compound heuristic.

use rbd_certainty::{CertaintyFactor, CertaintyTable, CompoundHeuristic, HeuristicSet};
use rbd_heuristics::{HeuristicKind, Ranking};
use rbd_prop::{check, gen, prop_assert, prop_assert_eq, Gen};

fn cf() -> Gen<CertaintyFactor> {
    // Mostly uniform over [0, 1), with the exact endpoints mixed in so the
    // boundary algebra (identity at 0, absorption at 1) is exercised.
    Gen::weighted(vec![
        (8, gen::f64_in(0.0, 1.0).map(CertaintyFactor::new)),
        (1, Gen::just(CertaintyFactor::new(0.0))),
        (1, Gen::just(CertaintyFactor::new(1.0))),
    ])
}

/// Combination is commutative and (numerically) associative, stays in
/// [0, 1], and never decreases either operand — more agreeing evidence
/// can only increase certainty.
#[test]
fn combine_laws() {
    let triple = gen::zip3(cf(), cf(), cf());
    check("combine_laws", &triple, |&(a, b, c)| {
        let ab = a.combine(b);
        prop_assert!((0.0..=1.0).contains(&ab.value()));
        prop_assert!(ab.value() >= a.value() - 1e-12);
        prop_assert!(ab.value() >= b.value() - 1e-12);
        prop_assert!((ab.value() - b.combine(a).value()).abs() < 1e-12);
        let left = a.combine(b).combine(c).value();
        let right = a.combine(b.combine(c)).value();
        prop_assert!((left - right).abs() < 1e-9);
        Ok(())
    });
}

/// Folding in any order gives the same result.
#[test]
fn combine_all_order_independent() {
    let xs = Gen::vec(cf(), 0..=5);
    check("combine_all_order_independent", &xs, |xs| {
        let forward = CertaintyFactor::combine_all(xs.clone()).value();
        let mut rev = xs.clone();
        rev.reverse();
        let backward = CertaintyFactor::combine_all(rev).value();
        prop_assert!((forward - backward).abs() < 1e-9);
        Ok(())
    });
}

/// Random rankings over a small tag universe.
fn arb_rankings() -> Gen<Vec<Ranking>> {
    let tags = Gen::subsequence(vec!["hr", "b", "br", "p", "td"], 1..=4);
    let spec = gen::int_in(0usize..5).zip(tags);
    Gen::vec(spec, 1..=4).map(|specs| {
        specs
            .into_iter()
            .map(|(kind_idx, tags)| {
                let kind = HeuristicKind::ALL[kind_idx];
                Ranking::from_order(kind, tags.into_iter().map(String::from).collect())
            })
            .collect()
    })
}

/// Compound scores are sorted descending, winners equal the leading tie
/// set, and every scored tag appeared in some selected ranking.
#[test]
fn consensus_structure() {
    check("consensus_structure", &arb_rankings(), |rankings| {
        let compound = CompoundHeuristic::paper_orsih();
        let consensus = compound.combine(rankings);
        for w in consensus.scored.windows(2) {
            prop_assert!(w[0].certainty >= w[1].certainty);
        }
        if let Some(top) = consensus.scored.first() {
            let ties: Vec<&str> = consensus
                .scored
                .iter()
                .take_while(|s| s.certainty == top.certainty)
                .map(|s| s.tag.as_str())
                .collect();
            prop_assert_eq!(
                ties,
                consensus
                    .winners
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
            );
        } else {
            prop_assert!(consensus.winners.is_empty());
        }
        for s in &consensus.scored {
            prop_assert!(
                rankings.iter().any(|r| r.rank_of(&s.tag).is_some()),
                "tag {} appeared from nowhere",
                s.tag
            );
        }
        Ok(())
    });
}

/// Growing the heuristic subset never lowers any tag's certainty
/// (evidence is non-negative).
#[test]
fn more_heuristics_never_hurt_a_tag() {
    check(
        "more_heuristics_never_hurt_a_tag",
        &arb_rankings(),
        |rankings| {
            let small =
                CompoundHeuristic::new("SI".parse().unwrap(), CertaintyTable::paper_table4());
            let big = CompoundHeuristic::new(HeuristicSet::ORSIH, CertaintyTable::paper_table4());
            let small_scores = small.combine(rankings);
            let big_scores = big.combine(rankings);
            for s in &small_scores.scored {
                if let Some(b) = big_scores.scored.iter().find(|b| b.tag == s.tag) {
                    prop_assert!(b.certainty.value() >= s.certainty.value() - 1e-12);
                }
            }
            Ok(())
        },
    );
}
