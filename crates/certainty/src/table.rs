//! Per-heuristic, per-rank certainty-factor tables (the paper's Table 4).

use crate::factor::CertaintyFactor;
use rbd_heuristics::HeuristicKind;
use std::fmt;

/// How many ranks carry certainty mass. In the paper's calibration, "a
/// correct record separator was always among the four highest ranked
/// choices", so Table 4 has four columns; ranks beyond contribute zero.
pub const MAX_RANK: usize = 4;

/// Certainty factors for ranks 1–4 of each heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct CertaintyTable {
    factors: [[CertaintyFactor; MAX_RANK]; 5],
}

fn kind_index(kind: HeuristicKind) -> usize {
    match kind {
        HeuristicKind::OM => 0,
        HeuristicKind::RP => 1,
        HeuristicKind::SD => 2,
        HeuristicKind::IT => 3,
        HeuristicKind::HT => 4,
    }
}

impl CertaintyTable {
    /// The paper's published Table 4, averaged from the obituary and car-ad
    /// calibration runs (Tables 2 and 3).
    pub fn paper_table4() -> Self {
        Self::from_percentages([
            (HeuristicKind::OM, [84.5, 12.5, 2.0, 1.0]),
            (HeuristicKind::RP, [77.5, 12.5, 9.0, 1.0]),
            (HeuristicKind::SD, [65.5, 22.5, 12.0, 0.0]),
            (HeuristicKind::IT, [96.0, 4.0, 0.0, 0.0]),
            (HeuristicKind::HT, [49.0, 32.5, 16.5, 2.0]),
        ])
    }

    /// Builds a table from `(heuristic, [rank1%, rank2%, rank3%, rank4%])`
    /// rows. Heuristics not mentioned get all-zero factors.
    pub fn from_percentages(
        rows: impl IntoIterator<Item = (HeuristicKind, [f64; MAX_RANK])>,
    ) -> Self {
        let mut t = CertaintyTable {
            factors: [[CertaintyFactor::ZERO; MAX_RANK]; 5],
        };
        for (kind, pcts) in rows {
            for (i, pct) in pcts.into_iter().enumerate() {
                t.factors[kind_index(kind)][i] = CertaintyFactor::from_percent(pct);
            }
        }
        t
    }

    /// The certainty factor a heuristic assigns to its `rank`-th choice
    /// (1-based). Rank 0 is invalid; ranks beyond [`MAX_RANK`] get zero.
    pub fn factor(&self, kind: HeuristicKind, rank: usize) -> CertaintyFactor {
        debug_assert!(rank >= 1, "ranks are 1-based");
        if rank == 0 || rank > MAX_RANK {
            return CertaintyFactor::ZERO;
        }
        self.factors[kind_index(kind)][rank - 1]
    }

    /// Sets one entry (used by the calibration pipeline in `rbd-eval`).
    pub fn set_factor(&mut self, kind: HeuristicKind, rank: usize, cf: CertaintyFactor) {
        assert!((1..=MAX_RANK).contains(&rank), "rank out of range");
        self.factors[kind_index(kind)][rank - 1] = cf;
    }
}

impl fmt::Display for CertaintyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<10} {:>7} {:>7} {:>7} {:>7}", "Heuristic", 1, 2, 3, 4)?;
        for kind in HeuristicKind::ALL {
            write!(f, "{:<10}", kind.to_string())?;
            for rank in 1..=MAX_RANK {
                write!(f, " {:>6.1}%", self.factor(kind, rank).percent())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let t = CertaintyTable::paper_table4();
        assert_eq!(t.factor(HeuristicKind::OM, 1).percent(), 84.5);
        assert_eq!(t.factor(HeuristicKind::IT, 1).percent(), 96.0);
        assert_eq!(t.factor(HeuristicKind::HT, 4).percent(), 2.0);
        assert_eq!(t.factor(HeuristicKind::SD, 4).percent(), 0.0);
    }

    #[test]
    fn out_of_range_ranks_are_zero() {
        let t = CertaintyTable::paper_table4();
        assert_eq!(t.factor(HeuristicKind::OM, 5), CertaintyFactor::ZERO);
        assert_eq!(t.factor(HeuristicKind::OM, 99), CertaintyFactor::ZERO);
    }

    #[test]
    fn rows_sum_to_about_100_percent() {
        // Each heuristic's rank distribution is a probability distribution
        // over "where the correct separator landed".
        let t = CertaintyTable::paper_table4();
        for kind in HeuristicKind::ALL {
            let sum: f64 = (1..=MAX_RANK).map(|r| t.factor(kind, r).percent()).sum();
            assert!((sum - 100.0).abs() < 0.6, "{kind}: {sum}");
        }
    }

    #[test]
    fn set_factor_roundtrips() {
        let mut t = CertaintyTable::from_percentages([]);
        t.set_factor(HeuristicKind::SD, 2, CertaintyFactor::from_percent(33.0));
        assert_eq!(t.factor(HeuristicKind::SD, 2).percent(), 33.0);
        assert_eq!(t.factor(HeuristicKind::SD, 1), CertaintyFactor::ZERO);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = CertaintyTable::paper_table4().to_string();
        for k in ["OM", "RP", "SD", "IT", "HT"] {
            assert!(s.contains(k));
        }
        assert!(s.contains("84.5%"));
    }
}
