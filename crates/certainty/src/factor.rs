//! Certainty factors and the Stanford combination rule (§5.1).

use std::fmt;

/// A certainty factor in `[0, 1]`.
///
/// Stanford certainty theory as the paper uses it deals only in
/// non-negative evidence, so the full MYCIN-style `[-1, 1]` range is not
/// modeled.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CertaintyFactor(f64);

impl CertaintyFactor {
    /// Zero evidence.
    pub const ZERO: CertaintyFactor = CertaintyFactor(0.0);
    /// Complete certainty.
    pub const ONE: CertaintyFactor = CertaintyFactor(1.0);

    /// Creates a factor, clamping into `[0, 1]` (NaN becomes 0).
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            return CertaintyFactor(0.0);
        }
        CertaintyFactor(value.clamp(0.0, 1.0))
    }

    /// Creates a factor from a percentage (e.g. `84.5` → `0.845`).
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }

    /// The underlying value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value as a percentage.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Stanford combination of two independent pieces of evidence:
    /// `CF(E1) + CF(E2) − CF(E1)·CF(E2)`.
    ///
    /// The operation is commutative and associative, so evidence from any
    /// number of observations can be folded in any order.
    pub fn combine(self, other: CertaintyFactor) -> CertaintyFactor {
        // Clamp: float rounding can push e.g. 0.4 + 1.0 − 0.4 a ULP past 1.
        CertaintyFactor::new(self.0 + other.0 - self.0 * other.0)
    }

    /// Folds a sequence of factors with [`CertaintyFactor::combine`].
    pub fn combine_all(factors: impl IntoIterator<Item = CertaintyFactor>) -> CertaintyFactor {
        factors
            .into_iter()
            .fold(CertaintyFactor::ZERO, CertaintyFactor::combine)
    }
}

impl fmt::Display for CertaintyFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_5_1_example() {
        // 88%, 74%, 66% combine to 98.93%.
        let cf = CertaintyFactor::combine_all([
            CertaintyFactor::from_percent(88.0),
            CertaintyFactor::from_percent(74.0),
            CertaintyFactor::from_percent(66.0),
        ]);
        // Exact value is 98.9392 %; the paper truncates to 98.93 %.
        assert!((cf.percent() - 98.9392).abs() < 1e-9, "{}", cf.percent());
    }

    #[test]
    fn combine_identities() {
        let x = CertaintyFactor::new(0.4);
        assert!((x.combine(CertaintyFactor::ZERO).value() - 0.4).abs() < 1e-15);
        assert!((x.combine(CertaintyFactor::ONE).value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn combine_commutative_associative() {
        let a = CertaintyFactor::new(0.3);
        let b = CertaintyFactor::new(0.5);
        let c = CertaintyFactor::new(0.7);
        assert!((a.combine(b).value() - b.combine(a).value()).abs() < 1e-15);
        let left = a.combine(b).combine(c).value();
        let right = a.combine(b.combine(c)).value();
        assert!((left - right).abs() < 1e-15);
    }

    #[test]
    fn clamping() {
        assert_eq!(CertaintyFactor::new(-0.5).value(), 0.0);
        assert_eq!(CertaintyFactor::new(1.5).value(), 1.0);
        assert_eq!(CertaintyFactor::new(f64::NAN).value(), 0.0);
    }

    #[test]
    fn result_stays_in_unit_interval() {
        for i in 0..=10 {
            for j in 0..=10 {
                let v = CertaintyFactor::new(i as f64 / 10.0)
                    .combine(CertaintyFactor::new(j as f64 / 10.0))
                    .value();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn display_formats_percent() {
        assert_eq!(CertaintyFactor::from_percent(56.34).to_string(), "56.34%");
    }
}
