//! The compound heuristic (§5.3): combine per-heuristic rankings into a
//! consensus separator choice.

use crate::factor::CertaintyFactor;
use crate::set::HeuristicSet;
use crate::table::CertaintyTable;
use rbd_heuristics::Ranking;

/// A candidate tag with its compound certainty factor.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredTag {
    /// Tag name.
    pub tag: String,
    /// Combined certainty over the selected heuristics.
    pub certainty: CertaintyFactor,
}

/// The outcome of combining rankings: all candidate tags scored (descending)
/// plus the argmax tie set.
#[derive(Debug, Clone, PartialEq)]
pub struct Consensus {
    /// All scored tags, highest certainty first.
    pub scored: Vec<ScoredTag>,
    /// Tags sharing the highest certainty (usually exactly one). The
    /// paper's success metric `sc(D) = Y/X` is defined over this tie set.
    pub winners: Vec<String>,
}

impl Consensus {
    /// The single consensus separator when the argmax is unique.
    pub fn unique_winner(&self) -> Option<&str> {
        match self.winners.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// 1-based dense rank of `tag` in the compound scoring (ties share a
    /// rank) — the number reported in the paper's Tables 6–9 column "A".
    pub fn rank_of(&self, tag: &str) -> Option<usize> {
        let mut rank = 0;
        let mut last: Option<f64> = None;
        for s in &self.scored {
            let v = s.certainty.value();
            if last != Some(v) {
                rank += 1;
                last = Some(v);
            }
            if s.tag == tag {
                return Some(rank);
            }
        }
        None
    }
}

/// A compound heuristic: a heuristic subset plus a certainty table.
#[derive(Debug, Clone)]
pub struct CompoundHeuristic {
    set: HeuristicSet,
    table: CertaintyTable,
}

impl CompoundHeuristic {
    /// The paper's final configuration: ORSIH with the published Table 4.
    pub fn paper_orsih() -> Self {
        CompoundHeuristic {
            set: HeuristicSet::ORSIH,
            table: CertaintyTable::paper_table4(),
        }
    }

    /// A compound heuristic over an arbitrary subset with a given table.
    pub fn new(set: HeuristicSet, table: CertaintyTable) -> Self {
        CompoundHeuristic { set, table }
    }

    /// The heuristic subset.
    pub fn set(&self) -> HeuristicSet {
        self.set
    }

    /// The certainty table.
    pub fn table(&self) -> &CertaintyTable {
        &self.table
    }

    /// Combines per-heuristic rankings into a consensus. Rankings whose
    /// heuristic is not in the subset are ignored; heuristics that
    /// abstained simply contribute nothing (they are absent from
    /// `rankings`). A tag unranked by some heuristic receives zero evidence
    /// from it, and a tag's rank beyond the table's depth contributes zero.
    pub fn combine(&self, rankings: &[Ranking]) -> Consensus {
        // Candidate universe: every tag ranked by any selected heuristic,
        // in first-seen order for determinism.
        let mut tags: Vec<&str> = Vec::new();
        for r in rankings {
            if !self.set.contains(r.kind) {
                continue;
            }
            for e in &r.entries {
                if !tags.contains(&e.tag.as_str()) {
                    tags.push(&e.tag);
                }
            }
        }

        let mut scored: Vec<ScoredTag> = tags
            .into_iter()
            .map(|tag| {
                // Each selected ranking contributes the calibrated factor
                // for the rank it gave this tag.
                let factors = rankings
                    .iter()
                    .filter(|r| self.set.contains(r.kind))
                    .filter_map(|r| r.rank_of(tag).map(|rank| self.table.factor(r.kind, rank)));
                ScoredTag {
                    tag: tag.to_owned(),
                    certainty: CertaintyFactor::combine_all(factors),
                }
            })
            .collect();

        scored.sort_by(|a, b| {
            b.certainty
                .partial_cmp(&a.certainty)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.tag.cmp(&b.tag))
        });

        let winners = match scored.first() {
            None => Vec::new(),
            Some(top) => scored
                .iter()
                .take_while(|s| s.certainty == top.certainty)
                .map(|s| s.tag.clone())
                .collect(),
        };
        Consensus { scored, winners }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_heuristics::{HeuristicKind, Ranking};

    /// Builds the paper's §5.3 worked-example rankings.
    fn figure2_rankings() -> Vec<Ranking> {
        let order = |kind, tags: [&str; 3]| {
            Ranking::from_order(kind, tags.iter().map(|t| (*t).to_owned()).collect())
        };
        vec![
            order(HeuristicKind::OM, ["hr", "br", "b"]),
            order(HeuristicKind::RP, ["hr", "br", "b"]),
            order(HeuristicKind::SD, ["hr", "b", "br"]),
            order(HeuristicKind::IT, ["hr", "br", "b"]),
            order(HeuristicKind::HT, ["b", "br", "hr"]),
        ]
    }

    #[test]
    fn paper_section_5_3_worked_example() {
        // ORSIH: [(hr, 99.96%), (b, 64.75%), (br, 56.34%)]
        let compound = CompoundHeuristic::paper_orsih();
        let consensus = compound.combine(&figure2_rankings());
        assert_eq!(consensus.unique_winner(), Some("hr"));
        let pct: Vec<(String, f64)> = consensus
            .scored
            .iter()
            .map(|s| {
                (
                    s.tag.clone(),
                    (s.certainty.percent() * 100.0).round() / 100.0,
                )
            })
            .collect();
        assert_eq!(
            pct,
            vec![
                ("hr".to_owned(), 99.96),
                ("b".to_owned(), 64.75),
                ("br".to_owned(), 56.34),
            ]
        );
    }

    #[test]
    fn subset_ignores_other_rankings() {
        let compound =
            CompoundHeuristic::new("IH".parse().unwrap(), CertaintyTable::paper_table4());
        let consensus = compound.combine(&figure2_rankings());
        // IT: hr=96%, HT: hr rank3=16.5% → combined 96.66%.
        let hr = consensus.scored.iter().find(|s| s.tag == "hr").unwrap();
        assert!((hr.certainty.percent() - 96.66).abs() < 0.01);
    }

    #[test]
    fn abstaining_heuristics_contribute_nothing() {
        // Only IT ranks anything; OM/RP abstained (absent).
        let rankings = vec![Ranking::from_order(
            HeuristicKind::IT,
            vec!["hr".into(), "b".into()],
        )];
        let compound = CompoundHeuristic::paper_orsih();
        let c = compound.combine(&rankings);
        assert_eq!(c.unique_winner(), Some("hr"));
        assert!((c.scored[0].certainty.percent() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn rank_beyond_table_depth_is_zero_evidence() {
        let rankings = vec![Ranking::from_order(
            HeuristicKind::IT,
            vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        )];
        let c = CompoundHeuristic::paper_orsih().combine(&rankings);
        let e = c.scored.iter().find(|s| s.tag == "e").unwrap();
        assert_eq!(e.certainty, CertaintyFactor::ZERO);
    }

    #[test]
    fn ties_produce_multiple_winners() {
        // Two tags with identical evidence tie.
        let rankings = vec![Ranking::from_scores(
            HeuristicKind::HT,
            vec![("x".into(), 5.0), ("y".into(), 5.0)],
            false,
        )];
        let c = CompoundHeuristic::paper_orsih().combine(&rankings);
        assert_eq!(c.winners.len(), 2);
        assert_eq!(c.unique_winner(), None);
        assert_eq!(c.rank_of("x"), Some(1));
        assert_eq!(c.rank_of("y"), Some(1));
    }

    #[test]
    fn empty_rankings_empty_consensus() {
        let c = CompoundHeuristic::paper_orsih().combine(&[]);
        assert!(c.scored.is_empty());
        assert!(c.winners.is_empty());
        assert_eq!(c.rank_of("hr"), None);
    }

    #[test]
    fn consensus_rank_of_is_dense() {
        let rankings = figure2_rankings();
        let c = CompoundHeuristic::paper_orsih().combine(&rankings);
        assert_eq!(c.rank_of("hr"), Some(1));
        assert_eq!(c.rank_of("b"), Some(2));
        assert_eq!(c.rank_of("br"), Some(3));
    }
}
