//! # rbd-certainty — Stanford certainty theory and compound heuristics (§5)
//!
//! The five heuristics are independent evidence sources. The paper combines
//! them with Stanford certainty theory: two pieces of evidence with
//! certainty factors `a` and `b` supporting the same conclusion combine to
//! `a + b − a·b`. Each heuristic's per-rank certainty factors come from the
//! calibration experiments of §5.2 (Table 4); the compound heuristic sums
//! evidence over any subset of the five, and the paper selects **ORSIH** —
//! all five — as its consensus method (§5.3).
//!
//! ## The paper's worked example
//!
//! ```
//! use rbd_certainty::CertaintyFactor;
//!
//! let cf = [0.88, 0.74, 0.66]
//!     .into_iter()
//!     .map(CertaintyFactor::new)
//!     .fold(CertaintyFactor::ZERO, |acc, x| acc.combine(x));
//! assert!((cf.value() - 0.989392).abs() < 1e-9); // §5.1 reports 98.93 %
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compound;
pub mod factor;
pub mod set;
pub mod table;

pub use compound::{CompoundHeuristic, Consensus, ScoredTag};
pub use factor::CertaintyFactor;
pub use set::HeuristicSet;
pub use table::CertaintyTable;
