//! Subsets of the five heuristics (the paper's 26 compound combinations).

use rbd_heuristics::HeuristicKind;
use std::fmt;
use std::str::FromStr;

/// A non-empty subset of `{OM, RP, SD, IT, HT}`, written in the paper's
/// letter notation: `OR`, `RSIH`, `ORSIH`, ….
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeuristicSet(u8);

fn bit(kind: HeuristicKind) -> u8 {
    match kind {
        HeuristicKind::OM => 1 << 0,
        HeuristicKind::RP => 1 << 1,
        HeuristicKind::SD => 1 << 2,
        HeuristicKind::IT => 1 << 3,
        HeuristicKind::HT => 1 << 4,
    }
}

impl HeuristicSet {
    /// The paper's chosen compound heuristic: all five (ORSIH).
    pub const ORSIH: HeuristicSet = HeuristicSet(0b11111);

    /// The empty set (not a valid compound heuristic; useful as a builder
    /// seed).
    pub const EMPTY: HeuristicSet = HeuristicSet(0);

    /// Builds a set from kinds.
    pub fn of(kinds: impl IntoIterator<Item = HeuristicKind>) -> Self {
        let mut s = 0u8;
        for k in kinds {
            s |= bit(k);
        }
        HeuristicSet(s)
    }

    /// Adds a heuristic.
    pub fn with(self, kind: HeuristicKind) -> Self {
        HeuristicSet(self.0 | bit(kind))
    }

    /// Membership test.
    pub fn contains(self, kind: HeuristicKind) -> bool {
        self.0 & bit(kind) != 0
    }

    /// Number of heuristics in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for the empty set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in ORSIH order.
    pub fn iter(self) -> impl Iterator<Item = HeuristicKind> {
        HeuristicKind::ALL
            .into_iter()
            .filter(move |k| self.contains(*k))
    }

    /// All 26 combinations the paper evaluates in Table 5: every subset of
    /// size ≥ 2 (`C(5,2)+C(5,3)+C(5,4)+C(5,5) = 10+10+5+1 = 26`), in
    /// ascending size then ORSIH-lexicographic order — matching the paper's
    /// table layout.
    pub fn all_compound() -> Vec<HeuristicSet> {
        let mut sets: Vec<HeuristicSet> = (1u8..32)
            .map(HeuristicSet)
            .filter(|s| s.len() >= 2)
            .collect();
        sets.sort_by_key(|s| (s.len(), order_key(*s)));
        sets
    }

    /// All five singleton sets, in ORSIH order.
    pub fn singletons() -> Vec<HeuristicSet> {
        HeuristicKind::ALL
            .into_iter()
            .map(|k| HeuristicSet::of([k]))
            .collect()
    }
}

/// Lexicographic key over the ORSIH letter sequence.
fn order_key(s: HeuristicSet) -> u32 {
    let mut key = 0u32;
    for (i, k) in HeuristicKind::ALL.into_iter().enumerate() {
        if s.contains(k) {
            // Earlier letters are more significant.
            key |= 1 << (HeuristicKind::ALL.len() - 1 - i);
        }
    }
    // Lexicographic: "O…" sorts before "R…"; invert so the set containing
    // earlier letters gets the *smaller* key.
    u32::MAX - key
}

impl fmt::Display for HeuristicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for k in self.iter() {
            write!(f, "{}", k.letter())?;
        }
        Ok(())
    }
}

/// Error from parsing a heuristic-set string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSetError(pub char);

impl fmt::Display for ParseSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown heuristic letter `{}`", self.0)
    }
}

impl std::error::Error for ParseSetError {}

impl FromStr for HeuristicSet {
    type Err = ParseSetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut set = HeuristicSet::EMPTY;
        for c in s.chars() {
            let kind = HeuristicKind::from_letter(c).ok_or(ParseSetError(c))?;
            set = set.with(kind);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orsih_contains_all() {
        for k in HeuristicKind::ALL {
            assert!(HeuristicSet::ORSIH.contains(k));
        }
        assert_eq!(HeuristicSet::ORSIH.len(), 5);
        assert_eq!(HeuristicSet::ORSIH.to_string(), "ORSIH");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["OR", "OS", "RSIH", "ORSIH", "SI"] {
            let set: HeuristicSet = s.parse().unwrap();
            assert_eq!(set.to_string(), s);
        }
        assert!("OXR".parse::<HeuristicSet>().is_err());
        // Lower-case accepted.
        assert_eq!(
            "orsih".parse::<HeuristicSet>().unwrap(),
            HeuristicSet::ORSIH
        );
    }

    #[test]
    fn display_uses_orsih_order_regardless_of_insertion() {
        let set = HeuristicSet::of([HeuristicKind::HT, HeuristicKind::OM]);
        assert_eq!(set.to_string(), "OH");
    }

    #[test]
    fn twenty_six_compounds() {
        let all = HeuristicSet::all_compound();
        assert_eq!(all.len(), 26);
        // Paper's Table 5 starts with the pairs, OR first…
        assert_eq!(all[0].to_string(), "OR");
        assert_eq!(all[1].to_string(), "OS");
        // …and ends with ORSIH.
        assert_eq!(all.last().unwrap().to_string(), "ORSIH");
        // All distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 26);
    }

    #[test]
    fn table5_pair_column_order() {
        // The paper's left column lists OR OS OI OH RS RI RH SI SH IH.
        let pairs: Vec<String> = HeuristicSet::all_compound()
            .into_iter()
            .filter(|s| s.len() == 2)
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            pairs,
            vec!["OR", "OS", "OI", "OH", "RS", "RI", "RH", "SI", "SH", "IH"]
        );
    }

    #[test]
    fn singletons() {
        let s = HeuristicSet::singletons();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].to_string(), "O");
        assert_eq!(s[4].to_string(), "H");
    }

    #[test]
    fn iter_members() {
        let set: HeuristicSet = "RSH".parse().unwrap();
        let members: Vec<_> = set.iter().collect();
        assert_eq!(
            members,
            vec![HeuristicKind::RP, HeuristicKind::SD, HeuristicKind::HT]
        );
    }
}
