//! Determinism guarantees: the whole point of the in-tree harness is that
//! a failure seen once reproduces forever — same seed, same case stream,
//! same minimized counterexample, on every machine.

use rbd_prop::{gen, run, Config, Gen, Rng};

/// A property that fails whenever the string contains a digit.
fn no_digits(s: &str) -> Result<(), String> {
    if s.chars().any(|c| c.is_ascii_digit()) {
        Err("contains a digit".to_owned())
    } else {
        Ok(())
    }
}

#[test]
fn same_seed_reproduces_the_same_failure() {
    let g = gen::string_from("ab12", 0..=24);
    let cfg = Config {
        cases: 256,
        seed: 0xDECAF,
        max_shrink_steps: 4096,
    };
    let first = run(&cfg, &g, |s| no_digits(s)).expect_err("digits are common");
    let second = run(&cfg, &g, |s| no_digits(s)).expect_err("digits are common");
    assert_eq!(first.case, second.case);
    assert_eq!(first.original, second.original);
    assert_eq!(first.minimal, second.minimal);
    assert_eq!(first.message, second.message);
    assert_eq!(first.shrink_steps, second.shrink_steps);
}

#[test]
fn minimal_counterexample_is_a_single_digit() {
    let g = gen::string_from("ab12", 0..=24);
    let cfg = Config {
        cases: 256,
        seed: 0xDECAF,
        max_shrink_steps: 4096,
    };
    let failure = run(&cfg, &g, |s| no_digits(s)).expect_err("digits are common");
    assert_eq!(failure.minimal.len(), 1, "minimal: {:?}", failure.minimal);
    assert!(failure.minimal.chars().all(|c| c.is_ascii_digit()));
}

#[test]
fn generator_streams_are_seed_determined() {
    let g = Gen::vec(gen::int_in(0u32..=1_000_000), 0..=8);
    let mut a = Rng::from_seed(42);
    let mut b = Rng::from_seed(42);
    for _ in 0..100 {
        assert_eq!(g.generate(&mut a), g.generate(&mut b));
    }
    // A different seed diverges immediately somewhere in the stream.
    let mut c = Rng::from_seed(43);
    let xs: Vec<Vec<u32>> = (0..20).map(|_| g.generate(&mut a)).collect();
    let ys: Vec<Vec<u32>> = (0..20).map(|_| g.generate(&mut c)).collect();
    assert_ne!(xs, ys);
}

#[test]
fn named_config_is_stable_across_calls() {
    let a = Config::for_name("some_property");
    let b = Config::for_name("some_property");
    assert_eq!(a.seed, b.seed);
    assert_ne!(a.seed, Config::for_name("other_property").seed);
}
