//! The property runner: draws cases from a [`Gen`], evaluates the
//! property, and minimizes any failing input before reporting it.
//!
//! Runs are fully deterministic: the seed is derived from the property
//! name (or given explicitly), so a failure reproduces identically on
//! every machine and every rerun — there is no persistence file because
//! there is nothing nondeterministic to persist.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::gen::Gen;
use crate::rng::Rng;

/// Base seed mixed with the property name; bumping it reshuffles every
/// property's case stream at once.
pub const DEFAULT_SEED: u64 = 0x5EED_1999_0B0D_CAFE;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to draw.
    pub cases: u32,
    /// Seed for the case stream.
    pub seed: u64,
    /// Budget of property evaluations spent minimizing a failure.
    pub max_shrink_steps: u32,
}

impl Config {
    /// The standard configuration for a named property: 256 cases, seed
    /// derived deterministically from the name.
    pub fn for_name(name: &str) -> Config {
        Config {
            cases: 256,
            seed: DEFAULT_SEED ^ fnv1a(name),
            max_shrink_steps: 4096,
        }
    }
}

/// FNV-1a — cheap, stable string hash for per-property seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Zero-based index of the failing case in the stream.
    pub case: u32,
    /// The seed the stream ran with.
    pub seed: u64,
    /// The input as originally drawn.
    pub original: T,
    /// The input after minimization (equals `original` if nothing
    /// simpler still fails).
    pub minimal: T,
    /// The failure message for `minimal`.
    pub message: String,
    /// Property evaluations spent shrinking.
    pub shrink_steps: u32,
}

/// Evaluates the property, converting a panic into an `Err` so panicking
/// assertions inside helper functions still get minimized.
fn eval<T>(prop: &impl Fn(&T) -> Result<(), String>, value: &T) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_owned());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs the property over `config.cases` random inputs. On failure,
/// minimizes the input and returns the [`Failure`]; passing runs return
/// `Ok(())`. This is the non-panicking core — tests normally use
/// [`check`].
pub fn run<T: Clone + 'static>(
    config: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) -> Result<(), Box<Failure<T>>> {
    let mut rng = Rng::from_seed(config.seed);
    for case in 0..config.cases {
        let original = gen.generate(&mut rng);
        let Err(first_message) = eval(&prop, &original) else {
            continue;
        };

        // Greedy minimization: take the first shrink candidate that still
        // fails, restart from it, stop at a fixpoint or budget exhaustion.
        let mut minimal = original.clone();
        let mut message = first_message;
        let mut steps = 0u32;
        'minimize: while steps < config.max_shrink_steps {
            for candidate in gen.shrink(&minimal) {
                steps += 1;
                if let Err(m) = eval(&prop, &candidate) {
                    minimal = candidate;
                    message = m;
                    continue 'minimize;
                }
                if steps >= config.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        return Err(Box::new(Failure {
            case,
            seed: config.seed,
            original,
            minimal,
            message,
            shrink_steps: steps,
        }));
    }
    Ok(())
}

/// Runs a named property with the standard configuration, panicking with
/// a report (minimal input, message, seed) on failure. The direct
/// replacement for a `proptest!` block's body.
pub fn check<T: Clone + Debug + 'static>(
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_config(&Config::for_name(name), name, gen, prop);
}

/// Like [`check`] with an explicit case count (`with_cases` analogue).
pub fn check_cases<T: Clone + Debug + 'static>(
    name: &str,
    cases: u32,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let mut config = Config::for_name(name);
    config.cases = cases;
    check_config(&config, name, gen, prop);
}

/// Runs with an explicit configuration, panicking on failure.
pub fn check_config<T: Clone + Debug + 'static>(
    config: &Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    if let Err(f) = run(config, gen, prop) {
        panic!(
            "property '{name}' failed (case {case}, seed {seed:#x}, \
             {steps} shrink steps)\n  minimal input: {minimal:?}\n  \
             original input: {original:?}\n  error: {message}",
            case = f.case,
            seed = f.seed,
            steps = f.shrink_steps,
            minimal = f.minimal,
            original = f.original,
            message = f.message,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{int_in, string_from};

    #[test]
    fn passing_property_returns_ok() {
        let g = int_in(0u32..=100);
        let cfg = Config::for_name("passes");
        assert!(run(&cfg, &g, |&v| {
            if v <= 100 {
                Ok(())
            } else {
                Err("impossible".into())
            }
        })
        .is_ok());
    }

    #[test]
    fn failing_string_minimizes_to_the_culprit_char() {
        // Fails iff the string contains 'q'; the minimal counterexample
        // is exactly "q".
        let g = string_from("abq", 0..=20);
        let cfg = Config::for_name("culprit");
        let f = run(&cfg, &g, |s: &String| {
            if s.contains('q') {
                Err("has q".into())
            } else {
                Ok(())
            }
        })
        .expect_err("20-char strings over {a,b,q} contain q often");
        assert_eq!(f.minimal, "q");
        assert!(f.original.contains('q'));
    }

    #[test]
    fn failing_int_minimizes_to_threshold() {
        let g = int_in(0u32..=1000);
        let cfg = Config::for_name("threshold");
        let f = run(&cfg, &g, |&v| {
            if v > 17 {
                Err(format!("{v} too big"))
            } else {
                Ok(())
            }
        })
        .expect_err("most draws exceed 17");
        assert_eq!(f.minimal, 18);
    }

    #[test]
    fn panicking_property_is_caught_and_minimized() {
        let g = string_from("xy", 0..=10);
        let cfg = Config::for_name("panics");
        let f = run(&cfg, &g, |s: &String| {
            assert!(!s.contains('y'), "saw y in {s:?}");
            Ok(())
        })
        .expect_err("y appears");
        assert_eq!(f.minimal, "y");
        assert!(f.message.starts_with("panic:"), "{}", f.message);
    }

    #[test]
    #[should_panic(expected = "property 'doomed' failed")]
    fn check_panics_with_report() {
        let g = int_in(0u8..=9);
        check("doomed", &g, |_| Err("always".into()));
    }

    #[test]
    fn seeds_differ_across_names() {
        assert_ne!(Config::for_name("a").seed, Config::for_name("b").seed);
    }
}
