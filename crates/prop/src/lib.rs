//! # rbd-prop — deterministic property testing
//!
//! The in-tree replacement for the proptest dependency: a deterministic
//! seeded RNG, composable input generators with shrinking, and a runner
//! that minimizes failing cases. The workspace's property suites
//! (tokenizer invariants, normalizer equivalence, Pike-VM differential
//! tests, certainty algebra) run on this crate, so `cargo test` needs no
//! network access (see DESIGN.md, "Hermetic build").
//!
//! Differences from proptest, by design:
//!
//! - **Fully deterministic.** Seeds derive from the property name; there
//!   is no OS entropy and no `proptest-regressions` persistence files —
//!   a failure reproduces identically everywhere. Regressions distilled
//!   from past runs are kept as explicit named `#[test]`s instead.
//! - **Explicit generators.** A [`Gen<T>`] is a value, composed with
//!   ordinary function calls (`Gen::select`, [`gen::string_from`],
//!   [`gen::concat`], `Gen::vec`), not a macro DSL.
//! - **Properties return `Result`.** `Ok(())` passes; `Err(message)`
//!   fails and triggers minimization. The [`prop_assert!`] /
//!   [`prop_assert_eq!`] macros produce those early returns, and panics
//!   from helper assertions are caught and minimized too.
//!
//! The [`Rng`] also backs the synthetic corpus generator, exposing the
//! same method surface the `rand` crate did (`random_range`,
//! `random_bool`, slice [`Choose::choose`]) so sampling call sites read
//! identically.
//!
//! ## Example
//!
//! ```
//! use rbd_prop::{check, gen, prop_assert};
//!
//! let lengths = gen::string_from("ab ", 0..=16);
//! check("trim_never_grows", &lengths, |s| {
//!     prop_assert!(s.trim().len() <= s.len());
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod rng;
pub mod runner;
pub mod shrink;

pub use gen::Gen;
pub use rng::{Choose, Rng};
pub use runner::{check, check_cases, check_config, run, Config, Failure, DEFAULT_SEED};

/// Asserts a condition inside a property, returning `Err` (and thereby
/// triggering minimization) instead of panicking. With extra arguments,
/// they format the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property, returning `Err`
/// with both values on mismatch. Operands are taken by reference and
/// must implement `Debug` and `PartialEq`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Skips the rest of a property when a precondition does not hold
/// (useful when shrinking can produce inputs outside the generator's
/// guarantees, e.g. an invalid pattern after chunk removal).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}
