//! Value-level shrinkers: candidate "smaller" inputs tried by the runner
//! when minimizing a failing case.
//!
//! Each function returns a batch of candidates strictly simpler than the
//! input (fewer elements / characters, or values closer to a range's low
//! end). The runner greedily takes the first candidate that still fails
//! and repeats, so shrinkers list aggressive candidates (big chunk
//! removals) before timid ones (single elements).

/// Smaller strings: progressively smaller chunk removals, always at
/// character boundaries. Chunks halve from `len/2` down to single
/// characters, so the runner can cut a large failing input down in
/// logarithmically many rounds.
pub fn string(s: &str) -> Vec<String> {
    string_min(s, 0)
}

/// Like [`string`], but never proposes a candidate shorter (in characters)
/// than `min_chars` — for generators with a length floor.
pub fn string_min(s: &str, min_chars: usize) -> Vec<String> {
    // Byte offset of every character boundary, including the end.
    let bounds: Vec<usize> = s
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(s.len()))
        .collect();
    let n = bounds.len() - 1;
    if n <= min_chars {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut chunk = n.div_ceil(2).min(n - min_chars);
    while chunk >= 1 {
        let mut start = 0;
        while start + chunk <= n {
            let mut candidate = String::with_capacity(s.len());
            candidate.push_str(&s[..bounds[start]]);
            candidate.push_str(&s[bounds[start + chunk]..]);
            out.push(candidate);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).min(n - min_chars);
    }
    out
}

/// Smaller vectors: chunk removals (halving, like [`string`]) followed by
/// single-element removals, never dropping below `min_len` elements.
pub fn vec<T: Clone>(v: &[T], min_len: usize) -> Vec<Vec<T>> {
    let n = v.len();
    if n <= min_len {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut chunk = n.div_ceil(2).min(n - min_len);
    while chunk >= 1 {
        let mut start = 0;
        while start + chunk <= n {
            let mut candidate = Vec::with_capacity(n - chunk);
            candidate.extend_from_slice(&v[..start]);
            candidate.extend_from_slice(&v[start + chunk..]);
            out.push(candidate);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).min(n - min_len);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_candidates_are_smaller_and_valid() {
        let s = "aé🌀b";
        for cand in super::string(s) {
            assert!(cand.chars().count() < s.chars().count(), "{cand:?}");
            // Implicitly checks UTF-8 validity: slicing off a char
            // boundary would have panicked while building the candidate.
        }
        assert!(!super::string(s).is_empty());
        assert!(super::string("").is_empty());
    }

    #[test]
    fn string_respects_min_chars() {
        for cand in super::string_min("abcdef", 4) {
            assert!(cand.chars().count() >= 4, "{cand:?}");
        }
        assert!(super::string_min("abcd", 4).is_empty());
    }

    #[test]
    fn single_char_shrinks_to_empty() {
        assert_eq!(super::string("x"), vec![String::new()]);
    }

    #[test]
    fn vec_candidates_are_smaller_and_respect_min() {
        let v = [1, 2, 3, 4, 5];
        let cands = super::vec(&v, 2);
        assert!(!cands.is_empty());
        for cand in cands {
            assert!(cand.len() < v.len());
            assert!(cand.len() >= 2);
            // Order is preserved (candidates are subsequences).
            assert!(cand.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(super::vec(&v, 5).is_empty());
    }
}
