//! The deterministic random-number generator: xorshift64* state advanced
//! from a splitmix64-conditioned seed.
//!
//! The generator is deliberately *not* cryptographic; it exists so corpus
//! generation and property testing are reproducible from a single `u64`
//! seed, forever, with no external crate. The method surface mirrors the
//! subset of `rand` the workspace used (`random_range`, `random_bool`,
//! slice `choose`), so call sites read the same.

use std::ops::{Range, RangeInclusive};

/// A deterministic xorshift64* generator.
///
/// Streams are fully determined by the seed: the same seed always yields
/// the same sequence, on every platform and in every build profile.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// splitmix64 — used to condition arbitrary seeds (including zero, which
/// a raw xorshift state must never be) into well-mixed initial states.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Any seed is valid, zero included.
    pub fn from_seed(seed: u64) -> Rng {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            // xorshift has a fixed point at zero; one more splitmix round
            // escapes it (splitmix64 maps at most one input to zero).
            state = splitmix64(&mut s) | 1;
        }
        Rng { state }
    }

    /// The next raw 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    pub fn random_f64(&mut self) -> f64 {
        // rbd-lint: allow(cast) — 53-bit value always fits f64 exactly
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniform draw from an integer range, `lo..hi` or `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        assert!(lo <= hi, "random_range called with an empty range");
        let span = hi.offset_from(lo);
        if span == u64::MAX {
            // The full domain of a 64-bit type: every raw draw is in range.
            return T::from_offset(lo, self.next_u64());
        }
        // Bounded draw by 128-bit widening multiply. The ~2^-64 bias of
        // skipping rejection is far below anything the corpus statistics
        // or property distributions can observe.
        let bound = span + 1;
        let wide = u128::from(self.next_u64()) * u128::from(bound);
        // rbd-lint: allow(cast) — high 64 bits of a 128-bit product, < bound <= u64::MAX
        let offset = (wide >> 64) as u64;
        T::from_offset(lo, offset)
    }
}

/// Integer types [`Rng::random_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// `self - base` as a `u64` (the range span; never negative because
    /// the caller orders the bounds).
    fn offset_from(self, base: Self) -> u64;
    /// `base + offset`, where `offset <= self.offset_from(base)` for the
    /// range's upper bound — always representable.
    fn from_offset(base: Self, offset: u64) -> Self;
    /// The predecessor value, for converting an exclusive upper bound.
    /// Panics on underflow (an empty `lo..lo` range is a caller bug).
    fn prev(self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn offset_from(self, base: Self) -> u64 {
                (self - base) as u64
            }
            #[allow(clippy::cast_possible_truncation)] // offset <= span of $t by contract
            fn from_offset(base: Self, offset: u64) -> Self {
                base + offset as $t
            }
            fn prev(self) -> Self {
                self.checked_sub(1)
                    .expect("random_range called with an empty range")
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[allow(clippy::cast_sign_loss)] // wrapping difference of ordered bounds is non-negative
            fn offset_from(self, base: Self) -> u64 {
                self.wrapping_sub(base) as $u as u64
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            // offset <= span of $t by contract; wrapping add re-enters range
            fn from_offset(base: Self, offset: u64) -> Self {
                base.wrapping_add(offset as $u as $t)
            }
            fn prev(self) -> Self {
                self.checked_sub(1)
                    .expect("random_range called with an empty range")
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

/// Range forms [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// The inclusive `(low, high)` bounds.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Uniform element selection from slices, mirroring
/// `rand::seq::IndexedRandom::choose`.
pub trait Choose<T> {
    /// A uniformly random element, or `None` when empty.
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T>;
}

impl<T> Choose<T> for [T] {
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.random_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(1998);
        let mut b = Rng::from_seed(1998);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = Rng::from_seed(0);
        // Must not get stuck at the xorshift fixed point.
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::from_seed(7);
        for _ in 0..2000 {
            let v: usize = rng.random_range(0..3);
            assert!(v < 3);
            let w: i32 = rng.random_range(1990..=1998);
            assert!((1990..=1998).contains(&w));
            let x: u8 = rng.random_range(1..=2);
            assert!((1..=2).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn single_value_range() {
        let mut rng = Rng::from_seed(9);
        let v: usize = rng.random_range(4..=4);
        assert_eq!(v, 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::from_seed(9);
        let _: usize = rng.random_range(3..3);
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = Rng::from_seed(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = Rng::from_seed(13);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = Rng::from_seed(17);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4500..=5500).contains(&heads), "{heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::from_seed(19);
        for _ in 0..1000 {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_is_uniform_ish_and_total() {
        let mut rng = Rng::from_seed(23);
        let pool = ["a", "b", "c"];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let p = pool.choose(&mut rng).unwrap();
            counts[pool.iter().position(|x| x == p).unwrap()] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "{counts:?}");
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
