//! Input generators: composable random-value strategies with attached
//! shrinkers, the in-tree analogue of a proptest `Strategy`.
//!
//! A [`Gen<T>`] pairs a generation function (`&mut Rng -> T`) with a
//! shrink function (`&T -> Vec<T>` of simpler candidates). Combinators
//! preserve shrinking where the structure allows it (vectors, strings,
//! tuples); `map` discards it, since an arbitrary mapping cannot be
//! inverted — re-attach one with [`Gen::with_shrink`] when it matters.

use std::ops::RangeInclusive;
use std::rc::Rc;

use crate::rng::{Rng, SampleRange, UniformInt};
use crate::shrink;

type GenerateFn<T> = Rc<dyn Fn(&mut Rng) -> T>;
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A random-value generator with an attached shrinker.
pub struct Gen<T> {
    generate: GenerateFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a raw sampling function, with no shrinker.
    pub fn new(generate: impl Fn(&mut Rng) -> T + 'static) -> Gen<T> {
        Gen {
            generate: Rc::new(generate),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Replaces the shrinker: `shrink(value)` must return candidates
    /// strictly simpler than `value` (the runner guards against cycles
    /// with a step budget, but a well-founded shrinker converges faster).
    #[must_use]
    pub fn with_shrink(self, shrink: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            generate: self.generate,
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut Rng) -> T {
        (self.generate)(rng)
    }

    /// Simpler candidates for `value` (empty when fully minimized).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Applies `f` to every generated value. The shrinker is dropped —
    /// use [`Gen::with_shrink`] on the result to re-attach one.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let generate = self.generate;
        Gen::new(move |rng| f(generate(rng)))
    }

    /// Pairs this generator with another; shrinks componentwise.
    pub fn zip<U>(self, other: Gen<U>) -> Gen<(T, U)>
    where
        T: Clone,
        U: Clone + 'static,
    {
        let (ga, sa) = (self.generate, self.shrink);
        let (gb, sb) = (other.generate, other.shrink);
        Gen {
            generate: Rc::new(move |rng| (ga(rng), gb(rng))),
            shrink: Rc::new(move |(a, b)| {
                let mut out: Vec<(T, U)> = sa(a).into_iter().map(|a2| (a2, b.clone())).collect();
                out.extend(sb(b).into_iter().map(|b2| (a.clone(), b2)));
                out
            }),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Always yields `value`.
    pub fn just(value: T) -> Gen<T> {
        Gen::new(move |_| value.clone())
    }

    /// A uniform draw from a fixed pool; shrinks toward the first option.
    pub fn select(options: Vec<T>) -> Gen<T>
    where
        T: PartialEq,
    {
        assert!(!options.is_empty(), "select needs at least one option");
        let pool = Rc::new(options);
        let gen_pool = Rc::clone(&pool);
        Gen {
            generate: Rc::new(move |rng| gen_pool[rng.random_range(0..gen_pool.len())].clone()),
            shrink: Rc::new(move |v| {
                if *v == pool[0] {
                    Vec::new()
                } else {
                    vec![pool[0].clone()]
                }
            }),
        }
    }

    /// Picks one of the given generators uniformly per draw.
    pub fn one_of(gens: Vec<Gen<T>>) -> Gen<T> {
        let weighted = gens.into_iter().map(|g| (1, g)).collect();
        Gen::weighted(weighted)
    }

    /// Picks one of the given generators with the given relative weights.
    pub fn weighted(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
        assert!(!choices.is_empty(), "weighted needs at least one choice");
        let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "weighted needs a positive total weight");
        Gen::new(move |rng| {
            let mut roll = rng.random_range(0..total);
            for (w, g) in &choices {
                let w = u64::from(*w);
                if roll < w {
                    return g.generate(rng);
                }
                roll -= w;
            }
            unreachable!("roll < total by construction")
        })
    }

    /// A vector of `len` elements drawn from `elem`; shrinks by removing
    /// elements (down to the length floor) and by shrinking elements in
    /// place.
    pub fn vec(elem: Gen<T>, len: RangeInclusive<usize>) -> Gen<Vec<T>> {
        let (lo, hi) = (*len.start(), *len.end());
        let gen_elem = elem.clone();
        Gen {
            generate: Rc::new(move |rng| {
                let n = rng.random_range(lo..=hi);
                (0..n).map(|_| gen_elem.generate(rng)).collect()
            }),
            shrink: Rc::new(move |v: &Vec<T>| {
                let mut out = shrink::vec(v, lo);
                for (i, item) in v.iter().enumerate() {
                    for smaller in elem.shrink(item) {
                        let mut candidate = v.clone();
                        candidate[i] = smaller;
                        out.push(candidate);
                    }
                }
                out
            }),
        }
    }

    /// An order-preserving random subsequence of `pool` with `count`
    /// elements (clamped to the pool size); shrinks by dropping elements
    /// down to the count floor.
    pub fn subsequence(pool: Vec<T>, count: RangeInclusive<usize>) -> Gen<Vec<T>> {
        let lo = (*count.start()).min(pool.len());
        let hi = (*count.end()).min(pool.len());
        let gen_pool = pool;
        Gen {
            generate: Rc::new(move |rng| {
                let k = rng.random_range(lo..=hi);
                let mut picked: Vec<usize> = Vec::with_capacity(k);
                while picked.len() < k {
                    let i = rng.random_range(0..gen_pool.len());
                    if !picked.contains(&i) {
                        picked.push(i);
                    }
                }
                picked.sort_unstable();
                picked.into_iter().map(|i| gen_pool[i].clone()).collect()
            }),
            shrink: Rc::new(move |v: &Vec<T>| shrink::vec(v, lo)),
        }
    }
}

/// A uniform integer in `range` (`lo..hi` or `lo..=hi`); shrinks toward
/// the low end.
pub fn int_in<T, R>(range: R) -> Gen<T>
where
    T: UniformInt + 'static,
    R: SampleRange<T> + Clone + 'static,
{
    let (lo, _) = range.clone().bounds();
    Gen::new(move |rng| rng.random_range(range.clone())).with_shrink(move |&v| {
        if v == lo {
            return Vec::new();
        }
        // Low end first (most aggressive), then halfway, then decrement —
        // the decrement guarantees progress when the property's failure
        // threshold sits between `lo` and `v`.
        let mut out = vec![lo];
        let half = T::from_offset(lo, v.offset_from(lo) / 2);
        if half != lo && half != v {
            out.push(half);
        }
        let dec = T::from_offset(lo, v.offset_from(lo) - 1);
        if dec != lo && dec != half {
            out.push(dec);
        }
        out
    })
}

/// A uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo <= hi, "f64_in needs an ordered range");
    Gen::new(move |rng| lo + rng.random_f64() * (hi - lo)).with_shrink(move |&v| {
        if v == lo {
            return Vec::new();
        }
        let mid = lo + (v - lo) / 2.0;
        if mid > lo && mid < v {
            vec![lo, mid]
        } else {
            vec![lo]
        }
    })
}

/// A string of characters drawn uniformly from `alphabet`, with a length
/// in `len` — the replacement for regex-class strategies like
/// `"[a-z ]{0,8}"`. Shrinks by removing characters down to the floor.
pub fn string_from(alphabet: &str, len: RangeInclusive<usize>) -> Gen<String> {
    assert!(
        !alphabet.is_empty(),
        "string_from needs a non-empty alphabet"
    );
    let chars: Vec<char> = alphabet.chars().collect();
    let (lo, hi) = (*len.start(), *len.end());
    Gen::new(move |rng| {
        let n = rng.random_range(lo..=hi);
        (0..n)
            .map(|_| chars[rng.random_range(0..chars.len())])
            .collect()
    })
    .with_shrink(move |s: &String| shrink::string_min(s, lo))
}

/// A string of arbitrary Unicode scalar values (all planes, controls
/// included) with a length in `len` — the replacement for `\PC`-style
/// strategies. Draws are biased half toward printable ASCII so generated
/// inputs still exercise ordinary text paths. Shrinks by removal.
pub fn unicode_string(len: RangeInclusive<usize>) -> Gen<String> {
    let (lo, hi) = (*len.start(), *len.end());
    Gen::new(move |rng| {
        let n = rng.random_range(lo..=hi);
        let mut s = String::new();
        for _ in 0..n {
            if rng.random_bool(0.5) {
                s.push(char::from(rng.random_range(0x20u8..0x7F)));
            } else {
                // Rejection-sample the surrogate gap.
                loop {
                    if let Some(c) = char::from_u32(rng.random_range(0u32..=0x0010_FFFF)) {
                        s.push(c);
                        break;
                    }
                }
            }
        }
        s
    })
    .with_shrink(move |s: &String| shrink::string_min(s, lo))
}

/// Concatenates `count` draws of `piece` into one string — the common
/// "vec of fragments, then join" shape. Shrinks at the string level by
/// chunk removal, which also minimizes across fragment boundaries.
pub fn concat(piece: Gen<String>, count: RangeInclusive<usize>) -> Gen<String> {
    Gen::vec(piece, count)
        .map(|v| v.concat())
        .with_shrink(|s: &String| shrink::string(s))
}

/// Triple of independent generators; shrinks componentwise.
pub fn zip3<A, B, C>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    let (ga, sa) = (a.generate, a.shrink);
    let (gb, sb) = (b.generate, b.shrink);
    let (gc, sc) = (c.generate, c.shrink);
    Gen {
        generate: Rc::new(move |rng| (ga(rng), gb(rng), gc(rng))),
        shrink: Rc::new(move |(x, y, z)| {
            let mut out: Vec<(A, B, C)> = sa(x)
                .into_iter()
                .map(|x2| (x2, y.clone(), z.clone()))
                .collect();
            out.extend(sb(y).into_iter().map(|y2| (x.clone(), y2, z.clone())));
            out.extend(sc(z).into_iter().map(|z2| (x.clone(), y.clone(), z2)));
            out
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_from_pool_and_shrinks_to_first() {
        let g = Gen::select(vec!["x", "y", "z"]);
        let mut rng = Rng::from_seed(1);
        for _ in 0..50 {
            assert!(["x", "y", "z"].contains(&g.generate(&mut rng)));
        }
        assert_eq!(g.shrink(&"z"), vec!["x"]);
        assert!(g.shrink(&"x").is_empty());
    }

    #[test]
    fn vec_respects_length_bounds() {
        let g = Gen::vec(int_in(0u8..=9), 2..=5);
        let mut rng = Rng::from_seed(2);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((2..=5).contains(&v.len()), "{v:?}");
        }
        for cand in g.shrink(&vec![1, 2, 3, 4]) {
            assert!(cand.len() >= 2);
        }
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let g = Gen::subsequence(vec![1, 2, 3, 4, 5], 1..=3);
        let mut rng = Rng::from_seed(3);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((1..=3).contains(&v.len()), "{v:?}");
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    #[test]
    fn subsequence_clamps_counts_to_pool() {
        let g = Gen::subsequence(vec![7, 8], 1..=9);
        let mut rng = Rng::from_seed(4);
        for _ in 0..20 {
            assert!(g.generate(&mut rng).len() <= 2);
        }
    }

    #[test]
    fn string_from_uses_only_the_alphabet() {
        let g = string_from("ab ", 0..=12);
        let mut rng = Rng::from_seed(5);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(s.chars().all(|c| "ab ".contains(c)), "{s:?}");
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn unicode_string_is_valid_and_bounded() {
        let g = unicode_string(0..=6);
        let mut rng = Rng::from_seed(6);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert!(s.chars().count() <= 6);
        }
    }

    #[test]
    fn f64_in_stays_in_range() {
        let g = f64_in(0.0, 1.0);
        let mut rng = Rng::from_seed(7);
        for _ in 0..200 {
            let x = g.generate(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_shrink_makes_progress() {
        let g = int_in(0u32..=100);
        // From any failing value, some candidate is strictly smaller.
        let cands = g.shrink(&7);
        assert!(cands.contains(&0));
        assert!(cands.iter().all(|&c| c < 7));
        assert!(g.shrink(&0).is_empty());
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let g = int_in(0u8..=9).zip(int_in(0u8..=9));
        let cands = g.shrink(&(3, 4));
        assert!(cands.iter().any(|&(a, b)| a < 3 && b == 4));
        assert!(cands.iter().any(|&(a, b)| a == 3 && b < 4));
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let g = Gen::weighted(vec![(0, Gen::just(1u8)), (5, Gen::just(2u8))]);
        let mut rng = Rng::from_seed(8);
        for _ in 0..100 {
            assert_eq!(g.generate(&mut rng), 2);
        }
    }

    #[test]
    fn concat_joins_pieces() {
        let g = concat(Gen::select(vec!["ab".to_owned()]), 2..=2);
        let mut rng = Rng::from_seed(9);
        assert_eq!(g.generate(&mut rng), "abab");
    }
}
