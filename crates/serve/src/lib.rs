//! # rbd-serve — the fault-tolerant extraction service
//!
//! A long-lived HTTP front for record-boundary discovery, built entirely
//! on the workspace's own crates (no external dependencies): a strict,
//! bounded HTTP/1.1 subset ([`http`]) over `std::net`, with the
//! rbd-pipeline worker pool doing the extraction work and carrying the
//! backpressure ([`server`]).
//!
//! Design goals, in order:
//!
//! 1. **No peer can take the service down.** Every read and write has a
//!    socket timeout and an overall deadline; head and body sizes are
//!    capped before allocation; extraction panics are caught per request.
//! 2. **Overload degrades, never queues unboundedly.** The accept loop
//!    gates on a connection cap; the pool's bounded injector plus shed
//!    policy turn sustained saturation into `503 Retry-After` (or strict-
//!    limits admission), exactly as `rbd-pipeline` does for batch work.
//! 3. **Observability is structural.** Every decision lands in a counter
//!    (`GET /metrics`), and with an audit sink attached, in the typed
//!    [`ServerEvent`](rbd_trace::ServerEvent) stream.
//!
//! See DESIGN.md §12 for the architecture walk-through and the soak
//! harness (`tests/soak.rs`) for the fault-injection acceptance suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod server;

pub use http::{HttpCaps, HttpError, Request, Response};
pub use server::{
    extraction_response_json, ServeConfig, ServeError, ServeReport, Server, ShutdownHandle,
};
