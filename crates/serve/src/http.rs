//! Bounded, deadline-aware HTTP/1.1 request parsing and response writing.
//!
//! This is not a general HTTP implementation — it is the smallest strict
//! subset the extraction service needs, written so that *no* byte sequence a
//! peer can send causes a panic, an unbounded allocation, or an unbounded
//! wait:
//!
//! - the request head is capped ([`HttpCaps::max_head_bytes`] → 431),
//! - the body is capped *before it is read*, from the declared
//!   `Content-Length` ([`HttpCaps::max_body_bytes`] → 413),
//! - every read checks an overall [`Deadline`], so a peer dribbling one
//!   byte per socket-timeout window still gets cut off (slowloris defense),
//! - header lines must be CRLF-terminated; a bare LF anywhere in the head
//!   is rejected outright,
//! - `Content-Length` must be present on `POST` (411), unique (400), and
//!   parse as a `u64` that fits `usize` (400 on garbage or overflow).
//!
//! The service speaks one request per connection and always answers
//! `Connection: close`, which neutralizes request pipelining: any bytes a
//! client stuffs after the declared body are never parsed as a second
//! request.

use rbd_limits::Deadline;
use std::io::{self, ErrorKind, Read, Write};

/// How much of a request the parser will buffer before refusing it.
#[derive(Debug, Clone, Copy)]
pub struct HttpCaps {
    /// Maximum bytes of request line + headers (including the blank-line
    /// terminator). Exceeding it yields 431.
    pub max_head_bytes: usize,
    /// Maximum *declared* body size in bytes. A larger `Content-Length`
    /// yields 413 before any body byte is read.
    pub max_body_bytes: usize,
}

impl Default for HttpCaps {
    fn default() -> Self {
        HttpCaps {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One parsed request. Header names are lowercased; values keep their bytes
/// minus surrounding whitespace.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (must be an absolute path).
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body, exactly `Content-Length` bytes (empty when the
    /// request declared none).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Every variant maps to the status the
/// connection handler answers with — except [`HttpError::Disconnected`],
/// where there is no one left to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Protocol violation: bad request line, bare LF line ending,
    /// malformed or duplicate or overflowing `Content-Length`, truncated
    /// head, body shorter than declared… → 400.
    Malformed(&'static str),
    /// A `POST` without `Content-Length` → 411.
    LengthRequired,
    /// Declared body exceeds the cap → 413, refused before reading.
    BodyTooLarge {
        /// The configured cap in bytes.
        cap: usize,
        /// What the peer declared.
        declared: u64,
    },
    /// Request line + headers exceed the cap → 431.
    HeadTooLarge {
        /// The configured cap in bytes.
        cap: usize,
    },
    /// The per-request deadline or a socket timeout fired → 408.
    TimedOut {
        /// Which phase timed out (`"head"` or `"body"`).
        phase: &'static str,
    },
    /// The peer vanished before sending a full request; nothing to answer.
    Disconnected,
}

impl HttpError {
    /// Status line for this error, or `None` when the peer is gone and no
    /// response can be delivered.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::HeadTooLarge { .. } => Some((431, "Request Header Fields Too Large")),
            HttpError::TimedOut { .. } => Some((408, "Request Timeout")),
            HttpError::Disconnected => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::LengthRequired => write!(f, "POST requires Content-Length"),
            HttpError::BodyTooLarge { cap, declared } => {
                write!(f, "declared body of {declared} bytes exceeds cap of {cap}")
            }
            HttpError::HeadTooLarge { cap } => {
                write!(f, "request head exceeds cap of {cap} bytes")
            }
            HttpError::TimedOut { phase } => write!(f, "timed out reading request {phase}"),
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one request from `stream`, enforcing `caps` and `deadline`.
///
/// Generic over [`Read`] so the parser unit-tests run against byte slices
/// and fault-injecting readers; the server passes `&mut TcpStream` with
/// socket timeouts already armed (a timeout surfaces here as
/// [`ErrorKind::WouldBlock`] / [`ErrorKind::TimedOut`]).
///
/// # Errors
/// Any [`HttpError`]; see the variant docs for the status each maps to.
pub fn read_request<S: Read>(
    stream: &mut S,
    caps: HttpCaps,
    deadline: &Deadline,
) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let head_len = read_head(stream, &mut buf, caps, deadline)?;
    let head = buf.get(..head_len).ok_or(HttpError::Malformed(
        "internal: head length out of range", // unreachable; keeps the parser index-free
    ))?;
    let (method, target, headers) = parse_head(head)?;

    let declared = content_length(&headers)?;
    let wants_body = method == "POST" || method == "PUT";
    let length = match declared {
        Some(n) => n,
        None if wants_body => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if length > caps.max_body_bytes as u64 {
        return Err(HttpError::BodyTooLarge {
            cap: caps.max_body_bytes,
            declared: length,
        });
    }
    // The cap check above bounds `length` by a usize, so this cannot fail;
    // map rather than unwrap to keep the parser panic-free.
    let length = usize::try_from(length).map_err(|_| HttpError::BodyTooLarge {
        cap: caps.max_body_bytes,
        declared: u64::MAX,
    })?;

    // Bytes that arrived in the same segments as the head; anything beyond
    // the declared length is a pipelining attempt and is deliberately
    // dropped (the connection closes after this response).
    let mut body: Vec<u8> = buf.get(head_len..).unwrap_or(&[]).to_vec();
    body.truncate(length);
    read_exactly(stream, &mut body, length, deadline)?;
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Accumulates bytes until the blank-line head terminator, returning the
/// head length (terminator included). Extra body bytes stay in `buf`.
fn read_head<S: Read>(
    stream: &mut S,
    buf: &mut Vec<u8>,
    caps: HttpCaps,
    deadline: &Deadline,
) -> Result<usize, HttpError> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_terminator(buf) {
            // Only the head region is line-ending-checked: bytes past the
            // terminator are body payload and may contain anything.
            if bare_lf(buf.get(..end).unwrap_or(buf)) {
                return Err(HttpError::Malformed("header lines must end in CRLF"));
            }
            return Ok(end);
        }
        if bare_lf(buf) {
            return Err(HttpError::Malformed("header lines must end in CRLF"));
        }
        if buf.len() > caps.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                cap: caps.max_head_bytes,
            });
        }
        if deadline.is_expired() {
            return Err(HttpError::TimedOut { phase: "head" });
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Err(HttpError::Disconnected),
            Ok(0) => return Err(HttpError::Malformed("truncated request head")),
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::TimedOut { phase: "head" });
            }
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
}

/// Position just past the first `\r\n\r\n`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// True when the buffer contains an LF not preceded by CR — illegal
/// anywhere in a request head.
fn bare_lf(buf: &[u8]) -> bool {
    buf.iter()
        .enumerate()
        .any(|(i, &b)| b == b'\n' && (i == 0 || buf.get(i - 1).copied() != Some(b'\r')))
}

/// Parsed request line plus lowercased header pairs.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Splits the head into (method, target, lowercased headers).
fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(HttpError::Malformed("empty request head"))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase() || c == '-') {
        return Err(HttpError::Malformed("malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(
            "request target must be an absolute path",
        ));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the head terminator's blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line without a colon"))?;
        if name.is_empty() || name.chars().any(|c| c.is_ascii_whitespace()) {
            return Err(HttpError::Malformed("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), target.to_string(), headers))
}

/// Extracts and validates `Content-Length`: at most one, parseable as
/// `u64`. Garbage and overflow are both protocol errors, not panics.
fn content_length(headers: &[(String, String)]) -> Result<Option<u64>, HttpError> {
    let mut found: Option<u64> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        if found.is_some() {
            return Err(HttpError::Malformed("duplicate Content-Length"));
        }
        let n = value
            .parse::<u64>()
            .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        found = Some(n);
    }
    Ok(found)
}

/// Extends `body` (already holding a prefix) to exactly `length` bytes.
fn read_exactly<S: Read>(
    stream: &mut S,
    body: &mut Vec<u8>,
    length: usize,
    deadline: &Deadline,
) -> Result<(), HttpError> {
    let mut chunk = [0u8; 4096];
    while body.len() < length {
        if deadline.is_expired() {
            return Err(HttpError::TimedOut { phase: "body" });
        }
        let want = (length - body.len()).min(chunk.len());
        match stream.read(chunk.get_mut(..want).unwrap_or(&mut [])) {
            Ok(0) => return Err(HttpError::Malformed("body shorter than Content-Length")),
            Ok(n) => body.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::TimedOut { phase: "body" });
            }
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
    Ok(())
}

/// A response ready to serialize. The service always closes the connection
/// after one exchange, so `Connection: close` is unconditional.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Optional `Retry-After` header in seconds (set on 503).
    pub retry_after_s: Option<u64>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim. Names must
    /// be valid header tokens; values must not contain CR or LF.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status line and body.
    pub fn json(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            retry_after_s: None,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (Prometheus exposition uses
    /// `text/plain; version=0.0.4`).
    pub fn text(
        status: u16,
        reason: &'static str,
        content_type: &'static str,
        body: String,
    ) -> Self {
        Response {
            status,
            reason,
            retry_after_s: None,
            content_type,
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra response header. Values containing CR or LF are
    /// dropped rather than risk header injection.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        if !value.contains(['\r', '\n']) {
            self.extra_headers.push((name, value));
        }
        self
    }
}

/// Serializes `response` to `stream`.
///
/// # Errors
/// Propagates I/O errors (including socket write timeouts); the caller
/// counts them — a peer that vanishes before reading its response is
/// routine, not fatal.
pub fn write_response<S: Write>(stream: &mut S, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    if let Some(seconds) = response.retry_after_s {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    for (name, value) in &response.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far() -> Deadline {
        Deadline::after(Duration::from_secs(30))
    }

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = raw;
        read_request(&mut cursor, HttpCaps::default(), &far())
    }

    #[test]
    fn well_formed_post_parses() {
        let req = parse(b"POST /extract HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/extract");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn zero_length_body_parses_empty() {
        let req = parse(b"POST /extract HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .expect("zero-length body is well-formed at the protocol layer");
        assert!(req.body.is_empty());
    }

    // Satellite: truncated request line → 400, never a hang.
    #[test]
    fn truncated_request_line_is_400() {
        let err = parse(b"GET /ex").expect_err("truncated");
        assert_eq!(err, HttpError::Malformed("truncated request head"));
        assert_eq!(err.status(), Some((400, "Bad Request")));
    }

    // Satellite: POST with no Content-Length → 411.
    #[test]
    fn missing_content_length_on_post_is_411() {
        let err = parse(b"POST /extract HTTP/1.1\r\nHost: x\r\n\r\n").expect_err("no CL");
        assert_eq!(err, HttpError::LengthRequired);
        assert_eq!(err.status().map(|(s, _)| s), Some(411));
    }

    // Satellite: duplicate Content-Length → 400.
    #[test]
    fn duplicate_content_length_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .expect_err("duplicate CL");
        assert_eq!(err, HttpError::Malformed("duplicate Content-Length"));
    }

    // Satellite: Content-Length that overflows u64 → 400, not a panic.
    #[test]
    fn content_length_overflow_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n")
            .expect_err("overflowing CL");
        assert_eq!(err, HttpError::Malformed("unparseable Content-Length"));
        assert_eq!(err.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn negative_and_garbage_content_length_are_400() {
        for bad in ["-5", "abc", "5, 5", "0x10"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            let err = parse(raw.as_bytes()).expect_err("garbage CL");
            assert_eq!(
                err,
                HttpError::Malformed("unparseable Content-Length"),
                "{bad}"
            );
        }
    }

    // Satellite: headers separated by bare LF instead of CRLF → 400.
    #[test]
    fn bare_lf_line_endings_are_400() {
        let err = parse(b"GET / HTTP/1.1\nHost: x\n\n").expect_err("bare LF");
        assert_eq!(err, HttpError::Malformed("header lines must end in CRLF"));
    }

    #[test]
    fn garbage_request_line_is_400() {
        let err = parse(b"\x00\x01\x02garbage\r\n\r\n").expect_err("garbage");
        assert_eq!(err.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn lowercase_method_is_400() {
        let err = parse(b"post /extract HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .expect_err("lowercase method");
        assert_eq!(err, HttpError::Malformed("malformed method token"));
    }

    #[test]
    fn relative_target_is_400() {
        let err = parse(b"GET extract HTTP/1.1\r\n\r\n").expect_err("relative target");
        assert_eq!(
            err,
            HttpError::Malformed("request target must be an absolute path")
        );
    }

    #[test]
    fn header_flood_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..4096 {
            raw.extend_from_slice(format!("X-Flood-{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).expect_err("flood");
        assert!(matches!(err, HttpError::HeadTooLarge { .. }), "{err:?}");
        assert_eq!(err.status().map(|(s, _)| s), Some(431));
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let caps = HttpCaps {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024,
        };
        // Only the head is supplied: the parser must refuse from the
        // declaration alone instead of waiting for 1 MiB that never comes.
        let mut cursor: &[u8] = b"POST / HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n";
        let err = read_request(&mut cursor, caps, &far()).expect_err("too large");
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                cap: 1024,
                declared: 1_048_576
            }
        );
        assert_eq!(err.status().map(|(s, _)| s), Some(413));
    }

    #[test]
    fn body_shorter_than_declared_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").expect_err("short");
        assert_eq!(
            err,
            HttpError::Malformed("body shorter than Content-Length")
        );
    }

    #[test]
    fn pipelined_second_request_is_dropped() {
        let req =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n")
                .expect("first request parses");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn immediate_disconnect_is_disconnected() {
        let err = parse(b"").expect_err("eof");
        assert_eq!(err, HttpError::Disconnected);
        assert_eq!(err.status(), None);
    }

    #[test]
    fn expired_deadline_times_out_instead_of_hanging() {
        struct NeverReady;
        impl Read for NeverReady {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::WouldBlock, "socket timeout"))
            }
        }
        let deadline = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = read_request(&mut NeverReady, HttpCaps::default(), &deadline)
            .expect_err("must time out");
        assert_eq!(err, HttpError::TimedOut { phase: "head" });
        assert_eq!(err.status().map(|(s, _)| s), Some(408));
    }

    #[test]
    fn socket_timeout_maps_to_408() {
        struct HeadThenStall(Vec<u8>);
        impl Read for HeadThenStall {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Err(io::Error::new(ErrorKind::TimedOut, "recv timeout"));
                }
                let n = self.0.len().min(buf.len());
                let rest = self.0.split_off(n);
                buf[..n].copy_from_slice(&self.0);
                self.0 = rest;
                Ok(n)
            }
        }
        let mut stream =
            HeadThenStall(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial".to_vec());
        let err = read_request(&mut stream, HttpCaps::default(), &far()).expect_err("stall");
        assert_eq!(err, HttpError::TimedOut { phase: "body" });
    }

    #[test]
    fn response_serializes_with_connection_close_and_retry_after() {
        let mut out = Vec::new();
        let mut shed = Response::json(503, "Service Unavailable", "{\"error\":true}".to_string());
        shed.retry_after_s = Some(1);
        write_response(&mut out, &shed).expect("write to vec");
        let text = String::from_utf8(out).expect("ascii");
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(
            text.contains("Content-Type: application/json\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 14\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"error\":true}"), "{text}");
    }

    #[test]
    fn response_carries_content_type_and_extra_headers() {
        let mut out = Vec::new();
        let response = Response::text(200, "OK", "text/plain; version=0.0.4", "x 1\n".to_string())
            .with_header("x-rbd-trace-id", "00000000000000ff".to_string());
        write_response(&mut out, &response).expect("write to vec");
        let text = String::from_utf8(out).expect("ascii");
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{text}"
        );
        assert!(
            text.contains("x-rbd-trace-id: 00000000000000ff\r\n"),
            "{text}"
        );
    }

    #[test]
    fn header_values_with_line_breaks_are_dropped() {
        let response = Response::json(200, "OK", String::new())
            .with_header("x-rbd-trace-id", "evil\r\nX-Injected: 1".to_string());
        assert!(response.extra_headers.is_empty());
    }
}
