//! The long-lived extraction service: accept loop, admission control,
//! request routing, and graceful drain.
//!
//! ## Shape
//!
//! ```text
//!  accept loop (this thread)          rbd-pipeline pool (N workers)
//!  ───────────────────────           ───────────────────────────────
//!  accept → arm socket deadlines
//!         → connection-count gate ──refuse──▶ 503 + Retry-After
//!         → try_submit ────────────queue/shed─▶ 503 + Retry-After
//!                      └──────────admitted───▶ worker: parse request
//!                                              → route → extract
//!                                              → write response → close
//! ```
//!
//! Each accepted connection is one pool job; the worker owns the socket
//! end to end, so backpressure is structural — when every worker is busy
//! and the bounded injector is full, new connections are *refused* with a
//! retryable status instead of piling up in unbounded buffers.
//!
//! ## Fault containment
//!
//! - Socket read/write timeouts and an overall per-request [`Deadline`]
//!   bound every peer interaction (slowloris defense, 408).
//! - The request head and body are capped before allocation (431 / 413).
//! - An extraction panic is caught at the request boundary, answered with
//!   500, traced as [`ServerEvent::WorkerPanic`], and counted — the worker
//!   thread survives.
//! - Shutdown (via [`ShutdownHandle`] or `POST /shutdown`) stops the
//!   accept loop, then drains in-flight work under
//!   [`ServeConfig::drain_deadline`]; wedged workers are abandoned rather
//!   than holding the process open.

use crate::http::{self, HttpCaps, HttpError, Request, Response};
use rbd_core::{DiscoveryError, Extraction, ExtractorConfig, Limits, Record, RecordExtractor};
use rbd_json::Json;
use rbd_limits::Deadline;
use rbd_pipeline::{Admission, Pool, PoolConfig, PoolError, ShedMode, ShedPolicy, TrySubmitError};
use rbd_trace::{MetricsSink, NullSink, RegistrySnapshot, ServerEvent, TraceEvent, TraceSink};
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the nonblocking accept loop polls for new connections and
/// re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How long a refused connection is parked after its 503 so the peer can
/// read the response before we close. Closing a socket that still has
/// unread request bytes makes the kernel send RST, which can discard the
/// response from the peer's receive buffer — the parking window lets the
/// exchange settle without blocking the accept thread.
const PARTING_GRACE: Duration = Duration::from_millis(250);

/// Parked refused connections are capped; past this, new refusals close
/// immediately (an RST to a peer we are shedding under flood is fine).
const PARTING_MAX: usize = 64;

/// Service sizing and fault-tolerance policy. Every bound has a default
/// that keeps a misbehaving peer from taking the service down; `rbd serve`
/// exposes the ones operators actually tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Extraction worker threads.
    pub workers: usize,
    /// Bounded injector capacity — connections admitted but not yet
    /// picked up by a worker.
    pub queue_capacity: usize,
    /// Connections in flight (queued + being served) before the accept
    /// loop starts refusing with 503.
    pub max_connections: usize,
    /// HTTP parsing caps (head → 431, body → 413).
    pub caps: HttpCaps,
    /// Socket read/write timeout armed on every accepted connection.
    pub io_timeout: Duration,
    /// Overall wall-clock budget for reading one request (408 past it).
    pub request_deadline: Duration,
    /// How long graceful shutdown waits for in-flight requests before
    /// abandoning wedged workers.
    pub drain_deadline: Duration,
    /// Load-shedding policy forwarded to the pipeline pool.
    pub shed: Option<ShedPolicy>,
    /// `Retry-After` seconds sent with every 503.
    pub retry_after_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 256,
            caps: HttpCaps::default(),
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            shed: Some(ShedPolicy {
                watermark: 48,
                sustained: Duration::from_millis(100),
                mode: ShedMode::Drop,
            }),
            retry_after_s: 1,
        }
    }
}

/// Why the service could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener failed.
    Bind(String),
    /// The worker pool could not start.
    Pool(PoolError),
    /// Building the extraction profiles failed (ontology/pattern errors).
    Extractor(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind failed: {e}"),
            ServeError::Pool(e) => write!(f, "worker pool failed: {e}"),
            ServeError::Extractor(e) => write!(f, "extractor setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What [`Server::run`] hands back after the drain completes.
#[derive(Debug)]
pub struct ServeReport {
    /// Connections that finished during the drain window.
    pub drained: usize,
    /// Workers abandoned at the drain deadline (0 on a clean drain).
    pub abandoned: usize,
    /// Workers that died outside a job (should always be zero).
    pub worker_panics: usize,
    /// Server counters merged with the pool's per-worker registries.
    pub metrics: RegistrySnapshot,
}

/// Flips the accept loop's shutdown flag from another thread — the
/// in-process analogue of SIGTERM (which `std` cannot trap portably).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests graceful shutdown: stop accepting, drain, exit.
    pub fn trigger(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The three extraction profiles a request can select with the
/// `x-rbd-limits` header. Built once at startup; extractors are reused
/// across requests (the paper's "configured once" contract).
struct Profiles {
    default_profile: RecordExtractor,
    strict: RecordExtractor,
    unbounded: RecordExtractor,
}

/// State shared between the accept loop and every worker.
struct Ctx {
    profiles: Profiles,
    metrics: Arc<MetricsSink>,
    audit: Arc<dyn TraceSink>,
    active: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    caps: HttpCaps,
    request_deadline: Duration,
    retry_after_s: u64,
}

/// Decrements the in-flight connection count when the handler returns —
/// including by panic, since the pool's `catch_unwind` runs this `Drop`
/// during unwinding. Without it a single panicking request would leak a
/// connection slot forever.
struct ActiveGuard<'a> {
    active: &'a AtomicUsize,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The extraction service. [`Server::bind`] starts the workers and binds
/// the listener; [`Server::run`] blocks in the accept loop until shutdown.
pub struct Server {
    listener: TcpListener,
    pool: Pool<TcpStream, ()>,
    ctx: Arc<Ctx>,
    config: ServeConfig,
}

impl Server {
    /// Binds the listener, builds the extraction profiles, and starts the
    /// worker pool. `audit` receives [`ServerEvent`]s when enabled (pass
    /// `None` for metrics-only operation — the right default for a
    /// long-lived service, since event collection grows without bound).
    ///
    /// # Errors
    /// [`ServeError`] when the address cannot be bound, the extractors
    /// cannot be built, or the pool cannot spawn workers.
    pub fn bind(
        config: ServeConfig,
        audit: Option<Arc<dyn TraceSink>>,
    ) -> Result<Self, ServeError> {
        let metrics = Arc::new(MetricsSink::new());
        let sink: Arc<dyn TraceSink> = Arc::clone(&metrics) as Arc<dyn TraceSink>;
        let profile = |limits: Limits| -> Result<RecordExtractor, ServeError> {
            RecordExtractor::new(
                ExtractorConfig::default()
                    .with_limits(limits)
                    .with_sink(Arc::clone(&sink)),
            )
            .map_err(|e| ServeError::Extractor(e.to_string()))
        };
        let profiles = Profiles {
            default_profile: profile(Limits::default())?,
            strict: profile(Limits::strict())?,
            unbounded: profile(Limits::unbounded())?,
        };

        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(e.to_string()))?;

        let ctx = Arc::new(Ctx {
            profiles,
            metrics: Arc::clone(&metrics),
            audit: audit.unwrap_or_else(|| Arc::new(NullSink)),
            active: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            caps: config.caps,
            request_deadline: config.request_deadline,
            retry_after_s: config.retry_after_s,
        });

        let mut pool_config = PoolConfig::with_workers(config.workers)
            .with_queue_capacity(config.queue_capacity)
            .detached();
        if let Some(shed) = config.shed {
            pool_config = pool_config.with_shed(shed);
        }
        let runner_ctx = Arc::clone(&ctx);
        let pool = Pool::new(
            pool_config,
            move |stream: TcpStream, admission| handle_connection(&runner_ctx, stream, admission),
            Arc::clone(&metrics) as Arc<dyn TraceSink>,
        )
        .map_err(ServeError::Pool)?;

        Ok(Server {
            listener,
            pool,
            ctx,
            config,
        })
    }

    /// The bound address — the actual port when the config asked for 0.
    ///
    /// # Errors
    /// Propagates the OS error if the socket has gone bad since binding.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that requests graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shutdown: Arc::clone(&self.ctx.shutdown),
        }
    }

    /// Live server counters (also served at `GET /metrics`).
    pub fn metrics(&self) -> RegistrySnapshot {
        self.ctx.metrics.registry().typed_snapshot()
    }

    /// Runs the accept loop until shutdown is requested, then drains
    /// in-flight requests under the drain deadline and returns the final
    /// report. Consumes the server: after `run` the listener is closed.
    pub fn run(self) -> ServeReport {
        let Server {
            listener,
            pool,
            ctx,
            config,
        } = self;
        let mut parting: Vec<(TcpStream, Instant)> = Vec::new();
        while !ctx.shutdown.load(Ordering::SeqCst) {
            reap_parting(&mut parting);
            match listener.accept() {
                Ok((stream, peer)) => {
                    // The lint rule `concurrency` (serve tier) requires the
                    // deadlines armed in the same function as the accept:
                    // an unarmed stream must never escape this scope.
                    let armed = stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(config.io_timeout)))
                        .and_then(|()| stream.set_write_timeout(Some(config.io_timeout)));
                    match armed {
                        Ok(()) => admit(&ctx, &pool, &config, stream, peer, &mut parting),
                        Err(_) => ctx.metrics.add("serve_accept_errors", 1),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(_) => {
                    ctx.metrics.add("serve_accept_errors", 1);
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        drop(parting);

        // Stop accepting before draining: closing the listener makes new
        // connection attempts fail fast instead of hanging in the backlog.
        drop(listener);
        let in_flight = ctx.active.load(Ordering::SeqCst);
        let drain_started = Instant::now();
        let report = pool.shutdown_within(config.drain_deadline);
        let remaining = ctx.active.load(Ordering::SeqCst);
        let drained = in_flight.saturating_sub(remaining);
        let elapsed_ms = u64::try_from(drain_started.elapsed().as_millis()).unwrap_or(u64::MAX);
        ctx.metrics
            .add("serve_drain_abandoned", report.abandoned as u64);
        if ctx.audit.enabled() {
            ctx.audit.event(TraceEvent::Server(ServerEvent::Drained {
                drained,
                abandoned: report.abandoned,
                elapsed_ms,
            }));
        }
        let mut merged = rbd_trace::Registry::new();
        merged.merge(&report.metrics);
        merged.merge(&ctx.metrics.registry().typed_snapshot());
        ServeReport {
            drained,
            abandoned: report.abandoned,
            worker_panics: report.worker_panics,
            metrics: merged.typed_snapshot(),
        }
    }
}

/// Connection-count gate and pool submission. Runs on the accept thread,
/// so everything here must be non-blocking.
fn admit(
    ctx: &Arc<Ctx>,
    pool: &Pool<TcpStream, ()>,
    config: &ServeConfig,
    stream: TcpStream,
    peer: SocketAddr,
    parting: &mut Vec<(TcpStream, Instant)>,
) {
    let active_now = ctx.active.load(Ordering::SeqCst);
    if active_now >= config.max_connections {
        ctx.metrics.add("serve_conns_refused", 1);
        shed_event(ctx, pool.queue_depth());
        refuse(ctx, stream, parting);
        return;
    }
    ctx.active.fetch_add(1, Ordering::SeqCst);
    ctx.metrics.add("serve_conns_accepted", 1);
    if ctx.audit.enabled() {
        ctx.audit
            .event(TraceEvent::Server(ServerEvent::ConnAccepted {
                peer: peer.to_string(),
                active: active_now + 1,
            }));
    }
    match pool.try_submit(stream) {
        Ok(_id) => {}
        Err(TrySubmitError::QueueFull(stream)) => {
            bounce(ctx, stream, pool.queue_depth(), parting);
        }
        Err(TrySubmitError::Shed { job, depth, .. }) => {
            bounce(ctx, job, depth, parting);
        }
        Err(TrySubmitError::Closed(stream)) => {
            ctx.active.fetch_sub(1, Ordering::SeqCst);
            drop(stream);
        }
    }
}

/// Rolls back an admission the pool refused, then refuses the peer.
fn bounce(ctx: &Ctx, stream: TcpStream, depth: usize, parting: &mut Vec<(TcpStream, Instant)>) {
    ctx.active.fetch_sub(1, Ordering::SeqCst);
    ctx.metrics.add("serve_requests_shed", 1);
    shed_event(ctx, depth);
    refuse(ctx, stream, parting);
}

fn shed_event(ctx: &Ctx, depth: usize) {
    if ctx.audit.enabled() {
        ctx.audit
            .event(TraceEvent::Server(ServerEvent::RequestShed {
                depth,
                retry_after_s: ctx.retry_after_s,
            }));
    }
}

/// Answers 503 + `Retry-After` on the accept thread, then parks the
/// socket in `parting` so it closes cleanly (see [`PARTING_GRACE`]). The
/// socket already has a write timeout, so a peer that refuses to read
/// cannot stall the accept loop for longer than one timeout window.
fn refuse(ctx: &Ctx, mut stream: TcpStream, parting: &mut Vec<(TcpStream, Instant)>) {
    let mut response = Response::json(
        503,
        "Service Unavailable",
        error_json("overload", "service is at capacity; retry shortly"),
    );
    response.retry_after_s = Some(ctx.retry_after_s);
    send(ctx, &mut stream, &response);
    let parked = parting.len() < PARTING_MAX
        && stream.shutdown(Shutdown::Write).is_ok()
        && stream.set_nonblocking(true).is_ok();
    if parked {
        parting.push((stream, Instant::now()));
    }
}

/// Polls parked refused connections: discards any late request bytes and
/// drops each socket once the peer closes (clean FIN) or its grace
/// expires. Non-blocking — runs on the accept thread every poll tick.
fn reap_parting(parting: &mut Vec<(TcpStream, Instant)>) {
    parting.retain_mut(|(stream, since)| {
        let mut scratch = [0u8; 512];
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => return false,
                Ok(_n) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        since.elapsed() < PARTING_GRACE
    });
}

/// The per-connection worker job: parse one request, route it, respond,
/// close. Never panics outward except through the pool's own isolation.
fn handle_connection(ctx: &Ctx, mut stream: TcpStream, admission: Admission) {
    let _guard = ActiveGuard {
        active: &ctx.active,
    };
    let deadline = Deadline::after(ctx.request_deadline);
    match http::read_request(&mut stream, ctx.caps, &deadline) {
        Ok(request) => route(ctx, &mut stream, &request, admission),
        Err(error) => {
            match &error {
                HttpError::TimedOut { phase } => {
                    ctx.metrics.add("serve_timeouts", 1);
                    if ctx.audit.enabled() {
                        ctx.audit.event(TraceEvent::Server(ServerEvent::Deadline {
                            phase: (*phase).to_string(),
                            elapsed_ms: deadline.elapsed_ms() as u64,
                        }));
                    }
                }
                HttpError::Disconnected => ctx.metrics.add("serve_disconnects", 1),
                HttpError::Malformed(_)
                | HttpError::LengthRequired
                | HttpError::BodyTooLarge { .. }
                | HttpError::HeadTooLarge { .. } => {
                    ctx.metrics.add("serve_requests_client_error", 1);
                }
            }
            if let Some((status, reason)) = error.status() {
                let response =
                    Response::json(status, reason, error_json("http", &error.to_string()));
                send(ctx, &mut stream, &response);
                // The request was not fully read (flood, oversized body,
                // garbage): drain leftovers with a short budget so closing
                // doesn't RST the error response out from under the peer.
                drain_politely(&mut stream);
            }
        }
    }
}

/// Bounded post-response drain for connections whose request was never
/// fully consumed: half-close the write side, then discard inbound bytes
/// until the peer closes, a short timeout fires, or a byte budget runs
/// out. Runs on a worker thread, so a brief blocking wait is fine.
fn drain_politely(stream: &mut TcpStream) {
    if stream.shutdown(Shutdown::Write).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .is_err()
    {
        return;
    }
    let mut scratch = [0u8; 4096];
    let mut budget: usize = 256 * 1024;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn route(ctx: &Ctx, stream: &mut TcpStream, request: &Request, admission: Admission) {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/extract") => extract(ctx, stream, request, admission),
        ("GET", "/healthz") => {
            let body = Json::object([
                ("status", Json::Str("ok".to_string())),
                (
                    "active",
                    Json::UInt(ctx.active.load(Ordering::SeqCst) as u64),
                ),
            ])
            .to_string();
            send(ctx, stream, &Response::json(200, "OK", body));
        }
        ("GET", "/metrics") => {
            send(ctx, stream, &Response::json(200, "OK", metrics_json(ctx)));
        }
        ("POST", "/shutdown") => {
            let body = Json::object([("status", Json::Str("draining".to_string()))]).to_string();
            send(ctx, stream, &Response::json(200, "OK", body));
            ctx.shutdown.store(true, Ordering::SeqCst);
        }
        (_method, "/extract" | "/healthz" | "/metrics" | "/shutdown") => {
            ctx.metrics.add("serve_requests_client_error", 1);
            send(
                ctx,
                stream,
                &Response::json(
                    405,
                    "Method Not Allowed",
                    error_json("method", "method not allowed for this endpoint"),
                ),
            );
        }
        (_method, _target) => {
            ctx.metrics.add("serve_requests_client_error", 1);
            send(
                ctx,
                stream,
                &Response::json(
                    404,
                    "Not Found",
                    error_json("not_found", "unknown endpoint"),
                ),
            );
        }
    }
}

/// `POST /extract`: run record-boundary discovery on the body under the
/// selected limits profile, with panic isolation at the request boundary.
fn extract(ctx: &Ctx, stream: &mut TcpStream, request: &Request, admission: Admission) {
    let Ok(html) = std::str::from_utf8(&request.body) else {
        ctx.metrics.add("serve_requests_client_error", 1);
        send(
            ctx,
            stream,
            &Response::json(
                400,
                "Bad Request",
                error_json("encoding", "request body is not valid UTF-8"),
            ),
        );
        return;
    };
    let extractor = profile_for(ctx, request, admission);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        extractor.extract_records(html)
    }));
    match outcome {
        Err(payload) => {
            let message = panic_message(&payload);
            ctx.metrics.add("serve_panics", 1);
            if ctx.audit.enabled() {
                ctx.audit
                    .event(TraceEvent::Server(ServerEvent::WorkerPanic {
                        message: message.clone(),
                    }));
            }
            send(
                ctx,
                stream,
                &Response::json(500, "Internal Server Error", error_json("panic", &message)),
            );
        }
        Ok(Err(error)) => {
            ctx.metrics.add("serve_requests_unprocessable", 1);
            send(
                ctx,
                stream,
                &Response::json(
                    422,
                    "Unprocessable Entity",
                    error_json(discovery_kind(&error), &error.to_string()),
                ),
            );
        }
        Ok(Ok(extraction)) => {
            ctx.metrics.add("serve_requests_ok", 1);
            send(
                ctx,
                stream,
                &Response::json(200, "OK", extraction_response_json(&extraction).to_string()),
            );
        }
    }
}

/// Picks the limits profile: strict admission (shed pressure) wins, then
/// the `x-rbd-limits` header; an unrecognized value degrades to the
/// default profile with a counter rather than failing the request.
fn profile_for<'a>(ctx: &'a Ctx, request: &Request, admission: Admission) -> &'a RecordExtractor {
    if let Admission::Strict { .. } = admission {
        ctx.metrics.add("serve_admitted_strict", 1);
        return &ctx.profiles.strict;
    }
    match request.header("x-rbd-limits") {
        None | Some("default") => &ctx.profiles.default_profile,
        Some("strict") => &ctx.profiles.strict,
        Some("unbounded") => &ctx.profiles.unbounded,
        Some(_other) => {
            ctx.metrics.add("serve_limits_degraded", 1);
            &ctx.profiles.default_profile
        }
    }
}

/// Writes a response, counting (never propagating) write failures — a
/// peer that vanishes before reading its response is routine.
fn send(ctx: &Ctx, stream: &mut TcpStream, response: &Response) {
    if http::write_response(stream, response).is_err() {
        ctx.metrics.add("serve_write_errors", 1);
    }
}

/// The stable error body shape: `{"error":{"kind":…,"message":…}}`.
fn error_json(kind: &str, message: &str) -> String {
    Json::object([(
        "error",
        Json::object([
            ("kind", Json::Str(kind.to_string())),
            ("message", Json::Str(message.to_string())),
        ]),
    )])
    .to_string()
}

/// Discriminant for the 422 body, mirroring [`DiscoveryError`].
fn discovery_kind(error: &DiscoveryError) -> &'static str {
    match error {
        DiscoveryError::EmptyDocument => "empty_document",
        DiscoveryError::NoCandidates => "no_candidates",
        DiscoveryError::NoConsensus => "no_consensus",
        DiscoveryError::Pattern(_) => "pattern",
        DiscoveryError::Limit(_) => "limit",
    }
}

/// Flattens a panic payload to text, matching the pipeline's convention.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The `200 OK` body for `/extract`, and the soak harness's comparison
/// key: the same extraction must serialize byte-identically whether it
/// ran through the service or the serial engine.
pub fn extraction_response_json(extraction: &Extraction) -> Json {
    Json::object([
        ("separator", Json::Str(extraction.outcome.separator.clone())),
        ("preamble", Json::Bool(extraction.preamble.is_some())),
        (
            "records",
            Json::array(extraction.records.iter().map(record_json)),
        ),
        ("degraded", Json::UInt(extraction.degradation.len() as u64)),
    ])
}

fn record_json(record: &Record) -> Json {
    Json::object([
        ("start", Json::UInt(record.start as u64)),
        ("end", Json::UInt(record.end as u64)),
        ("text", Json::Str(record.text.clone())),
    ])
}

/// The `GET /metrics` body: a small curated `server` block plus the full
/// registry snapshot (server counters and extraction/pipeline metrics).
fn metrics_json(ctx: &Ctx) -> String {
    let registry = ctx.metrics.registry();
    Json::object([
        (
            "server",
            Json::object([
                (
                    "active",
                    Json::UInt(ctx.active.load(Ordering::SeqCst) as u64),
                ),
                (
                    "accepted",
                    Json::UInt(registry.counter("serve_conns_accepted")),
                ),
                (
                    "shed",
                    Json::UInt(
                        registry.counter("serve_requests_shed")
                            + registry.counter("serve_conns_refused"),
                    ),
                ),
                ("timeouts", Json::UInt(registry.counter("serve_timeouts"))),
                ("panics", Json::UInt(registry.counter("serve_panics"))),
            ]),
        ),
        ("metrics", registry.typed_snapshot().to_json()),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn start(
        config: ServeConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServeReport>,
    ) {
        let server = Server::bind(config, None).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join)
    }

    fn talk(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("client read timeout");
        stream.write_all(raw).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    fn post_extract(addr: SocketAddr, html: &str) -> String {
        let raw = format!(
            "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        talk(addr, raw.as_bytes())
    }

    #[test]
    fn serves_extraction_health_metrics_and_shuts_down() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 2,
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        });

        let html = "<html><body>\
                    <h2>A</h2><p>alpha</p>\
                    <h2>B</h2><p>beta</p>\
                    <h2>C</h2><p>gamma</p>\
                    </body></html>";
        let ok = post_extract(addr, html);
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("\"separator\""), "{ok}");

        let health = talk(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        let metrics = talk(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(metrics.contains("\"accepted\""), "{metrics}");
        assert!(metrics.contains("serve_requests_ok"), "{metrics}");

        let missing = talk(addr, b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong_method = talk(addr, b"GET /extract HTTP/1.1\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");

        handle.trigger();
        let report = join.join().expect("server thread");
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.abandoned, 0);
        assert!(report.metrics.counters.get("serve_requests_ok").copied() >= Some(1));
    }

    #[test]
    fn empty_body_is_422_and_shutdown_endpoint_drains() {
        let (addr, _handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let unprocessable = post_extract(addr, "");
        assert!(unprocessable.starts_with("HTTP/1.1 422"), "{unprocessable}");
        assert!(
            unprocessable.contains("\"kind\":\"empty_document\""),
            "{unprocessable}"
        );

        let bye = talk(
            addr,
            b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(bye.starts_with("HTTP/1.1 200"), "{bye}");
        let report = join.join().expect("server thread");
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn unknown_limits_profile_degrades_not_fails() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let html = "<html><body><h2>A</h2><p>x</p><h2>B</h2><p>y</p></body></html>";
        let raw = format!(
            "POST /extract HTTP/1.1\r\nx-rbd-limits: turbo\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        let out = talk(addr, raw.as_bytes());
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        handle.trigger();
        let report = join.join().expect("server thread");
        assert_eq!(
            report
                .metrics
                .counters
                .get("serve_limits_degraded")
                .copied(),
            Some(1)
        );
    }
}
