//! The long-lived extraction service: accept loop, admission control,
//! request routing, and graceful drain.
//!
//! ## Shape
//!
//! ```text
//!  accept loop (this thread)          rbd-pipeline pool (N workers)
//!  ───────────────────────           ───────────────────────────────
//!  accept → arm socket deadlines
//!         → connection-count gate ──refuse──▶ 503 + Retry-After
//!         → try_submit ────────────queue/shed─▶ 503 + Retry-After
//!                      └──────────admitted───▶ worker: parse request
//!                                              → route → extract
//!                                              → write response → close
//! ```
//!
//! Each accepted connection is one pool job; the worker owns the socket
//! end to end, so backpressure is structural — when every worker is busy
//! and the bounded injector is full, new connections are *refused* with a
//! retryable status instead of piling up in unbounded buffers.
//!
//! ## Fault containment
//!
//! - Socket read/write timeouts and an overall per-request [`Deadline`]
//!   bound every peer interaction (slowloris defense, 408).
//! - The request head and body are capped before allocation (431 / 413).
//! - An extraction panic is caught at the request boundary, answered with
//!   500, traced as [`ServerEvent::WorkerPanic`], and counted — the worker
//!   thread survives.
//! - Shutdown (via [`ShutdownHandle`] or `POST /shutdown`) stops the
//!   accept loop, then drains in-flight work under
//!   [`ServeConfig::drain_deadline`]; wedged workers are abandoned rather
//!   than holding the process open.

use crate::http::{self, HttpCaps, HttpError, Request, Response};
use rbd_core::{DiscoveryError, Extraction, ExtractorConfig, Limits, Record, RecordExtractor};
use rbd_json::Json;
use rbd_limits::Deadline;
use rbd_pipeline::{Admission, Pool, PoolConfig, PoolError, ShedMode, ShedPolicy, TrySubmitError};
use rbd_store::{ContentHash, Store, StoredDoc};
use rbd_trace::{
    export, unix_micros, MetricsSink, NullSink, RegistrySnapshot, RollingWindows, ScopedSink,
    ServerEvent, SlowCapture, SlowLog, SpanId, SpanRecord, TraceEvent, TraceId, TraceSink,
};
use std::io::{ErrorKind, Read, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often the nonblocking accept loop polls for new connections and
/// re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How long a refused connection is parked after its 503 so the peer can
/// read the response before we close. Closing a socket that still has
/// unread request bytes makes the kernel send RST, which can discard the
/// response from the peer's receive buffer — the parking window lets the
/// exchange settle without blocking the accept thread.
const PARTING_GRACE: Duration = Duration::from_millis(250);

/// Parked refused connections are capped; past this, new refusals close
/// immediately (an RST to a peer we are shedding under flood is fine).
const PARTING_MAX: usize = 64;

/// Service sizing and fault-tolerance policy. Every bound has a default
/// that keeps a misbehaving peer from taking the service down; `rbd serve`
/// exposes the ones operators actually tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Extraction worker threads.
    pub workers: usize,
    /// Bounded injector capacity — connections admitted but not yet
    /// picked up by a worker.
    pub queue_capacity: usize,
    /// Connections in flight (queued + being served) before the accept
    /// loop starts refusing with 503.
    pub max_connections: usize,
    /// HTTP parsing caps (head → 431, body → 413).
    pub caps: HttpCaps,
    /// Socket read/write timeout armed on every accepted connection.
    pub io_timeout: Duration,
    /// Overall wall-clock budget for reading one request (408 past it).
    pub request_deadline: Duration,
    /// How long graceful shutdown waits for in-flight requests before
    /// abandoning wedged workers.
    pub drain_deadline: Duration,
    /// Load-shedding policy forwarded to the pipeline pool.
    pub shed: Option<ShedPolicy>,
    /// `Retry-After` seconds sent with every 503.
    pub retry_after_s: u64,
    /// When set, each traced request's span tree is written to
    /// `<dir>/trace-<id>.json` in Chrome trace-event format, and slow
    /// captures append to `<dir>/slow.jsonl`.
    pub trace_dir: Option<PathBuf>,
    /// Requests at or over this latency get their full span tree and
    /// audit events kept in the bounded slow log. `None` disables capture.
    pub slow_threshold: Option<Duration>,
    /// When set, the persistent record store at this path backs
    /// `POST /extract` as a content-hash cache (DESIGN.md §14): a request
    /// body whose SHA-256 is already committed is answered from disk
    /// without running extraction, and fresh default-profile extractions
    /// are committed back. Responses carry `x-rbd-cache: hit|miss`.
    pub store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 256,
            caps: HttpCaps::default(),
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            shed: Some(ShedPolicy {
                watermark: 48,
                sustained: Duration::from_millis(100),
                mode: ShedMode::Drop,
            }),
            retry_after_s: 1,
            trace_dir: None,
            slow_threshold: None,
            store: None,
        }
    }
}

/// Why the service could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener failed.
    Bind(String),
    /// The worker pool could not start.
    Pool(PoolError),
    /// Building the extraction profiles failed (ontology/pattern errors).
    Extractor(String),
    /// The persistent record store could not be opened (I/O failure or a
    /// corrupt file the recovery scan refused).
    Store(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind failed: {e}"),
            ServeError::Pool(e) => write!(f, "worker pool failed: {e}"),
            ServeError::Extractor(e) => write!(f, "extractor setup failed: {e}"),
            ServeError::Store(e) => write!(f, "record store failed to open: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What [`Server::run`] hands back after the drain completes.
#[derive(Debug)]
pub struct ServeReport {
    /// Connections that finished during the drain window.
    pub drained: usize,
    /// Workers abandoned at the drain deadline (0 on a clean drain).
    pub abandoned: usize,
    /// Workers that died outside a job (should always be zero).
    pub worker_panics: usize,
    /// Server counters merged with the pool's per-worker registries.
    pub metrics: RegistrySnapshot,
}

/// Flips the accept loop's shutdown flag from another thread — the
/// in-process analogue of SIGTERM (which `std` cannot trap portably).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests graceful shutdown: stop accepting, drain, exit.
    pub fn trigger(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The three extraction profiles a request can select with the
/// `x-rbd-limits` header. Built once at startup; extractors are reused
/// across requests (the paper's "configured once" contract).
struct Profiles {
    default_profile: RecordExtractor,
    strict: RecordExtractor,
    unbounded: RecordExtractor,
}

/// State shared between the accept loop and every worker.
struct Ctx {
    profiles: Profiles,
    /// The persistent extraction cache, when `rbd serve --store` asked
    /// for one. The mutex guards single-writer access to the append-only
    /// log; hit lookups are two reads (index probe + one frame), so the
    /// critical section stays tiny compared to an extraction.
    store: Option<Mutex<Store>>,
    metrics: Arc<MetricsSink>,
    audit: Arc<dyn TraceSink>,
    windows: RollingWindows,
    slow: Option<SlowLog>,
    trace_dir: Option<PathBuf>,
    started: Instant,
    active: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    caps: HttpCaps,
    request_deadline: Duration,
    retry_after_s: u64,
}

impl Ctx {
    /// Whether any consumer wants per-request span trees. When false,
    /// requests run the metrics-only path: no span collection, no clock
    /// reads beyond the one latency measurement every request pays.
    fn collecting(&self) -> bool {
        self.audit.enabled() || self.trace_dir.is_some() || self.slow.is_some()
    }
}

/// A connection in flight between accept and worker pickup. Carrying the
/// accept timestamps lets the worker reconstruct queue wait as a span
/// without the accept thread doing any tracing work.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    accepted: Instant,
    accepted_us: u64,
}

/// How many slow captures the in-memory log retains (oldest evicted).
const SLOW_LOG_CAP: usize = 256;

/// Per-request trace assembly: the request's [`TraceId`], the synthetic
/// serve-layer spans (`serve:request` → `serve:queue_wait` /
/// `serve:worker`), and — while [`Ctx::collecting`] — every span and
/// audit event the extraction emits, stamped onto the request's tree by
/// the [`ScopedSink`] wrapped around this sink.
///
/// Spans always flow through to the [`MetricsSink`] so the cumulative
/// latency histograms see them; local collection is what audit export,
/// Chrome-trace files, and the slow log read at request end.
#[derive(Debug)]
struct RequestTrace {
    trace: TraceId,
    root: SpanId,
    worker: SpanId,
    collecting: bool,
    accepted: Instant,
    accepted_us: u64,
    job_started: Instant,
    job_started_us: u64,
    metrics: Arc<MetricsSink>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl RequestTrace {
    fn begin(
        ctx: &Ctx,
        trace: TraceId,
        accepted: Instant,
        accepted_us: u64,
        job_started: Instant,
        job_started_us: u64,
    ) -> Self {
        RequestTrace {
            trace,
            root: SpanId::next(),
            worker: SpanId::next(),
            collecting: ctx.collecting(),
            accepted,
            accepted_us,
            job_started,
            job_started_us,
            metrics: Arc::clone(&ctx.metrics),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Closes out the request: records rolling-window and cumulative
    /// latency, synthesizes the serve-layer spans, and fans the finished
    /// tree out to the audit sink, the Chrome-trace directory, and the
    /// slow log.
    fn finish(self, ctx: &Ctx, status: u16) {
        let latency_ns = u64::try_from(self.accepted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ctx.windows.record(latency_ns, status >= 500);
        ctx.metrics
            .registry()
            .observe("serve_request_latency", latency_ns);
        if !self.collecting {
            return;
        }
        let queue_wait = self.job_started.saturating_duration_since(self.accepted);
        let queue_ns = u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
        let worker_ns = u64::try_from(self.job_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self
            .spans
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        spans.push(SpanRecord {
            name: "serve:queue_wait",
            nanos: queue_ns,
            trace: self.trace,
            span: SpanId::next(),
            parent: Some(self.root),
            start_us: self.accepted_us,
        });
        spans.push(SpanRecord {
            name: "serve:worker",
            nanos: worker_ns,
            trace: self.trace,
            span: self.worker,
            parent: Some(self.root),
            start_us: self.job_started_us,
        });
        spans.push(SpanRecord {
            name: "serve:request",
            nanos: latency_ns,
            trace: self.trace,
            span: self.root,
            parent: None,
            start_us: self.accepted_us,
        });
        let events = self
            .events
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        if ctx.audit.enabled() {
            for span in &spans {
                ctx.audit.span(*span);
            }
            for event in &events {
                ctx.audit.event(event.clone());
            }
        }
        if let Some(dir) = &ctx.trace_dir {
            let path = dir.join(format!("trace-{}.json", self.trace.to_hex()));
            let body = export::chrome_trace(&spans).to_compact();
            if std::fs::write(path, body).is_err() {
                ctx.metrics.add("serve_trace_write_errors", 1);
            }
        }
        if let Some(slow) = &ctx.slow {
            let capture = SlowCapture {
                trace: self.trace,
                latency_ns,
                status,
                spans,
                events,
            };
            if slow.offer(capture.clone()) {
                ctx.metrics.add("serve_requests_slow", 1);
                if let Some(dir) = &ctx.trace_dir {
                    append_slow_line(ctx, &dir.join("slow.jsonl"), &capture);
                }
            }
        }
    }
}

/// Appends one slow capture as a JSONL line; failures are counted, never
/// propagated (slow capture is diagnostics, not the request path).
fn append_slow_line(ctx: &Ctx, path: &std::path::Path, capture: &SlowCapture) {
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", capture.to_json().to_compact()));
    if appended.is_err() {
        ctx.metrics.add("serve_trace_write_errors", 1);
    }
}

impl TraceSink for RequestTrace {
    fn enabled(&self) -> bool {
        self.collecting
    }

    fn event(&self, event: TraceEvent) {
        if self.collecting {
            self.events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(event);
        }
    }

    fn span(&self, span: SpanRecord) {
        self.metrics.span(span);
        if self.collecting {
            self.spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(span);
        }
    }

    fn add(&self, counter: &'static str, delta: u64) {
        self.metrics.add(counter, delta);
    }
}

/// Decrements the in-flight connection count when the handler returns —
/// including by panic, since the pool's `catch_unwind` runs this `Drop`
/// during unwinding. Without it a single panicking request would leak a
/// connection slot forever.
struct ActiveGuard<'a> {
    active: &'a AtomicUsize,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The extraction service. [`Server::bind`] starts the workers and binds
/// the listener; [`Server::run`] blocks in the accept loop until shutdown.
pub struct Server {
    listener: TcpListener,
    pool: Pool<Conn, ()>,
    ctx: Arc<Ctx>,
    config: ServeConfig,
}

impl Server {
    /// Binds the listener, builds the extraction profiles, and starts the
    /// worker pool. `audit` receives [`ServerEvent`]s when enabled (pass
    /// `None` for metrics-only operation — the right default for a
    /// long-lived service, since event collection grows without bound).
    ///
    /// # Errors
    /// [`ServeError`] when the address cannot be bound, the extractors
    /// cannot be built, or the pool cannot spawn workers.
    pub fn bind(
        config: ServeConfig,
        audit: Option<Arc<dyn TraceSink>>,
    ) -> Result<Self, ServeError> {
        let metrics = Arc::new(MetricsSink::new());
        let sink: Arc<dyn TraceSink> = Arc::clone(&metrics) as Arc<dyn TraceSink>;
        let profile = |limits: Limits| -> Result<RecordExtractor, ServeError> {
            RecordExtractor::new(
                ExtractorConfig::default()
                    .with_limits(limits)
                    .with_sink(Arc::clone(&sink)),
            )
            .map_err(|e| ServeError::Extractor(e.to_string()))
        };
        let profiles = Profiles {
            default_profile: profile(Limits::default())?,
            strict: profile(Limits::strict())?,
            unbounded: profile(Limits::unbounded())?,
        };

        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(e.to_string()))?;

        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| ServeError::Bind(format!("trace dir {}: {e}", dir.display())))?;
        }
        let store = match &config.store {
            Some(path) => Some(Mutex::new(
                Store::open(path).map_err(|e| ServeError::Store(e.to_string()))?,
            )),
            None => None,
        };
        let ctx = Arc::new(Ctx {
            profiles,
            store,
            metrics: Arc::clone(&metrics),
            audit: audit.unwrap_or_else(|| Arc::new(NullSink)),
            windows: RollingWindows::new(),
            slow: config
                .slow_threshold
                .map(|threshold| SlowLog::new(threshold, SLOW_LOG_CAP)),
            trace_dir: config.trace_dir.clone(),
            started: Instant::now(),
            active: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            caps: config.caps,
            request_deadline: config.request_deadline,
            retry_after_s: config.retry_after_s,
        });

        let mut pool_config = PoolConfig::with_workers(config.workers)
            .with_queue_capacity(config.queue_capacity)
            .detached();
        if let Some(shed) = config.shed {
            pool_config = pool_config.with_shed(shed);
        }
        let runner_ctx = Arc::clone(&ctx);
        let pool = Pool::new(
            pool_config,
            move |conn: Conn, admission| handle_connection(&runner_ctx, conn, admission),
            Arc::clone(&metrics) as Arc<dyn TraceSink>,
        )
        .map_err(ServeError::Pool)?;

        Ok(Server {
            listener,
            pool,
            ctx,
            config,
        })
    }

    /// The bound address — the actual port when the config asked for 0.
    ///
    /// # Errors
    /// Propagates the OS error if the socket has gone bad since binding.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that requests graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shutdown: Arc::clone(&self.ctx.shutdown),
        }
    }

    /// Live server counters (also served at `GET /metrics`).
    pub fn metrics(&self) -> RegistrySnapshot {
        self.ctx.metrics.registry().typed_snapshot()
    }

    /// Runs the accept loop until shutdown is requested, then drains
    /// in-flight requests under the drain deadline and returns the final
    /// report. Consumes the server: after `run` the listener is closed.
    pub fn run(self) -> ServeReport {
        let Server {
            listener,
            pool,
            ctx,
            config,
        } = self;
        let mut parting: Vec<(TcpStream, Instant)> = Vec::new();
        while !ctx.shutdown.load(Ordering::SeqCst) {
            reap_parting(&mut parting);
            match listener.accept() {
                Ok((stream, peer)) => {
                    // The lint rule `concurrency` (serve tier) requires the
                    // deadlines armed in the same function as the accept:
                    // an unarmed stream must never escape this scope.
                    let armed = stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(config.io_timeout)))
                        .and_then(|()| stream.set_write_timeout(Some(config.io_timeout)));
                    match armed {
                        Ok(()) => admit(&ctx, &pool, &config, stream, peer, &mut parting),
                        Err(_) => ctx.metrics.add("serve_accept_errors", 1),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(_) => {
                    ctx.metrics.add("serve_accept_errors", 1);
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        drop(parting);

        // Stop accepting before draining: closing the listener makes new
        // connection attempts fail fast instead of hanging in the backlog.
        drop(listener);
        let in_flight = ctx.active.load(Ordering::SeqCst);
        let drain_started = Instant::now();
        let report = pool.shutdown_within(config.drain_deadline);
        let remaining = ctx.active.load(Ordering::SeqCst);
        let drained = in_flight.saturating_sub(remaining);
        let elapsed_ms = u64::try_from(drain_started.elapsed().as_millis()).unwrap_or(u64::MAX);
        ctx.metrics
            .add("serve_drain_abandoned", report.abandoned as u64);
        if ctx.audit.enabled() {
            ctx.audit.event(TraceEvent::Server(ServerEvent::Drained {
                drained,
                abandoned: report.abandoned,
                elapsed_ms,
            }));
        }
        let mut merged = rbd_trace::Registry::new();
        merged.merge(&report.metrics);
        merged.merge(&ctx.metrics.registry().typed_snapshot());
        ServeReport {
            drained,
            abandoned: report.abandoned,
            worker_panics: report.worker_panics,
            metrics: merged.typed_snapshot(),
        }
    }
}

/// Connection-count gate and pool submission. Runs on the accept thread,
/// so everything here must be non-blocking.
fn admit(
    ctx: &Arc<Ctx>,
    pool: &Pool<Conn, ()>,
    config: &ServeConfig,
    stream: TcpStream,
    peer: SocketAddr,
    parting: &mut Vec<(TcpStream, Instant)>,
) {
    let active_now = ctx.active.load(Ordering::SeqCst);
    if active_now >= config.max_connections {
        ctx.metrics.add("serve_conns_refused", 1);
        shed_event(ctx, pool.queue_depth());
        refuse(ctx, stream, parting);
        return;
    }
    ctx.active.fetch_add(1, Ordering::SeqCst);
    ctx.metrics.add("serve_conns_accepted", 1);
    if ctx.audit.enabled() {
        ctx.audit
            .event(TraceEvent::Server(ServerEvent::ConnAccepted {
                peer: peer.to_string(),
                active: active_now + 1,
            }));
    }
    let conn = Conn {
        stream,
        accepted: Instant::now(),
        accepted_us: unix_micros(),
    };
    match pool.try_submit(conn) {
        Ok(_id) => {}
        Err(TrySubmitError::QueueFull(conn)) => {
            bounce(ctx, conn.stream, pool.queue_depth(), parting);
        }
        Err(TrySubmitError::Shed { job, depth, .. }) => {
            bounce(ctx, job.stream, depth, parting);
        }
        Err(TrySubmitError::Closed(conn)) => {
            ctx.active.fetch_sub(1, Ordering::SeqCst);
            drop(conn);
        }
    }
}

/// Rolls back an admission the pool refused, then refuses the peer.
fn bounce(ctx: &Ctx, stream: TcpStream, depth: usize, parting: &mut Vec<(TcpStream, Instant)>) {
    ctx.active.fetch_sub(1, Ordering::SeqCst);
    ctx.metrics.add("serve_requests_shed", 1);
    shed_event(ctx, depth);
    refuse(ctx, stream, parting);
}

fn shed_event(ctx: &Ctx, depth: usize) {
    if ctx.audit.enabled() {
        ctx.audit
            .event(TraceEvent::Server(ServerEvent::RequestShed {
                depth,
                retry_after_s: ctx.retry_after_s,
            }));
    }
}

/// Answers 503 + `Retry-After` on the accept thread, then parks the
/// socket in `parting` so it closes cleanly (see [`PARTING_GRACE`]). The
/// socket already has a write timeout, so a peer that refuses to read
/// cannot stall the accept loop for longer than one timeout window.
fn refuse(ctx: &Ctx, mut stream: TcpStream, parting: &mut Vec<(TcpStream, Instant)>) {
    let mut response = Response::json(
        503,
        "Service Unavailable",
        error_json("overload", "service is at capacity; retry shortly"),
    );
    response.retry_after_s = Some(ctx.retry_after_s);
    send(ctx, &mut stream, &response);
    let parked = parting.len() < PARTING_MAX
        && stream.shutdown(Shutdown::Write).is_ok()
        && stream.set_nonblocking(true).is_ok();
    if parked {
        parting.push((stream, Instant::now()));
    }
}

/// Polls parked refused connections: discards any late request bytes and
/// drops each socket once the peer closes (clean FIN) or its grace
/// expires. Non-blocking — runs on the accept thread every poll tick.
fn reap_parting(parting: &mut Vec<(TcpStream, Instant)>) {
    parting.retain_mut(|(stream, since)| {
        let mut scratch = [0u8; 512];
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => return false,
                Ok(_n) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        since.elapsed() < PARTING_GRACE
    });
}

/// The per-connection worker job: parse one request, route it, respond,
/// close. Never panics outward except through the pool's own isolation.
///
/// Once the request head parses, the request gets a [`TraceId`] — the
/// peer's `x-rbd-trace-id` header when it carries a valid one, freshly
/// generated otherwise — which is echoed back in the response and stamps
/// the whole span tree.
fn handle_connection(ctx: &Ctx, conn: Conn, admission: Admission) {
    let _guard = ActiveGuard {
        active: &ctx.active,
    };
    let job_started = Instant::now();
    let job_started_us = unix_micros();
    let Conn {
        mut stream,
        accepted,
        accepted_us,
    } = conn;
    let deadline = Deadline::after(ctx.request_deadline);
    match http::read_request(&mut stream, ctx.caps, &deadline) {
        Ok(request) => {
            let trace = request
                .header("x-rbd-trace-id")
                .and_then(TraceId::parse_hex)
                .unwrap_or_else(TraceId::generate);
            let rt = RequestTrace::begin(
                ctx,
                trace,
                accepted,
                accepted_us,
                job_started,
                job_started_us,
            );
            let response =
                route(ctx, &rt, &request, admission).with_header("x-rbd-trace-id", trace.to_hex());
            send(ctx, &mut stream, &response);
            rt.finish(ctx, response.status);
        }
        Err(error) => {
            match &error {
                HttpError::TimedOut { phase } => {
                    ctx.metrics.add("serve_timeouts", 1);
                    if ctx.audit.enabled() {
                        ctx.audit.event(TraceEvent::Server(ServerEvent::Deadline {
                            phase: (*phase).to_string(),
                            elapsed_ms: deadline.elapsed_ms() as u64,
                        }));
                    }
                }
                HttpError::Disconnected => ctx.metrics.add("serve_disconnects", 1),
                HttpError::Malformed(_)
                | HttpError::LengthRequired
                | HttpError::BodyTooLarge { .. }
                | HttpError::HeadTooLarge { .. } => {
                    ctx.metrics.add("serve_requests_client_error", 1);
                }
            }
            if let Some((status, reason)) = error.status() {
                let response =
                    Response::json(status, reason, error_json("http", &error.to_string()));
                send(ctx, &mut stream, &response);
                // The request was not fully read (flood, oversized body,
                // garbage): drain leftovers with a short budget so closing
                // doesn't RST the error response out from under the peer.
                drain_politely(&mut stream);
            }
        }
    }
}

/// Bounded post-response drain for connections whose request was never
/// fully consumed: half-close the write side, then discard inbound bytes
/// until the peer closes, a short timeout fires, or a byte budget runs
/// out. Runs on a worker thread, so a brief blocking wait is fine.
fn drain_politely(stream: &mut TcpStream) {
    if stream.shutdown(Shutdown::Write).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .is_err()
    {
        return;
    }
    let mut scratch = [0u8; 4096];
    let mut budget: usize = 256 * 1024;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn route(ctx: &Ctx, rt: &RequestTrace, request: &Request, admission: Admission) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/extract") => extract(ctx, rt, request, admission),
        ("GET", "/healthz") => {
            let body = Json::object([
                ("status", Json::Str("ok".to_string())),
                ("version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
                (
                    "uptime_seconds",
                    Json::UInt(ctx.started.elapsed().as_secs()),
                ),
                (
                    "active",
                    Json::UInt(ctx.active.load(Ordering::SeqCst) as u64),
                ),
            ])
            .to_string();
            Response::json(200, "OK", body)
        }
        // Prometheus exposition by default; JSON for clients that ask for
        // it (and always at /metrics.json, so scripted consumers don't
        // depend on header handling).
        ("GET", "/metrics") => {
            let wants_json = request
                .header("accept")
                .is_some_and(|accept| accept.contains("application/json"));
            if wants_json {
                Response::json(200, "OK", metrics_json(ctx))
            } else {
                Response::text(
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    metrics_prometheus(ctx),
                )
            }
        }
        ("GET", "/metrics.json") => Response::json(200, "OK", metrics_json(ctx)),
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            let body = Json::object([("status", Json::Str("draining".to_string()))]).to_string();
            Response::json(200, "OK", body)
        }
        (_method, "/extract" | "/healthz" | "/metrics" | "/metrics.json" | "/shutdown") => {
            ctx.metrics.add("serve_requests_client_error", 1);
            Response::json(
                405,
                "Method Not Allowed",
                error_json("method", "method not allowed for this endpoint"),
            )
        }
        (_method, _target) => {
            ctx.metrics.add("serve_requests_client_error", 1);
            Response::json(
                404,
                "Not Found",
                error_json("not_found", "unknown endpoint"),
            )
        }
    }
}

/// `POST /extract`: run record-boundary discovery on the body under the
/// selected limits profile, with panic isolation at the request boundary.
///
/// While the request is being collected (audit / trace dir / slow log),
/// extraction runs its traced path through a [`ScopedSink`] that stamps
/// the request's trace id and parents every extraction span under the
/// `serve:worker` span — one coherent tree per request. Otherwise it runs
/// the metrics-only path, identical to the pre-tracing service.
fn extract(ctx: &Ctx, rt: &RequestTrace, request: &Request, admission: Admission) -> Response {
    let Ok(html) = std::str::from_utf8(&request.body) else {
        ctx.metrics.add("serve_requests_client_error", 1);
        return Response::json(
            400,
            "Bad Request",
            error_json("encoding", "request body is not valid UTF-8"),
        );
    };
    // The cache only speaks for the default limits profile: a strict or
    // unbounded extraction of the same bytes can legitimately differ, so
    // those requests bypass the store in both directions.
    let cacheable = ctx.store.is_some()
        && matches!(admission, Admission::Normal)
        && matches!(request.header("x-rbd-limits"), None | Some("default"));
    if cacheable {
        if let Some(body) = store_lookup(ctx, rt, html) {
            ctx.metrics.add("serve_requests_ok", 1);
            return Response::json(200, "OK", body).with_header("x-rbd-cache", "hit".to_string());
        }
    }
    let extractor = profile_for(ctx, request, admission);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if rt.collecting {
            let scoped = ScopedSink::new(rt, rt.trace, Some(rt.worker));
            extractor.extract_records_traced(html, &scoped)
        } else {
            extractor.extract_records(html)
        }
    }));
    match outcome {
        Err(payload) => {
            let message = panic_message(&payload);
            ctx.metrics.add("serve_panics", 1);
            if ctx.audit.enabled() {
                ctx.audit
                    .event(TraceEvent::Server(ServerEvent::WorkerPanic {
                        message: message.clone(),
                    }));
            }
            Response::json(500, "Internal Server Error", error_json("panic", &message))
        }
        Ok(Err(error)) => {
            ctx.metrics.add("serve_requests_unprocessable", 1);
            Response::json(
                422,
                "Unprocessable Entity",
                error_json(discovery_kind(&error), &error.to_string()),
            )
        }
        Ok(Ok(extraction)) => {
            ctx.metrics.add("serve_requests_ok", 1);
            let response =
                Response::json(200, "OK", extraction_response_json(&extraction).to_string());
            if cacheable {
                store_insert(ctx, html, &extraction);
                response.with_header("x-rbd-cache", "miss".to_string())
            } else {
                response
            }
        }
    }
}

/// Consults the persistent store for `html`'s content hash. On a hit the
/// stored response body comes back (byte-identical to what a fresh
/// extraction would serialize — `StoredDoc::response_json` is pinned to
/// [`extraction_response_json`]'s shape) and the lookup is recorded as a
/// `serve:cache_hit` span in the request's trace tree. A read failure on
/// a committed frame degrades to a miss with a typed counter; it never
/// fails the request.
fn store_lookup(ctx: &Ctx, rt: &RequestTrace, html: &str) -> Option<String> {
    let store = ctx.store.as_ref()?;
    let started = Instant::now();
    let started_us = unix_micros();
    let hash = ContentHash::of(html.as_bytes());
    let looked_up = {
        // The hit layer memoizes the parsed doc and serialized response,
        // so the steady-state critical section is one map lookup.
        let mut guard = store.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.contains(&hash) {
            Some(guard.hit(&hash))
        } else {
            None
        }
    };
    let hit = matches!(&looked_up, Some(Ok(Some(_))));
    rt.event(TraceEvent::Server(ServerEvent::CacheLookup {
        hash: hash.to_hex(),
        hit,
    }));
    match looked_up {
        Some(Ok(Some(stored))) => {
            ctx.metrics.add("store_cache_hits", 1);
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rt.span(SpanRecord {
                name: "serve:cache_hit",
                nanos,
                trace: rt.trace,
                span: SpanId::next(),
                parent: Some(rt.worker),
                start_us: started_us,
            });
            Some(stored.response.clone())
        }
        Some(Err(_)) => {
            ctx.metrics.add("store_read_errors", 1);
            ctx.metrics.add("store_cache_misses", 1);
            None
        }
        Some(Ok(None)) | None => {
            ctx.metrics.add("store_cache_misses", 1);
            None
        }
    }
}

/// Commits a fresh extraction to the store so the next request for the
/// same bytes hits. A commit failure loses only the cache entry — the
/// response already in flight is unaffected — and is counted.
fn store_insert(ctx: &Ctx, html: &str, extraction: &Extraction) {
    let Some(store) = ctx.store.as_ref() else {
        return;
    };
    let hash = ContentHash::of(html.as_bytes());
    let doc = StoredDoc::from_extraction(hash, None, extraction);
    let mut guard = store.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.append_batch(std::slice::from_ref(&doc)).is_err() {
        ctx.metrics.add("store_write_errors", 1);
    }
}

/// Picks the limits profile: strict admission (shed pressure) wins, then
/// the `x-rbd-limits` header; an unrecognized value degrades to the
/// default profile with a counter rather than failing the request.
fn profile_for<'a>(ctx: &'a Ctx, request: &Request, admission: Admission) -> &'a RecordExtractor {
    if let Admission::Strict { .. } = admission {
        ctx.metrics.add("serve_admitted_strict", 1);
        return &ctx.profiles.strict;
    }
    match request.header("x-rbd-limits") {
        None | Some("default") => &ctx.profiles.default_profile,
        Some("strict") => &ctx.profiles.strict,
        Some("unbounded") => &ctx.profiles.unbounded,
        Some(_other) => {
            ctx.metrics.add("serve_limits_degraded", 1);
            &ctx.profiles.default_profile
        }
    }
}

/// Writes a response, counting (never propagating) write failures — a
/// peer that vanishes before reading its response is routine.
fn send(ctx: &Ctx, stream: &mut TcpStream, response: &Response) {
    if http::write_response(stream, response).is_err() {
        ctx.metrics.add("serve_write_errors", 1);
    }
}

/// The stable error body shape: `{"error":{"kind":…,"message":…}}`.
fn error_json(kind: &str, message: &str) -> String {
    Json::object([(
        "error",
        Json::object([
            ("kind", Json::Str(kind.to_string())),
            ("message", Json::Str(message.to_string())),
        ]),
    )])
    .to_string()
}

/// Discriminant for the 422 body, mirroring [`DiscoveryError`].
fn discovery_kind(error: &DiscoveryError) -> &'static str {
    match error {
        DiscoveryError::EmptyDocument => "empty_document",
        DiscoveryError::NoCandidates => "no_candidates",
        DiscoveryError::NoConsensus => "no_consensus",
        DiscoveryError::Pattern(_) => "pattern",
        DiscoveryError::Limit(_) => "limit",
    }
}

/// Flattens a panic payload to text, matching the pipeline's convention.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The `200 OK` body for `/extract`, and the soak harness's comparison
/// key: the same extraction must serialize byte-identically whether it
/// ran through the service or the serial engine.
pub fn extraction_response_json(extraction: &Extraction) -> Json {
    Json::object([
        ("separator", Json::Str(extraction.outcome.separator.clone())),
        ("preamble", Json::Bool(extraction.preamble.is_some())),
        (
            "records",
            Json::array(extraction.records.iter().map(record_json)),
        ),
        ("degraded", Json::UInt(extraction.degradation.len() as u64)),
    ])
}

fn record_json(record: &Record) -> Json {
    Json::object([
        ("start", Json::UInt(record.start as u64)),
        ("end", Json::UInt(record.end as u64)),
        ("text", Json::Str(record.text.clone())),
    ])
}

/// The `GET /metrics.json` body: a small curated `server` block, the
/// rolling 1m/5m windows, and the full registry snapshot (server counters
/// and extraction/pipeline metrics).
fn metrics_json(ctx: &Ctx) -> String {
    let registry = ctx.metrics.registry();
    Json::object([
        (
            "server",
            Json::object([
                (
                    "active",
                    Json::UInt(ctx.active.load(Ordering::SeqCst) as u64),
                ),
                (
                    "accepted",
                    Json::UInt(registry.counter("serve_conns_accepted")),
                ),
                (
                    "shed",
                    Json::UInt(
                        registry.counter("serve_requests_shed")
                            + registry.counter("serve_conns_refused"),
                    ),
                ),
                ("timeouts", Json::UInt(registry.counter("serve_timeouts"))),
                ("panics", Json::UInt(registry.counter("serve_panics"))),
            ]),
        ),
        ("windows", ctx.windows.to_json()),
        ("metrics", registry.typed_snapshot().to_json()),
    ])
    .to_string()
}

/// The default `GET /metrics` body: Prometheus text exposition of the
/// cumulative registry followed by the rolling-window gauges.
fn metrics_prometheus(ctx: &Ctx) -> String {
    let mut out = export::registry_to_prometheus(&ctx.metrics.registry().typed_snapshot());
    out.push_str(&export::windows_to_prometheus(&ctx.windows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn start(
        config: ServeConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServeReport>,
    ) {
        start_with(config, None)
    }

    fn start_with(
        config: ServeConfig,
        audit: Option<Arc<dyn TraceSink>>,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServeReport>,
    ) {
        let server = Server::bind(config, audit).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join)
    }

    fn talk(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("client read timeout");
        stream.write_all(raw).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    fn post_extract(addr: SocketAddr, html: &str) -> String {
        let raw = format!(
            "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        talk(addr, raw.as_bytes())
    }

    #[test]
    fn serves_extraction_health_metrics_and_shuts_down() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 2,
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        });

        let html = "<html><body>\
                    <h2>A</h2><p>alpha</p>\
                    <h2>B</h2><p>beta</p>\
                    <h2>C</h2><p>gamma</p>\
                    </body></html>";
        let ok = post_extract(addr, html);
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("\"separator\""), "{ok}");

        let health = talk(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"version\":\""), "{health}");
        assert!(health.contains("\"uptime_seconds\""), "{health}");

        // Default /metrics speaks Prometheus text exposition…
        let metrics = talk(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(
            metrics.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE serve_requests_ok counter"),
            "{metrics}"
        );
        assert!(
            metrics.contains("rbd_window_requests{window=\"1m\"}"),
            "{metrics}"
        );
        assert!(
            metrics.contains("serve_request_latency_ns_bucket{le=\"+Inf\"}"),
            "{metrics}"
        );

        // …while an Accept header or /metrics.json keeps the JSON view.
        let negotiated = talk(
            addr,
            b"GET /metrics HTTP/1.1\r\nAccept: application/json\r\n\r\n",
        );
        assert!(negotiated.contains("\"accepted\""), "{negotiated}");
        let metrics_json = talk(addr, b"GET /metrics.json HTTP/1.1\r\n\r\n");
        assert!(metrics_json.contains("\"accepted\""), "{metrics_json}");
        assert!(metrics_json.contains("\"windows\""), "{metrics_json}");
        assert!(metrics_json.contains("\"p99_ns\""), "{metrics_json}");
        assert!(metrics_json.contains("serve_requests_ok"), "{metrics_json}");

        let missing = talk(addr, b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong_method = talk(addr, b"GET /extract HTTP/1.1\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");

        handle.trigger();
        let report = join.join().expect("server thread");
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.abandoned, 0);
        assert!(report.metrics.counters.get("serve_requests_ok").copied() >= Some(1));
    }

    #[test]
    fn empty_body_is_422_and_shutdown_endpoint_drains() {
        let (addr, _handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let unprocessable = post_extract(addr, "");
        assert!(unprocessable.starts_with("HTTP/1.1 422"), "{unprocessable}");
        assert!(
            unprocessable.contains("\"kind\":\"empty_document\""),
            "{unprocessable}"
        );

        let bye = talk(
            addr,
            b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(bye.starts_with("HTTP/1.1 200"), "{bye}");
        let report = join.join().expect("server thread");
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn unknown_limits_profile_degrades_not_fails() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let html = "<html><body><h2>A</h2><p>x</p><h2>B</h2><p>y</p></body></html>";
        let raw = format!(
            "POST /extract HTTP/1.1\r\nx-rbd-limits: turbo\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        let out = talk(addr, raw.as_bytes());
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        handle.trigger();
        let report = join.join().expect("server thread");
        assert_eq!(
            report
                .metrics
                .counters
                .get("serve_limits_degraded")
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn request_produces_one_parented_span_tree() {
        use rbd_trace::CollectingSink;
        let audit = Arc::new(CollectingSink::new());
        let (addr, handle, join) = start_with(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            Some(Arc::clone(&audit) as Arc<dyn TraceSink>),
        );
        let html = "<html><body><h2>A</h2><p>x</p><h2>B</h2><p>y</p></body></html>";
        let raw = format!(
            "POST /extract HTTP/1.1\r\nx-rbd-trace-id: deadbeef\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        let out = talk(addr, raw.as_bytes());
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        // The inbound trace id is echoed back verbatim (zero-padded hex).
        assert!(
            out.contains("x-rbd-trace-id: 00000000deadbeef\r\n"),
            "{out}"
        );
        handle.trigger();
        join.join().expect("server thread");

        let trace = TraceId::parse_hex("deadbeef").expect("valid hex");
        let spans: Vec<SpanRecord> = audit
            .spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        assert!(!spans.is_empty(), "audit sink saw no request spans");
        // Exactly one root, named serve:request.
        let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "{spans:?}");
        assert_eq!(roots[0].name, "serve:request");
        let root = roots[0].span;
        // Queue wait and worker hang off the root.
        for name in ["serve:queue_wait", "serve:worker"] {
            let span = spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}: {spans:?}"));
            assert_eq!(span.parent, Some(root), "{name} must parent at the root");
        }
        let worker = spans
            .iter()
            .find(|s| s.name == "serve:worker")
            .expect("worker span")
            .span;
        // Extraction stages are grandchildren via the worker span, and
        // every span reaches the root by walking parents.
        let tokenize = spans
            .iter()
            .find(|s| s.name == "tokenize")
            .unwrap_or_else(|| panic!("no tokenize span: {spans:?}"));
        assert_eq!(tokenize.parent, Some(worker));
        for span in &spans {
            let mut cursor = *span;
            let mut hops = 0;
            while let Some(parent) = cursor.parent {
                cursor = *spans
                    .iter()
                    .find(|s| s.span == parent)
                    .unwrap_or_else(|| panic!("dangling parent for {cursor:?}"));
                hops += 1;
                assert!(hops < 16, "parent cycle at {span:?}");
            }
            assert_eq!(cursor.span, root, "{span:?} must root at serve:request");
        }
    }

    #[test]
    fn store_backed_extract_hits_byte_identical_with_cache_span() {
        use rbd_trace::CollectingSink;
        let store_path =
            std::env::temp_dir().join(format!("rbd-serve-store-test-{}.rbd", std::process::id()));
        let _ = std::fs::remove_file(&store_path);
        let audit = Arc::new(CollectingSink::new());
        let (addr, handle, join) = start_with(
            ServeConfig {
                workers: 1,
                store: Some(store_path.clone()),
                ..ServeConfig::default()
            },
            Some(Arc::clone(&audit) as Arc<dyn TraceSink>),
        );
        let html = "<html><body>\
                    <h2>A</h2><p>alpha</p>\
                    <h2>B</h2><p>beta</p>\
                    <h2>C</h2><p>gamma</p>\
                    </body></html>";
        let miss = post_extract(addr, html);
        assert!(miss.starts_with("HTTP/1.1 200 OK\r\n"), "{miss}");
        assert!(miss.contains("x-rbd-cache: miss\r\n"), "{miss}");
        let hit = post_extract(addr, html);
        assert!(hit.starts_with("HTTP/1.1 200 OK\r\n"), "{hit}");
        assert!(hit.contains("x-rbd-cache: hit\r\n"), "{hit}");
        // The cache hit serves a byte-identical body.
        let body_of = |response: &str| {
            response
                .split_once("\r\n\r\n")
                .map(|(_, b)| b.to_string())
                .expect("body")
        };
        assert_eq!(body_of(&miss), body_of(&hit), "hit must match fresh bytes");

        // A changed byte busts the cache.
        let mutated = html.replacen("alpha", "alphb", 1);
        let fresh = post_extract(addr, &mutated);
        assert!(fresh.contains("x-rbd-cache: miss\r\n"), "{fresh}");

        // Strict-profile requests bypass the cache in both directions.
        let raw = format!(
            "POST /extract HTTP/1.1\r\nx-rbd-limits: strict\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        let strict = talk(addr, raw.as_bytes());
        assert!(strict.starts_with("HTTP/1.1 200 OK\r\n"), "{strict}");
        assert!(!strict.contains("x-rbd-cache:"), "{strict}");

        handle.trigger();
        let report = join.join().expect("server thread");
        assert_eq!(report.metrics.counters.get("store_cache_hits"), Some(&1));
        assert_eq!(report.metrics.counters.get("store_cache_misses"), Some(&2));

        // The hit's trace tree carries the serve:cache_hit span, parented
        // under its request's worker span.
        let spans = audit.spans();
        let cache_span = spans
            .iter()
            .find(|s| s.name == "serve:cache_hit")
            .unwrap_or_else(|| panic!("no serve:cache_hit span: {spans:?}"));
        let worker = spans
            .iter()
            .find(|s| s.trace == cache_span.trace && s.name == "serve:worker")
            .expect("worker span in the hit's trace");
        assert_eq!(cache_span.parent, Some(worker.span));
        // And the audit trail records the lookup decision itself.
        let lookups: Vec<String> = audit
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Server(ServerEvent::CacheLookup { hit, .. }) => Some(hit.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(lookups, ["false", "true", "false"], "{lookups:?}");

        // The store file survives the server: reopen and find the docs.
        let mut store = rbd_store::Store::open(&store_path).expect("reopen");
        assert_eq!(store.len(), 2, "two distinct documents committed");
        let stored = store
            .get(&rbd_store::ContentHash::of(html.as_bytes()))
            .expect("read")
            .expect("present");
        assert_eq!(stored.response_json().to_string(), body_of(&hit));
        let _ = std::fs::remove_file(&store_path);
    }

    #[test]
    fn slow_requests_are_captured_and_traces_written() {
        let trace_dir =
            std::env::temp_dir().join(format!("rbd-serve-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&trace_dir);
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            trace_dir: Some(trace_dir.clone()),
            // Zero threshold: every request is "slow", so the capture path
            // runs deterministically.
            slow_threshold: Some(Duration::from_nanos(0)),
            ..ServeConfig::default()
        });
        let html = "<html><body><h2>A</h2><p>x</p><h2>B</h2><p>y</p></body></html>";
        let raw = format!(
            "POST /extract HTTP/1.1\r\nx-rbd-trace-id: c0ffee\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        let out = talk(addr, raw.as_bytes());
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        handle.trigger();
        let report = join.join().expect("server thread");
        assert!(
            report.metrics.counters.get("serve_requests_slow").copied() >= Some(1),
            "{:?}",
            report.metrics.counters
        );
        let chrome = std::fs::read_to_string(trace_dir.join("trace-0000000000c0ffee.json"))
            .expect("per-trace Chrome file");
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
        assert!(chrome.contains("\"serve:request\""), "{chrome}");
        let slow = std::fs::read_to_string(trace_dir.join("slow.jsonl")).expect("slow log file");
        let first = slow.lines().next().expect("one capture line");
        assert!(first.contains("\"latency_ns\""), "{first}");
        assert!(first.contains("\"0000000000c0ffee\""), "{first}");
        let _ = std::fs::remove_dir_all(&trace_dir);
    }
}
