//! Fault-injection soak harness for `rbd serve`.
//!
//! Boots the real service and drives it with a concurrent fleet of
//! adversarial clients — the full corpus attack battery interleaved with
//! byte-dribbling slowloris peers, mid-body disconnects, oversized
//! bodies, garbage and pipelined request lines, and header floods — and
//! asserts the service's survival contract:
//!
//! 1. **no hangs**: every client completes within its own timeout,
//! 2. **no panics**: zero `serve_panics`, zero worker deaths,
//! 3. **correct status mapping**: every fault class gets its 4xx/5xx,
//! 4. **correct answers under fire**: well-formed documents extract
//!    byte-identically to the serial engine, concurrency notwithstanding,
//! 5. **graceful drain**: shutdown completes in-flight work.
//!
//! Set `RBD_SERVE_METRICS=path` to export the final `/metrics.json`
//! snapshot and `RBD_SERVE_TRACE_DIR=dir` to dump per-request Chrome
//! traces (CI uploads both as artifacts). Throughput is reported on
//! stdout.

use rbd_corpus::adversarial::{generate_adversarial, valid_seed_document, AttackKind};
use rbd_serve::{extraction_response_json, HttpCaps, ServeConfig, Server};
use rbd_trace::{CollectingSink, TraceSink};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x5EED_50AC;

fn soak_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_capacity: 32,
        max_connections: 128,
        caps: HttpCaps {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        },
        io_timeout: Duration::from_millis(750),
        request_deadline: Duration::from_secs(3),
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// One HTTP exchange with a hard client-side timeout: if the service ever
/// hangs, the client errors instead of wedging the suite.
fn talk(addr: SocketAddr, raw: &[u8]) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(15)))?;
    stream.set_write_timeout(Some(Duration::from_secs(15)))?;
    stream.write_all(raw)?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

fn post_extract_raw(html: &str) -> Vec<u8> {
    let mut raw = format!(
        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        html.len()
    )
    .into_bytes();
    raw.extend_from_slice(html.as_bytes());
    raw
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or(0)
}

/// The whole battery in one test: the phases share a server on purpose —
/// the point of a soak is that fault classes interleave on a live,
/// already-exercised instance, not on a fresh one each.
#[test]
fn soak_survives_adversarial_fleet_with_correct_answers() {
    let audit = Arc::new(CollectingSink::new());
    let trace_dir = std::env::var_os("RBD_SERVE_TRACE_DIR").map(std::path::PathBuf::from);
    let config = ServeConfig {
        trace_dir: trace_dir.clone(),
        ..soak_config()
    };
    let server =
        Server::bind(config, Some(Arc::clone(&audit) as Arc<dyn TraceSink>)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Serial reference engine: identical profile to the server's default.
    let reference = rbd_core::RecordExtractor::new(rbd_core::ExtractorConfig::default())
        .expect("reference extractor");

    // ---- Phase 1: concurrent well-formed + adversarial clients --------
    let well_formed_per_client = 12usize;
    let started = Instant::now();
    let mut clients = Vec::new();
    for client_id in 0..4usize {
        let reference = reference.clone();
        clients.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for i in 0..well_formed_per_client {
                let doc = valid_seed_document(client_id * well_formed_per_client + i, SEED);
                let response = talk(addr, &post_extract_raw(&doc)).expect("well-formed client");
                let status = status_of(&response);
                // Under load a request may be shed — that is the contract,
                // not a failure — but it must never 500 and never hang.
                assert!(
                    status == 200 || status == 422 || status == 503,
                    "unexpected status {status}: {response}"
                );
                if status == 200 {
                    // Byte-identical to the serial engine.
                    let body = response
                        .split("\r\n\r\n")
                        .nth(1)
                        .expect("response has a body");
                    let serial = reference
                        .extract_records(&doc)
                        .map(|e| extraction_response_json(&e).to_string());
                    match serial {
                        Ok(expected) => assert_eq!(body, expected, "doc {client_id}/{i}"),
                        Err(e) => panic!("server said 200 but serial engine failed: {e}"),
                    }
                    ok += 1;
                }
            }
            ok
        }));
    }
    for attack_id in 0..2usize {
        clients.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for (i, kind) in AttackKind::ALL.iter().enumerate() {
                let doc = generate_adversarial(*kind, attack_id * 7 + i, SEED);
                let response = talk(addr, &post_extract_raw(&doc)).expect("adversarial client");
                let status = status_of(&response);
                assert!(
                    matches!(status, 200 | 408 | 413 | 422 | 503),
                    "attack {kind:?}: unexpected status {status}"
                );
                if status == 200 {
                    ok += 1;
                }
            }
            ok
        }));
    }
    // Protocol-level fault clients run interleaved with the fleet above.
    let fault_clients: Vec<std::thread::JoinHandle<()>> = vec![
        // Slowloris: dribbles one header byte per 50 ms until the server
        // cuts it off. Must be reaped by deadline, not serviced forever.
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(15)))
                .expect("timeout");
            let head = b"POST /extract HTTP/1.1\r\nX-Slow: ";
            for &byte in head.iter().cycle().take(head.len() + 80) {
                if stream.write_all(&[byte]).is_err() {
                    return; // server cut us off early: acceptable
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            let mut out = String::new();
            // Either a 408 arrives or the server already closed on us.
            if stream.read_to_string(&mut out).is_ok() && !out.is_empty() {
                assert_eq!(status_of(&out), 408, "{out}");
            }
        }),
        // Mid-body disconnect: declares 10 000 bytes, sends 100, vanishes.
        std::thread::spawn(move || {
            for i in 0..3 {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 10000\r\n\r\n")
                    .expect("head");
                let _ = stream.write_all(&vec![b'x'; 100 + i]);
                drop(stream); // RST/FIN mid-body
            }
        }),
        // Oversized body: declared over the cap → 413 before upload.
        std::thread::spawn(move || {
            let response = talk(
                addr,
                b"POST /extract HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            )
            .expect("oversized client");
            assert_eq!(status_of(&response), 413, "{response}");
        }),
        // Garbage request line → 400.
        std::thread::spawn(move || {
            let response = talk(addr, b"\x01\x02 utter garbage\r\n\r\n").expect("garbage client");
            assert_eq!(status_of(&response), 400, "{response}");
        }),
        // Pipelined request lines: only the first is answered; the
        // connection closes (`Connection: close`) instead of parsing the
        // smuggled second request.
        std::thread::spawn(move || {
            let response = talk(
                addr,
                b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n",
            )
            .expect("pipelining client");
            assert_eq!(status_of(&response), 200, "{response}");
            assert_eq!(response.matches("HTTP/1.1").count(), 1, "{response}");
        }),
        // Header flood → 431.
        std::thread::spawn(move || {
            let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
            for i in 0..2000 {
                raw.extend_from_slice(format!("X-Flood-{i}: {}\r\n", "v".repeat(32)).as_bytes());
            }
            raw.extend_from_slice(b"\r\n");
            let response = talk(addr, &raw).expect("flood client");
            assert_eq!(status_of(&response), 431, "{response}");
        }),
    ];

    let mut extracted_ok = 0usize;
    for client in clients {
        extracted_ok += client.join().expect("client thread");
    }
    for fault in fault_clients {
        fault.join().expect("fault client thread");
    }
    let elapsed = started.elapsed();
    assert!(
        extracted_ok >= 4 * well_formed_per_client / 2,
        "too few successes"
    );

    // ---- Phase 2: metrics + audit-stream checks -----------------------
    // `/metrics` speaks Prometheus text by default; the rolling p99 must
    // be live while soak traffic is still inside the 1-minute window.
    let prom = talk(addr, b"GET /metrics HTTP/1.1\r\n\r\n").expect("prometheus metrics");
    assert_eq!(status_of(&prom), 200);
    assert!(prom.contains("# TYPE serve_requests_ok counter"), "{prom}");
    assert!(
        prom.contains("rbd_window_latency_ns{window=\"1m\",quantile=\"0.99\"}"),
        "rolling p99 missing under live traffic:\n{prom}"
    );

    let metrics = talk(addr, b"GET /metrics.json HTTP/1.1\r\n\r\n").expect("metrics");
    assert_eq!(status_of(&metrics), 200);
    let metrics_body = metrics
        .split("\r\n\r\n")
        .nth(1)
        .expect("metrics body")
        .to_string();
    let parsed = rbd_json::Json::parse(&metrics_body).expect("metrics is valid JSON");
    let panics = parsed
        .get("server")
        .and_then(|s| s.get("panics"))
        .and_then(rbd_json::Json::as_f64)
        .expect("panics counter");
    assert_eq!(
        panics, 0.0,
        "extraction panicked under soak:\n{metrics_body}"
    );
    let one_m = parsed
        .get("windows")
        .and_then(|w| w.get("1m"))
        .expect("1m rolling window in metrics.json");
    let window_count = one_m
        .get("count")
        .and_then(rbd_json::Json::as_f64)
        .expect("window count");
    assert!(
        window_count >= 1.0,
        "soak traffic must land in the 1m window:\n{metrics_body}"
    );
    let p99 = one_m
        .get("p99_ns")
        .and_then(rbd_json::Json::as_f64)
        .expect("rolling p99 over live traffic");
    assert!(p99 > 0.0, "{metrics_body}");
    let error_rate = one_m
        .get("error_rate")
        .and_then(rbd_json::Json::as_f64)
        .expect("rolling error rate");
    assert!((0.0..=1.0).contains(&error_rate), "{metrics_body}");
    if let Ok(path) = std::env::var("RBD_SERVE_METRICS") {
        std::fs::write(&path, &metrics_body).expect("export metrics snapshot");
    }
    if let Some(dir) = &trace_dir {
        let traces = std::fs::read_dir(dir)
            .expect("trace dir readable")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with("trace-"))
            .count();
        assert!(
            traces >= 1,
            "RBD_SERVE_TRACE_DIR set but no Chrome traces written"
        );
    }

    let kinds: Vec<&'static str> = audit
        .events()
        .iter()
        .map(rbd_trace::TraceEvent::kind)
        .collect();
    assert!(
        kinds.contains(&"server_conn_accepted"),
        "audit stream missing accepts: {kinds:?}"
    );
    assert!(
        kinds.contains(&"server_deadline"),
        "slowloris reap should emit a deadline event: {kinds:?}"
    );

    // Every span the audit stream saw belongs to exactly one request
    // tree: a single `serve:request` root per trace, every parent
    // resolving inside the same trace.
    let spans = audit.spans();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "serve:request").collect();
    assert!(!roots.is_empty(), "soak produced no request roots");
    for root in &roots {
        assert!(root.parent.is_none(), "request root has a parent: {root:?}");
        let tree: Vec<_> = spans.iter().filter(|s| s.trace == root.trace).collect();
        assert_eq!(
            tree.iter().filter(|s| s.parent.is_none()).count(),
            1,
            "trace {} must have exactly one root",
            root.trace.to_hex()
        );
        for span in &tree {
            if let Some(parent) = span.parent {
                assert!(
                    tree.iter().any(|s| s.span == parent),
                    "span {span:?} has a parent outside its own trace"
                );
            }
        }
    }
    assert!(
        spans.iter().any(|s| s.name == "serve:queue_wait"),
        "queue wait must be recorded per request"
    );
    assert!(
        spans.iter().any(|s| s.name == "tokenize"),
        "extraction stages must parent under the request tree"
    );

    // ---- Phase 3: graceful shutdown drains in-flight work -------------
    let draining = std::thread::spawn(move || {
        // This request is in flight when shutdown triggers below; the
        // drain must still answer it.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .expect("timeout");
        let doc = valid_seed_document(999, SEED);
        let raw = post_extract_raw(&doc);
        let (head, body) = raw.split_at(raw.len() / 2);
        stream.write_all(head).expect("first half");
        std::thread::sleep(Duration::from_millis(200));
        stream.write_all(body).expect("second half");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("drained response");
        assert_eq!(status_of(&out), 200, "{out}");
    });
    std::thread::sleep(Duration::from_millis(50));
    shutdown.trigger();
    let report = server_thread.join().expect("server thread");
    draining.join().expect("draining client");

    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.abandoned, 0, "drain abandoned workers");
    assert_eq!(
        report
            .metrics
            .counters
            .get("serve_panics")
            .copied()
            .unwrap_or(0),
        0
    );
    assert!(
        report
            .metrics
            .counters
            .get("serve_timeouts")
            .copied()
            .unwrap_or(0)
            >= 1,
        "slowloris must be reaped as a timeout"
    );
    assert!(
        kinds.contains(&"server_drained") || {
            // Drained fires at run() exit, after the kinds snapshot above —
            // re-read the audit stream for it.
            audit.events().iter().any(|e| e.kind() == "server_drained")
        }
    );

    let docs_per_sec = extracted_ok as f64 / elapsed.as_secs_f64();
    println!(
        "soak: {extracted_ok} extractions in {:.2}s ({docs_per_sec:.1} docs/s), \
         {} accepted, {} shed, {} timeouts",
        elapsed.as_secs_f64(),
        report
            .metrics
            .counters
            .get("serve_conns_accepted")
            .copied()
            .unwrap_or(0),
        report
            .metrics
            .counters
            .get("serve_requests_shed")
            .copied()
            .unwrap_or(0),
        report
            .metrics
            .counters
            .get("serve_timeouts")
            .copied()
            .unwrap_or(0),
    );
}

/// Deterministic overload: a one-connection server with a slowloris peer
/// holding the only slot must answer the next connection `503` with
/// `Retry-After` — shedding, not queueing.
#[test]
fn connection_cap_sheds_with_retry_after() {
    let server = Server::bind(
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            max_connections: 1,
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Occupy the single slot with a deliberately slow request.
    let mut holder = TcpStream::connect(addr).expect("connect holder");
    holder
        .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 5\r\n\r\n")
        .expect("partial request");
    // Wait until the accept loop has admitted the holder.
    std::thread::sleep(Duration::from_millis(300));

    let refused = talk(addr, b"GET /healthz HTTP/1.1\r\n\r\n").expect("refused client");
    assert_eq!(status_of(&refused), 503, "{refused}");
    assert!(refused.contains("Retry-After: 1\r\n"), "{refused}");
    assert!(refused.contains("\"kind\":\"overload\""), "{refused}");

    // Release the slot and confirm service resumes.
    holder.write_all(b"hello").expect("finish holder");
    let mut out = String::new();
    holder.read_to_string(&mut out).expect("holder response");
    assert_eq!(status_of(&out), 422, "plain text has no tags: {out}");

    let healthy = talk(addr, b"GET /healthz HTTP/1.1\r\n\r\n").expect("recovered client");
    assert_eq!(status_of(&healthy), 200, "service must recover: {healthy}");

    shutdown.trigger();
    let report = server_thread.join().expect("server thread");
    assert!(
        report
            .metrics
            .counters
            .get("serve_conns_refused")
            .copied()
            .unwrap_or(0)
            >= 1
    );
}

/// A worker wedged past the drain deadline is abandoned, not waited on
/// forever: shutdown must return promptly and report it.
#[test]
fn drain_deadline_abandons_wedged_connection() {
    let server = Server::bind(
        ServeConfig {
            workers: 1,
            io_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Wedge the worker: open a request and never finish it. The generous
    // io/request deadlines keep it alive far past the drain deadline.
    let mut wedge = TcpStream::connect(addr).expect("connect");
    wedge
        .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-little")
        .expect("wedge request");
    std::thread::sleep(Duration::from_millis(300));

    let drain_started = Instant::now();
    shutdown.trigger();
    let report = server_thread.join().expect("server thread");
    assert!(
        drain_started.elapsed() < Duration::from_secs(10),
        "shutdown must not wait out a 30s-deadline straggler"
    );
    assert_eq!(report.abandoned, 1, "the wedged worker is abandoned");
    drop(wedge);
}

/// Faults on one connection must not corrupt the next: alternate garbage
/// and well-formed requests on a single-worker server and require every
/// well-formed one to succeed.
#[test]
fn faults_do_not_poison_subsequent_requests() {
    let server = Server::bind(
        ServeConfig {
            workers: 1,
            io_timeout: Duration::from_millis(500),
            request_deadline: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let doc = valid_seed_document(7, SEED);
    for round in 0..5 {
        // Fault: garbage, then a mid-body disconnect.
        let garbage = talk(addr, b"NOT-HTTP\r\n\r\n");
        assert!(garbage.is_ok_and(|r| status_of(&r) == 400), "round {round}");
        let mut dropper = TcpStream::connect(addr).expect("connect dropper");
        let _ = dropper.write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 50\r\n\r\nx");
        drop(dropper);

        // Recovery: a well-formed extraction must still succeed.
        let response = talk(addr, &post_extract_raw(&doc)).expect("well-formed");
        assert_eq!(status_of(&response), 200, "round {round}: {response}");
    }

    shutdown.trigger();
    let report = server_thread.join().expect("server thread");
    assert_eq!(report.worker_panics, 0);
}
