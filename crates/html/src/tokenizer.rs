//! The HTML tokenizer proper.
//!
//! A hand-written, single-pass, byte-oriented scanner. It is `O(n)` in the
//! document length — the property the paper's overall complexity argument
//! rests on — and allocation-light: delimiter scanning runs eight bytes at
//! a time (see `scan`), tag names are interned into a per-document
//! [`SymbolTable`], and text tokens borrow the source, deferring entity
//! decoding until someone asks.

use crate::entities::decode_entities;
use crate::intern::{Sym, SymbolTable};
use crate::is_raw_text_element;
use crate::scan::{find_byte, find_sub, scan_text_run};
use crate::span::Span;
use crate::token::{Attribute, EndTag, StartTag, Text, Token};
use rbd_limits::{LimitExceeded, LimitKind};
use std::borrow::Cow;

/// A non-fatal oddity observed while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// What went wrong.
    pub kind: WarningKind,
    /// Where in the source it was observed.
    pub span: Span,
}

/// Classification of tokenizer warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningKind {
    /// `<` appeared but no plausible tag followed; treated as text.
    StrayLessThan,
    /// A tag was still open at end of input; the partial tag was dropped.
    UnterminatedTag,
    /// A comment was still open at end of input.
    UnterminatedComment,
    /// A raw-text element (e.g. `<script>`) was never closed.
    UnterminatedRawText,
    /// An attribute value's closing quote was missing.
    UnterminatedAttributeValue,
}

/// The output of [`tokenize`]: the token stream plus any warnings, and the
/// symbol table that tag-name [`Sym`]s resolve against.
#[derive(Debug, Clone, Default)]
pub struct TokenStream<'a> {
    /// Tokens in document order.
    pub tokens: Vec<Token<'a>>,
    /// Non-fatal parse oddities, in document order.
    pub warnings: Vec<Warning>,
    /// Interned tag names for this document.
    pub symbols: SymbolTable,
}

impl<'a> TokenStream<'a> {
    /// Iterates over only the start/end tag tokens.
    pub fn tags(&self) -> impl Iterator<Item = &Token<'a>> {
        self.tokens
            .iter()
            .filter(|t| matches!(t, Token::Start(_) | Token::End(_)))
    }

    /// Concatenated plain text of the document, entities decoded.
    pub fn plain_text(&self) -> String {
        let mut out = String::new();
        for t in &self.tokens {
            if let Token::Text(t) = t {
                out.push_str(&t.text());
            }
        }
        out
    }

    /// Serializes the whole stream back to markup (see [`Token::render`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.tokens {
            t.render_into(&self.symbols, &mut out);
        }
        out
    }
}

/// Tokenizes an HTML document. Never fails; malformed constructs degrade to
/// text and produce [`Warning`]s.
pub fn tokenize(source: &str) -> TokenStream<'_> {
    Tokenizer::new(source).run()
}

/// Tokenizes an XML document (case-sensitive names, CDATA, no raw-text
/// elements). Equally forgiving of malformed input.
pub fn tokenize_xml(source: &str) -> TokenStream<'_> {
    Tokenizer::new_xml(source).run()
}

/// A resource budget for one tokenizer run.
///
/// The scanner is a single pass whose token stream, warnings and decoded
/// text are all proportional to the input, so the input-byte cap bounds
/// every allocation the run can make. The cap is enforced *before* the
/// scan starts: a document over budget is rejected whole, never silently
/// truncated (cutting at an arbitrary byte would manufacture tags and
/// text the document does not contain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenBudget {
    /// Maximum input length in bytes; `None` is unbounded.
    pub max_input_bytes: Option<usize>,
}

impl TokenBudget {
    /// A budget with no caps — `check` always passes.
    #[must_use]
    pub fn unbounded() -> Self {
        TokenBudget::default()
    }

    /// A budget capping the input at `max_input_bytes`.
    #[must_use]
    pub fn with_max_input_bytes(max_input_bytes: usize) -> Self {
        TokenBudget {
            max_input_bytes: Some(max_input_bytes),
        }
    }

    /// Checks `source` against the budget without scanning it.
    ///
    /// # Errors
    /// [`LimitExceeded`] with [`LimitKind::InputBytes`] when the source is
    /// longer than the cap.
    pub fn check(&self, source: &str) -> Result<(), LimitExceeded> {
        match self.max_input_bytes {
            Some(cap) if source.len() > cap => Err(LimitExceeded {
                limit: LimitKind::InputBytes,
                cap,
                observed: source.len(),
            }),
            _ => Ok(()),
        }
    }
}

/// Tokenizes an HTML document under a [`TokenBudget`].
///
/// # Errors
/// [`LimitExceeded`] when the input is over the budget's byte cap; the
/// scan is not attempted.
pub fn tokenize_budgeted<'a>(
    source: &'a str,
    budget: &TokenBudget,
) -> Result<TokenStream<'a>, LimitExceeded> {
    budget.check(source)?;
    Ok(tokenize(source))
}

/// Tokenizes an XML document under a [`TokenBudget`].
///
/// # Errors
/// [`LimitExceeded`] when the input is over the budget's byte cap; the
/// scan is not attempted.
pub fn tokenize_xml_budgeted<'a>(
    source: &'a str,
    budget: &TokenBudget,
) -> Result<TokenStream<'a>, LimitExceeded> {
    budget.check(source)?;
    Ok(tokenize_xml(source))
}

/// Tokenizes under a [`TokenBudget`] while reporting to a
/// [`TraceSink`](rbd_trace::TraceSink): times the scan as a `"tokenize"`
/// span, bumps the `extract_tags_scanned` counter, and — when the sink is enabled —
/// emits a [`Tokenized`](rbd_trace::TraceEvent::Tokenized) event with the
/// stream's shape. With a disabled sink the only extra cost over
/// [`tokenize_budgeted`] is the span's two clock reads.
///
/// # Errors
/// [`LimitExceeded`] when the input is over the budget's byte cap; the
/// rejection itself is not traced (nothing was scanned).
pub fn tokenize_traced<'a>(
    source: &'a str,
    xml: bool,
    budget: &TokenBudget,
    sink: &dyn rbd_trace::TraceSink,
) -> Result<TokenStream<'a>, LimitExceeded> {
    budget.check(source)?;
    let span = rbd_trace::Span::start_if("tokenize", sink);
    let stream = if xml {
        tokenize_xml(source)
    } else {
        tokenize(source)
    };
    if let Some(span) = span {
        span.finish(sink);
    }
    if sink.enabled() {
        let tags = stream.tags().count();
        sink.add("extract_tags_scanned", tags as u64);
        sink.event(rbd_trace::TraceEvent::Tokenized {
            bytes: source.len(),
            tokens: stream.tokens.len(),
            tags,
            warnings: stream.warnings.len(),
        });
    }
    Ok(stream)
}

/// Streaming tokenizer over a borrowed source document.
///
/// Most callers want the convenience function [`tokenize`]; the struct form
/// exists so the tag-tree builder can reuse the scanner incrementally.
pub struct Tokenizer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: TokenStream<'a>,
    /// When `Some(name)`, we are inside a raw-text element and scan for its
    /// end tag only.
    raw_text: Option<Sym>,
    /// Reused buffer for lower-casing mixed-case tag names before interning.
    scratch: String,
    /// XML mode: tag names keep their case, `<![CDATA[…]]>` sections become
    /// text, and no element is raw-text. The paper's footnote 1 claims the
    /// approach "should carry over directly to other document type
    /// definitions, such as XML" — this mode is that claim, implemented.
    xml: bool,
}

impl<'a> Tokenizer<'a> {
    /// Creates an HTML tokenizer over `source`.
    pub fn new(source: &'a str) -> Self {
        Tokenizer {
            src: source,
            bytes: source.as_bytes(),
            pos: 0,
            out: TokenStream::default(),
            raw_text: None,
            scratch: String::new(),
            xml: false,
        }
    }

    /// Creates an XML tokenizer: case-sensitive names, CDATA sections, no
    /// raw-text elements.
    pub fn new_xml(source: &'a str) -> Self {
        Tokenizer {
            xml: true,
            ..Tokenizer::new(source)
        }
    }

    /// Runs the tokenizer to completion.
    pub fn run(mut self) -> TokenStream<'a> {
        while let Some(b) = self.byte(self.pos) {
            if let Some(sym) = self.raw_text.take() {
                let name = self.out.symbols.resolve(sym).to_owned();
                self.scan_raw_text(&name);
                continue;
            }
            if b == b'<' {
                self.scan_markup();
            } else {
                self.scan_text();
            }
        }
        self.out
    }

    /// The byte at `i`, or `None` past the end. The panic-free accessor
    /// every scanning loop is built on.
    fn byte(&self, i: usize) -> Option<u8> {
        self.bytes.get(i).copied()
    }

    /// Slices `src[start..end]`, returning `""` when the range is out of
    /// bounds or splits a UTF-8 character. Scanner positions only ever rest
    /// on ASCII delimiters, so the fallback is unreachable in practice —
    /// but the parsing hot path must not be able to panic on any input.
    fn slice(&self, start: usize, end: usize) -> &'a str {
        self.src.get(start..end).unwrap_or("")
    }

    /// Slices `src[start..]` with the same total semantics as `slice`.
    fn slice_from(&self, start: usize) -> &'a str {
        self.src.get(start..).unwrap_or("")
    }

    fn warn(&mut self, kind: WarningKind, span: Span) {
        self.out.warnings.push(Warning { kind, span });
    }

    /// Consumes plain text up to the next `<` (or EOF) and emits a Text
    /// token unless the run is entirely empty. One fused SWAR pass finds
    /// the boundary and learns whether the run needs entity decoding.
    fn scan_text(&mut self) {
        let start = self.pos;
        let (end, has_amp) = scan_text_run(self.bytes, start);
        self.pos = end;
        self.emit_text(start, end, has_amp);
    }

    fn emit_text(&mut self, start: usize, end: usize, decode: bool) {
        if start == end {
            return;
        }
        self.out.tokens.push(Token::Text(Text {
            raw: self.slice(start, end),
            decode,
            span: Span::new(start, end),
        }));
    }

    /// Dispatches on the character after `<`.
    fn scan_markup(&mut self) {
        let start = self.pos;
        debug_assert_eq!(self.byte(start), Some(b'<'));
        match self.byte(start + 1) {
            Some(b'!') => self.scan_declaration(start),
            Some(b'?') => self.scan_processing_instruction(start),
            Some(b'/') => self.scan_end_tag(start),
            Some(c) if c.is_ascii_alphabetic() => self.scan_start_tag(start),
            _ => {
                // `<` followed by junk: emit the `<` as text, keep going.
                self.warn(WarningKind::StrayLessThan, Span::new(start, start + 1));
                self.pos = start + 1;
                self.emit_text(start, start + 1, false);
            }
        }
    }

    /// `<!-- … -->`, `<!DOCTYPE …>`, `<![CDATA[…]]>` (XML mode), or any
    /// other `<!…>` construct.
    fn scan_declaration(&mut self, start: usize) {
        if self.xml && self.slice_from(start).starts_with("<![CDATA[") {
            let body_start = start + 9;
            match find_sub(self.bytes, b"]]>", body_start) {
                Some(end) => {
                    self.out.tokens.push(Token::Text(Text {
                        raw: self.slice(body_start, end),
                        decode: false,
                        span: Span::new(start, end + 3),
                    }));
                    self.pos = end + 3;
                }
                None => {
                    let span = Span::new(start, self.bytes.len());
                    self.warn(WarningKind::UnterminatedComment, span);
                    self.out.tokens.push(Token::Text(Text {
                        raw: self.slice_from(body_start),
                        decode: false,
                        span,
                    }));
                    self.pos = self.bytes.len();
                }
            }
            return;
        }
        if self.slice_from(start).starts_with("<!--") {
            match find_sub(self.bytes, b"-->", start + 4) {
                Some(end) => {
                    let span = Span::new(start, end + 3);
                    self.out.tokens.push(Token::Comment(span));
                    self.pos = end + 3;
                }
                None => {
                    let span = Span::new(start, self.bytes.len());
                    self.warn(WarningKind::UnterminatedComment, span);
                    self.out.tokens.push(Token::Comment(span));
                    self.pos = self.bytes.len();
                }
            }
            return;
        }
        // <!DOCTYPE …> or a bogus <! …> comment — scan to `>`.
        let end = find_byte(self.bytes, b'>', start + 2).unwrap_or(self.bytes.len());
        let close = (end < self.bytes.len()) as usize;
        let span = Span::new(start, end + close);
        if close == 0 {
            self.warn(WarningKind::UnterminatedComment, span);
        }
        let body = self.slice(start + 2, end);
        // `get(..7)` rather than slicing: the body may hold multibyte text
        // and a "doctype" prefix is ASCII, so a non-boundary cut means "no".
        if body
            .get(..7)
            .is_some_and(|p| p.eq_ignore_ascii_case("doctype"))
        {
            self.out.tokens.push(Token::Doctype(span));
        } else {
            // The paper treats every `<!…` tag as a comment to discard.
            self.out.tokens.push(Token::Comment(span));
        }
        self.pos = end + close;
    }

    fn scan_processing_instruction(&mut self, start: usize) {
        let end = find_byte(self.bytes, b'>', start + 2).unwrap_or(self.bytes.len());
        let close = (end < self.bytes.len()) as usize;
        let span = Span::new(start, end + close);
        if close == 0 {
            self.warn(WarningKind::UnterminatedTag, span);
        }
        self.out.tokens.push(Token::ProcessingInstruction(span));
        self.pos = end + close;
    }

    fn scan_end_tag(&mut self, start: usize) {
        // `</` then name then optional junk then `>`.
        let name_start = start + 2;
        let mut i = name_start;
        while self.byte(i).is_some_and(is_name_byte) {
            i += 1;
        }
        if i == name_start {
            // `</>` or `</ …`: treat as stray text.
            self.warn(WarningKind::StrayLessThan, Span::new(start, start + 2));
            self.pos = start + 1;
            self.emit_text(start, start + 1, false);
            return;
        }
        let name = self.tag_name(name_start, i);
        let end = find_byte(self.bytes, b'>', i).unwrap_or(self.bytes.len());
        let close = (end < self.bytes.len()) as usize;
        let span = Span::new(start, end + close);
        if close == 0 {
            self.warn(WarningKind::UnterminatedTag, span);
        }
        self.out.tokens.push(Token::End(EndTag { name, span }));
        self.pos = end + close;
    }

    fn scan_start_tag(&mut self, start: usize) {
        let name_start = start + 1;
        let mut i = name_start;
        while self.byte(i).is_some_and(is_name_byte) {
            i += 1;
        }
        let name = self.tag_name(name_start, i);
        let (attrs, self_closing, after) = self.scan_attributes(i);
        let span = Span::new(start, after);
        let last = after.checked_sub(1).and_then(|k| self.byte(k));
        if after == self.bytes.len() && last != Some(b'>') {
            self.warn(WarningKind::UnterminatedTag, span);
        }
        if !self_closing && !self.xml && is_raw_text_element(self.out.symbols.resolve(name)) {
            self.raw_text = Some(name);
        }
        self.out.tokens.push(Token::Start(StartTag {
            name,
            attrs,
            self_closing,
            span,
        }));
        self.pos = after;
    }

    /// Interns the tag name at `src[start..end]`. HTML mode lower-cases
    /// first (through a reused scratch buffer, so an already-lower-case
    /// name — the common case — never allocates); XML is case-sensitive.
    fn tag_name(&mut self, start: usize, end: usize) -> Sym {
        let raw = self.slice(start, end);
        if self.xml || !raw.bytes().any(|b| b.is_ascii_uppercase()) {
            return self.out.symbols.intern(raw);
        }
        self.scratch.clear();
        self.scratch.push_str(raw);
        self.scratch.make_ascii_lowercase();
        self.out.symbols.intern(&self.scratch)
    }

    /// Parses the attribute list starting at `i` (just after the tag name).
    /// Returns `(attrs, self_closing, position after '>')`.
    fn scan_attributes(&mut self, mut i: usize) -> (Vec<Attribute<'a>>, bool, usize) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            // Skip whitespace.
            while self.byte(i).is_some_and(|b| b.is_ascii_whitespace()) {
                i += 1;
            }
            match self.byte(i) {
                None => return (attrs, self_closing, i),
                Some(b'>') => return (attrs, self_closing, i + 1),
                Some(b'/') => {
                    // Self-closing only if `/>`; a lone `/` is skipped.
                    if self.byte(i + 1) == Some(b'>') {
                        self_closing = true;
                        return (attrs, self_closing, i + 2);
                    }
                    i += 1;
                }
                Some(_) => {
                    let (attr, next) = self.scan_one_attribute(i);
                    if let Some(a) = attr {
                        attrs.push(a);
                    }
                    // Guarantee progress even on pathological input.
                    i = next.max(i + 1);
                }
            }
        }
    }

    /// Parses a single `name`, `name=value`, `name="value"` or `name='value'`
    /// attribute starting at non-whitespace position `i`.
    fn scan_one_attribute(&mut self, mut i: usize) -> (Option<Attribute<'a>>, usize) {
        let name_start = i;
        while self
            .byte(i)
            .is_some_and(|b| !matches!(b, b'=' | b'>' | b'/') && !b.is_ascii_whitespace())
        {
            i += 1;
        }
        if i == name_start {
            return (None, i + 1);
        }
        let raw_name = self.slice(name_start, i);
        let name: Cow<'a, str> = if raw_name.bytes().any(|b| b.is_ascii_uppercase()) {
            Cow::Owned(raw_name.to_ascii_lowercase())
        } else {
            Cow::Borrowed(raw_name)
        };
        // Skip whitespace around `=`.
        let mut j = i;
        while self.byte(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if self.byte(j) != Some(b'=') {
            return (Some(Attribute { name, value: None }), i);
        }
        j += 1;
        while self.byte(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        match self.byte(j) {
            Some(q) if q == b'"' || q == b'\'' => {
                let val_start = j + 1;
                match find_byte(self.bytes, q, val_start) {
                    Some(end) => {
                        let value = decode_entities(self.slice(val_start, end));
                        (
                            Some(Attribute {
                                name,
                                value: Some(value),
                            }),
                            end + 1,
                        )
                    }
                    None => {
                        self.warn(
                            WarningKind::UnterminatedAttributeValue,
                            Span::new(val_start, self.bytes.len()),
                        );
                        let value = decode_entities(self.slice_from(val_start));
                        (
                            Some(Attribute {
                                name,
                                value: Some(value),
                            }),
                            self.bytes.len(),
                        )
                    }
                }
            }
            _ => {
                // Unquoted value: up to whitespace or '>'.
                let val_start = j;
                let mut k = j;
                while self
                    .byte(k)
                    .is_some_and(|b| b != b'>' && !b.is_ascii_whitespace())
                {
                    k += 1;
                }
                let value = decode_entities(self.slice(val_start, k));
                (
                    Some(Attribute {
                        name,
                        value: Some(value),
                    }),
                    k,
                )
            }
        }
    }

    /// Inside `<script>`/`<style>`/…: everything until the matching end tag
    /// is one text token; no entity decoding (raw text).
    ///
    /// The closing-tag probe compares exactly `name.len()` bytes
    /// case-insensitively — the old implementation lower-cased the entire
    /// remaining document on every `<` inside the raw text, which was
    /// quadratic on script-heavy pages.
    fn scan_raw_text(&mut self, name: &str) {
        let start = self.pos;
        let mut i = start;
        let closing_at = loop {
            match find_byte(self.bytes, b'<', i) {
                None => break None,
                Some(lt) => {
                    if self.byte(lt + 1) == Some(b'/')
                        && self
                            .slice(lt + 2, lt + 2 + name.len())
                            .eq_ignore_ascii_case(name)
                    {
                        break Some(lt);
                    }
                    i = lt + 1;
                }
            }
        };
        match closing_at {
            Some(lt) => {
                if lt > start {
                    self.out.tokens.push(Token::Text(Text {
                        raw: self.slice(start, lt),
                        decode: false,
                        span: Span::new(start, lt),
                    }));
                }
                self.pos = lt;
                // The `</name …>` itself is scanned as a normal end tag.
            }
            None => {
                let span = Span::new(start, self.bytes.len());
                self.warn(WarningKind::UnterminatedRawText, span);
                if !span.is_empty() {
                    self.out.tokens.push(Token::Text(Text {
                        raw: self.slice_from(start),
                        decode: false,
                        span,
                    }));
                }
                self.pos = self.bytes.len();
            }
        }
    }
}

/// `true` for bytes permitted in tag/attribute names.
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b':' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(ts: &TokenStream<'_>) -> Vec<String> {
        ts.tokens
            .iter()
            .map(|t| match t {
                Token::Start(s) => format!("<{}>", ts.symbols.resolve(s.name)),
                Token::End(e) => format!("</{}>", ts.symbols.resolve(e.name)),
                Token::Text(t) => format!("'{}'", t.text()),
                Token::Comment(_) => "<!--->".into(),
                Token::Doctype(_) => "<!DOCTYPE>".into(),
                Token::ProcessingInstruction(_) => "<?>".into(),
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let ts = tokenize("<html><body>hi</body></html>");
        assert_eq!(
            names(&ts),
            vec!["<html>", "<body>", "'hi'", "</body>", "</html>"]
        );
        assert!(ts.warnings.is_empty());
    }

    #[test]
    fn attributes_quoted_unquoted_bare() {
        let ts = tokenize(r##"<body bgcolor="#FFFFFF" border=1 noshade>"##);
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        assert_eq!(t.attr("bgcolor"), Some("#FFFFFF"));
        assert_eq!(t.attr("border"), Some("1"));
        assert_eq!(
            t.attrs.iter().find(|a| a.name == "noshade").unwrap().value,
            None
        );
    }

    #[test]
    fn single_quoted_attribute() {
        let ts = tokenize("<a href='x.html'>y</a>");
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        assert_eq!(t.attr("href"), Some("x.html"));
    }

    #[test]
    fn attribute_entity_decoding() {
        let ts = tokenize(r#"<a title="fish &amp; chips">"#);
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        assert_eq!(t.attr("title"), Some("fish & chips"));
    }

    #[test]
    fn attribute_without_entities_borrows() {
        let ts = tokenize(r#"<a href="plain.html" Class="x">"#);
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        // Lower-case name + entity-free value: both borrow the source.
        assert!(matches!(&ts.tokens[0], Token::Start(_)));
        let href = t.attrs.iter().find(|a| a.name == "href").unwrap();
        assert!(matches!(href.name, Cow::Borrowed(_)));
        assert!(matches!(href.value, Some(Cow::Borrowed(_))));
        // Mixed-case name must be lower-cased (and therefore owned).
        let class = t.attrs.iter().find(|a| a.name == "class").unwrap();
        assert!(matches!(class.name, Cow::Owned(_)));
    }

    #[test]
    fn tag_names_lowercased() {
        let ts = tokenize("<TABLE><TR><TD>x</TD></TR></TABLE>");
        assert_eq!(
            names(&ts),
            vec!["<table>", "<tr>", "<td>", "'x'", "</td>", "</tr>", "</table>"]
        );
    }

    #[test]
    fn mixed_case_names_intern_to_one_symbol() {
        let ts = tokenize("<TD></td><Td>");
        let syms: Vec<_> = ts.tags().filter_map(Token::tag_sym).collect();
        assert_eq!(syms.len(), 3);
        assert!(syms.iter().all(|&s| s == syms[0]));
        assert_eq!(ts.symbols.resolve(syms[0]), "td");
    }

    #[test]
    fn comments_and_doctype() {
        let ts = tokenize("<!DOCTYPE html><!-- hidden --><p>x</p>");
        assert!(matches!(ts.tokens[0], Token::Doctype(_)));
        assert!(matches!(ts.tokens[1], Token::Comment(_)));
        assert!(ts.tokens[2].is_start(&ts.symbols, "p"));
    }

    #[test]
    fn comment_containing_tags() {
        let ts = tokenize("<!-- <b>not real</b> --><i>x</i>");
        assert!(matches!(ts.tokens[0], Token::Comment(_)));
        assert!(ts.tokens[1].is_start(&ts.symbols, "i"));
    }

    #[test]
    fn bang_tag_without_dashes_is_comment() {
        let ts = tokenize("<!WEIRD thing><p>x");
        assert!(matches!(ts.tokens[0], Token::Comment(_)));
        assert!(ts.tokens[1].is_start(&ts.symbols, "p"));
    }

    #[test]
    fn self_closing() {
        let ts = tokenize("<br/><hr />");
        let Token::Start(b) = &ts.tokens[0] else {
            panic!()
        };
        assert!(b.self_closing);
        let Token::Start(h) = &ts.tokens[1] else {
            panic!()
        };
        assert_eq!(ts.symbols.resolve(h.name), "hr");
        assert!(h.self_closing);
    }

    #[test]
    fn stray_less_than_becomes_text() {
        let ts = tokenize("1 < 2 <b>x</b>");
        assert!(ts
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::StrayLessThan));
        let text = ts.plain_text();
        assert!(text.contains("1 < 2"), "{text:?}");
    }

    #[test]
    fn entity_decoding_in_text() {
        let ts = tokenize("<p>Smith &amp; Sons&nbsp;Inc.</p>");
        assert_eq!(ts.plain_text(), "Smith & Sons\u{A0}Inc.");
    }

    #[test]
    fn entity_free_text_borrows_the_source() {
        let ts = tokenize("<p>plain run</p>");
        let Token::Text(t) = &ts.tokens[1] else {
            panic!()
        };
        assert!(!t.decode);
        assert!(matches!(t.text(), Cow::Borrowed(_)));
    }

    #[test]
    fn raw_text_script_not_parsed() {
        let ts = tokenize("<script>if (a<b) { x(\"<td>\"); }</script><p>y");
        assert!(ts.tokens[0].is_start(&ts.symbols, "script"));
        let Token::Text(t) = &ts.tokens[1] else {
            panic!("{:?}", ts.tokens)
        };
        assert!(t.text().contains("<td>"));
        assert!(ts.tokens[2].is_end(&ts.symbols, "script"));
        assert!(ts.tokens[3].is_start(&ts.symbols, "p"));
    }

    #[test]
    fn raw_text_title() {
        let ts = tokenize("<title>A < B</title><body>");
        let Token::Text(t) = &ts.tokens[1] else {
            panic!()
        };
        assert_eq!(t.text(), "A < B");
    }

    #[test]
    fn raw_text_entities_stay_raw() {
        let ts = tokenize("<script>a &amp;&amp; b</script>");
        let Token::Text(t) = &ts.tokens[1] else {
            panic!()
        };
        assert_eq!(t.text(), "a &amp;&amp; b");
    }

    #[test]
    fn mixed_case_raw_text_closes() {
        let ts = tokenize("<SCRIPT>x</ScRiPt><p>y");
        assert!(ts.tokens[2].is_end(&ts.symbols, "script"));
        assert!(ts.tokens[3].is_start(&ts.symbols, "p"));
    }

    #[test]
    fn unterminated_raw_text_warns() {
        let ts = tokenize("<style>body { }");
        assert!(ts
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::UnterminatedRawText));
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let ts = tokenize("<p>x<b");
        assert!(ts
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::UnterminatedTag));
    }

    #[test]
    fn unterminated_comment_at_eof() {
        let ts = tokenize("<p>x<!-- never closed");
        assert!(ts
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::UnterminatedComment));
    }

    #[test]
    fn unterminated_attribute_value() {
        let ts = tokenize("<a href=\"x.html<p>oops");
        assert!(ts
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::UnterminatedAttributeValue));
    }

    #[test]
    fn end_tag_with_junk() {
        let ts = tokenize("<b>x</b extra>y");
        assert!(ts.tokens[2].is_end(&ts.symbols, "b"));
        let Token::Text(t) = &ts.tokens[3] else {
            panic!()
        };
        assert_eq!(t.text(), "y");
    }

    #[test]
    fn spans_cover_source() {
        let src = "<b>xy</b>";
        let ts = tokenize(src);
        assert_eq!(ts.tokens[0].span(), Span::new(0, 3));
        assert_eq!(ts.tokens[1].span(), Span::new(3, 5));
        assert_eq!(ts.tokens[2].span(), Span::new(5, 9));
    }

    #[test]
    fn processing_instruction() {
        let ts = tokenize("<?xml version=\"1.0\"?><p>x");
        assert!(matches!(ts.tokens[0], Token::ProcessingInstruction(_)));
    }

    #[test]
    fn empty_input() {
        let ts = tokenize("");
        assert!(ts.tokens.is_empty());
        assert!(ts.warnings.is_empty());
    }

    #[test]
    fn only_text() {
        let ts = tokenize("no markup at all");
        assert_eq!(ts.tokens.len(), 1);
        assert_eq!(ts.plain_text(), "no markup at all");
    }

    #[test]
    fn paper_figure2_prefix() {
        let src = "<html><head><title>Classifieds</title></head>\n<body bgcolor=\"#FFFFFF\">";
        let ts = tokenize(src);
        let tags: Vec<_> = ts.tags().map(|t| t.render(&ts.symbols)).collect();
        assert_eq!(
            tags,
            vec![
                "<html>",
                "<head>",
                "<title>",
                "</title>",
                "</head>",
                "<body bgcolor=\"#FFFFFF\">"
            ]
        );
    }

    #[test]
    fn slash_inside_unquoted_value_not_self_closing() {
        let ts = tokenize("<a href=a/b>x</a>");
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        assert_eq!(t.attr("href"), Some("a/b"));
        assert!(!t.self_closing);
    }

    #[test]
    fn equals_with_spaces() {
        let ts = tokenize("<h1 align = \"left\">T</h1>");
        let Token::Start(t) = &ts.tokens[0] else {
            panic!()
        };
        assert_eq!(t.attr("align"), Some("left"));
    }
}
