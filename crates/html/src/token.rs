//! Token types produced by the tokenizer.
//!
//! Tokens are zero-copy views of the source document: tag names are
//! interned [`Sym`]s resolved against the stream's
//! [`SymbolTable`](crate::SymbolTable), text tokens borrow their raw source
//! slice and decode entities lazily, and attribute names/values are `Cow`s
//! that borrow whenever the source already holds the canonical form.

use crate::entities::decode_entities;
use crate::intern::{Sym, SymbolTable};
use crate::span::Span;
use std::borrow::Cow;

/// A parsed attribute of a start tag, e.g. `bgcolor="#FFFFFF"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name, lower-cased (borrowed when already lower-case).
    pub name: Cow<'a, str>,
    /// Attribute value with surrounding quotes removed and entities decoded
    /// (borrowed when no entities occur). `None` for bare boolean
    /// attributes such as `noshade`.
    pub value: Option<Cow<'a, str>>,
}

impl<'a> Attribute<'a> {
    /// Convenience constructor for a valued attribute.
    pub fn new(name: impl Into<Cow<'a, str>>, value: impl Into<Cow<'a, str>>) -> Self {
        Attribute {
            name: name.into(),
            value: Some(value.into()),
        }
    }

    /// Convenience constructor for a bare (valueless) attribute.
    pub fn bare(name: impl Into<Cow<'a, str>>) -> Self {
        Attribute {
            name: name.into(),
            value: None,
        }
    }
}

/// A start tag such as `<td align="left">`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartTag<'a> {
    /// Interned tag name, lower-cased in HTML mode (`td`).
    pub name: Sym,
    /// Attributes in document order.
    pub attrs: Vec<Attribute<'a>>,
    /// `true` for XML-style self-closing syntax (`<br/>`).
    pub self_closing: bool,
    /// Byte range of the whole tag including angle brackets.
    pub span: Span,
}

impl StartTag<'_> {
    /// Looks up an attribute value by (lower-case) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.value.as_deref())
    }
}

/// An end tag such as `</td>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndTag {
    /// Interned tag name, without the leading slash.
    pub name: Sym,
    /// Byte range of the whole tag including angle brackets.
    pub span: Span,
}

/// A run of plain text between tags, borrowed raw from the source;
/// character references decode lazily via [`Text::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Text<'a> {
    /// The raw source slice (entities not yet decoded).
    pub raw: &'a str,
    /// `true` if the run may contain character references (an `&` was seen
    /// while scanning). Raw-text elements and CDATA set this to `false`:
    /// their content is never decoded.
    pub decode: bool,
    /// Byte range in the *source* document (pre-decoding).
    pub span: Span,
}

impl<'a> Text<'a> {
    /// The decoded text content. Borrows the source when no decoding is
    /// needed — the overwhelmingly common case.
    pub fn text(&self) -> Cow<'a, str> {
        if self.decode {
            decode_entities(self.raw)
        } else {
            Cow::Borrowed(self.raw)
        }
    }
}

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token<'a> {
    /// A start tag (`<b>`, `<hr>`, `<table border=1>`, …).
    Start(StartTag<'a>),
    /// An end tag (`</b>`).
    End(EndTag),
    /// Plain text between tags.
    Text(Text<'a>),
    /// A comment (`<!-- … -->`) or other `<!…>` markup declaration.
    /// The paper discards these; they are surfaced so the tag-tree layer can
    /// count what it drops.
    Comment(Span),
    /// A `<!DOCTYPE …>` declaration.
    Doctype(Span),
    /// A processing instruction (`<? … ?>`), rare in 1990s HTML but accepted.
    ProcessingInstruction(Span),
}

impl Token<'_> {
    /// The byte span of the token in the source document.
    pub fn span(&self) -> Span {
        match self {
            Token::Start(t) => t.span,
            Token::End(t) => t.span,
            Token::Text(t) => t.span,
            Token::Comment(s) | Token::Doctype(s) | Token::ProcessingInstruction(s) => *s,
        }
    }

    /// Interned tag name if this token is a start or end tag.
    pub fn tag_sym(&self) -> Option<Sym> {
        match self {
            Token::Start(t) => Some(t.name),
            Token::End(t) => Some(t.name),
            Token::Text(_)
            | Token::Comment(_)
            | Token::Doctype(_)
            | Token::ProcessingInstruction(_) => None,
        }
    }

    /// Tag name resolved against the stream's symbol table, if this token
    /// is a start or end tag.
    pub fn tag_name<'s>(&self, symbols: &'s SymbolTable) -> Option<&'s str> {
        self.tag_sym().map(|sym| symbols.resolve(sym))
    }

    /// `true` if this is a start tag with the given name.
    pub fn is_start(&self, symbols: &SymbolTable, name: &str) -> bool {
        matches!(self, Token::Start(t) if symbols.resolve(t.name) == name)
    }

    /// `true` if this is an end tag with the given name.
    pub fn is_end(&self, symbols: &SymbolTable, name: &str) -> bool {
        matches!(self, Token::End(t) if symbols.resolve(t.name) == name)
    }

    /// Serializes the token back to markup, resolving names against
    /// `symbols`. Text and attribute values are escaped, so rendering a
    /// token stream and re-tokenizing it yields an equivalent stream
    /// (property-tested in `tests/invariants.rs`).
    pub fn render(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        self.render_into(symbols, &mut out);
        out
    }

    /// [`Token::render`] appending into an existing buffer.
    pub fn render_into(&self, symbols: &SymbolTable, out: &mut String) {
        match self {
            Token::Start(t) => {
                out.push('<');
                out.push_str(symbols.resolve(t.name));
                for a in &t.attrs {
                    out.push(' ');
                    out.push_str(&a.name);
                    if let Some(v) = &a.value {
                        out.push_str("=\"");
                        escape_attr(v, out);
                        out.push('"');
                    }
                }
                if t.self_closing {
                    out.push('/');
                }
                out.push('>');
            }
            Token::End(t) => {
                out.push_str("</");
                out.push_str(symbols.resolve(t.name));
                out.push('>');
            }
            Token::Text(t) => escape_text(&t.text(), out),
            Token::Comment(_) => out.push_str("<!-- comment -->"),
            Token::Doctype(_) => out.push_str("<!DOCTYPE html>"),
            Token::ProcessingInstruction(_) => out.push_str("<?pi?>"),
        }
    }
}

/// Escapes text content so it re-tokenizes to the same text.
fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
}

/// Escapes a double-quoted attribute value.
fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_lookup() {
        let mut symbols = SymbolTable::new();
        let t = StartTag {
            name: symbols.intern("body"),
            attrs: vec![Attribute::new("bgcolor", "#FFFFFF"), Attribute::bare("x")],
            self_closing: false,
            span: Span::new(0, 10),
        };
        assert_eq!(t.attr("bgcolor"), Some("#FFFFFF"));
        assert_eq!(t.attr("x"), None); // bare attribute has no value
        assert_eq!(t.attr("missing"), None);
    }

    #[test]
    fn token_predicates() {
        let mut symbols = SymbolTable::new();
        let s = Token::Start(StartTag {
            name: symbols.intern("hr"),
            attrs: vec![],
            self_closing: false,
            span: Span::new(0, 0),
        });
        assert!(s.is_start(&symbols, "hr"));
        assert!(!s.is_start(&symbols, "b"));
        assert!(!s.is_end(&symbols, "hr"));
        assert_eq!(s.tag_name(&symbols), Some("hr"));

        let e = Token::End(EndTag {
            name: symbols.intern("b"),
            span: Span::new(0, 4),
        });
        assert!(e.is_end(&symbols, "b"));
        assert_eq!(e.tag_name(&symbols), Some("b"));
    }

    #[test]
    fn render_roundtrips_simple_tags() {
        let mut symbols = SymbolTable::new();
        let t = Token::Start(StartTag {
            name: symbols.intern("h1"),
            attrs: vec![Attribute::new("align", "left")],
            self_closing: false,
            span: Span::new(0, 0),
        });
        assert_eq!(t.render(&symbols), "<h1 align=\"left\">");
        let e = Token::End(EndTag {
            name: symbols.intern("h1"),
            span: Span::new(0, 0),
        });
        assert_eq!(e.render(&symbols), "</h1>");
    }

    #[test]
    fn lazy_text_decodes_only_when_flagged() {
        let raw = Text {
            raw: "a &amp; b",
            decode: false,
            span: Span::new(0, 9),
        };
        assert_eq!(raw.text(), "a &amp; b"); // raw-text content stays raw
        let cooked = Text {
            decode: true,
            ..raw
        };
        assert_eq!(cooked.text(), "a & b");
    }
}
