//! Token types produced by the tokenizer.

use crate::span::Span;
use std::fmt;

/// A parsed attribute of a start tag, e.g. `bgcolor="#FFFFFF"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lower-cased.
    pub name: String,
    /// Attribute value with surrounding quotes removed and entities decoded.
    /// `None` for bare boolean attributes such as `noshade`.
    pub value: Option<String>,
}

impl Attribute {
    /// Convenience constructor for a valued attribute.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: Some(value.into()),
        }
    }

    /// Convenience constructor for a bare (valueless) attribute.
    pub fn bare(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: None,
        }
    }
}

/// A start tag such as `<td align="left">`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartTag {
    /// Tag name, lower-cased (`td`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<Attribute>,
    /// `true` for XML-style self-closing syntax (`<br/>`).
    pub self_closing: bool,
    /// Byte range of the whole tag including angle brackets.
    pub span: Span,
}

impl StartTag {
    /// Looks up an attribute value by (lower-case) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.value.as_deref())
    }
}

/// An end tag such as `</td>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndTag {
    /// Tag name, lower-cased, without the leading slash.
    pub name: String,
    /// Byte range of the whole tag including angle brackets.
    pub span: Span,
}

/// A run of plain text between tags, with character references decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Text {
    /// Decoded text content.
    pub text: String,
    /// Byte range in the *source* document (pre-decoding).
    pub span: Span,
}

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A start tag (`<b>`, `<hr>`, `<table border=1>`, …).
    Start(StartTag),
    /// An end tag (`</b>`).
    End(EndTag),
    /// Plain text between tags.
    Text(Text),
    /// A comment (`<!-- … -->`) or other `<!…>` markup declaration.
    /// The paper discards these; they are surfaced so the tag-tree layer can
    /// count what it drops.
    Comment(Span),
    /// A `<!DOCTYPE …>` declaration.
    Doctype(Span),
    /// A processing instruction (`<? … ?>`), rare in 1990s HTML but accepted.
    ProcessingInstruction(Span),
}

impl Token {
    /// The byte span of the token in the source document.
    pub fn span(&self) -> Span {
        match self {
            Token::Start(t) => t.span,
            Token::End(t) => t.span,
            Token::Text(t) => t.span,
            Token::Comment(s) | Token::Doctype(s) | Token::ProcessingInstruction(s) => *s,
        }
    }

    /// Tag name if this token is a start or end tag.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Token::Start(t) => Some(&t.name),
            Token::End(t) => Some(&t.name),
            Token::Text(_)
            | Token::Comment(_)
            | Token::Doctype(_)
            | Token::ProcessingInstruction(_) => None,
        }
    }

    /// `true` if this is a start tag with the given name.
    pub fn is_start(&self, name: &str) -> bool {
        matches!(self, Token::Start(t) if t.name == name)
    }

    /// `true` if this is an end tag with the given name.
    pub fn is_end(&self, name: &str) -> bool {
        matches!(self, Token::End(t) if t.name == name)
    }
}

/// Escapes text content so it re-tokenizes to the same text.
fn escape_text(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    use fmt::Write as _;
    for c in s.chars() {
        match c {
            '&' => out.write_str("&amp;")?,
            '<' => out.write_str("&lt;")?,
            '>' => out.write_str("&gt;")?,
            c => out.write_char(c)?,
        }
    }
    Ok(())
}

/// Escapes a double-quoted attribute value.
fn escape_attr(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    use fmt::Write as _;
    for c in s.chars() {
        match c {
            '&' => out.write_str("&amp;")?,
            '"' => out.write_str("&quot;")?,
            c => out.write_char(c)?,
        }
    }
    Ok(())
}

impl fmt::Display for Token {
    /// Serializes the token back to markup. Text and attribute values are
    /// escaped, so rendering a token stream and re-tokenizing it yields an
    /// equivalent stream (property-tested in `tests/invariants.rs`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use fmt::Write as _;
        match self {
            Token::Start(t) => {
                write!(f, "<{}", t.name)?;
                for a in &t.attrs {
                    match &a.value {
                        Some(v) => {
                            write!(f, " {}=\"", a.name)?;
                            escape_attr(v, f)?;
                            f.write_char('"')?;
                        }
                        None => write!(f, " {}", a.name)?,
                    }
                }
                if t.self_closing {
                    write!(f, "/")?;
                }
                write!(f, ">")
            }
            Token::End(t) => write!(f, "</{}>", t.name),
            Token::Text(t) => escape_text(&t.text, f),
            Token::Comment(_) => f.write_str("<!-- comment -->"),
            Token::Doctype(_) => f.write_str("<!DOCTYPE html>"),
            Token::ProcessingInstruction(_) => f.write_str("<?pi?>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::Start(StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
            span: Span::new(0, 0),
        })
    }

    #[test]
    fn attr_lookup() {
        let t = StartTag {
            name: "body".into(),
            attrs: vec![Attribute::new("bgcolor", "#FFFFFF"), Attribute::bare("x")],
            self_closing: false,
            span: Span::new(0, 10),
        };
        assert_eq!(t.attr("bgcolor"), Some("#FFFFFF"));
        assert_eq!(t.attr("x"), None); // bare attribute has no value
        assert_eq!(t.attr("missing"), None);
    }

    #[test]
    fn token_predicates() {
        let s = start("hr");
        assert!(s.is_start("hr"));
        assert!(!s.is_start("b"));
        assert!(!s.is_end("hr"));
        assert_eq!(s.tag_name(), Some("hr"));

        let e = Token::End(EndTag {
            name: "b".into(),
            span: Span::new(0, 4),
        });
        assert!(e.is_end("b"));
        assert_eq!(e.tag_name(), Some("b"));
    }

    #[test]
    fn display_roundtrips_simple_tags() {
        let t = Token::Start(StartTag {
            name: "h1".into(),
            attrs: vec![Attribute::new("align", "left")],
            self_closing: false,
            span: Span::new(0, 0),
        });
        assert_eq!(t.to_string(), "<h1 align=\"left\">");
        let e = Token::End(EndTag {
            name: "h1".into(),
            span: Span::new(0, 0),
        });
        assert_eq!(e.to_string(), "</h1>");
    }
}
