//! Per-document tag-name interning.
//!
//! Tag names repeat constantly — a 1990s listing page is thousands of
//! `<b>`/`<br>`/`<hr>` occurrences drawn from a dozen distinct names. The
//! tokenizer therefore interns every tag name into a per-document
//! [`SymbolTable`] and tokens carry a dense [`Sym`] id instead of an owned
//! `String`: comparisons and hashing become integer operations, and the
//! tag-tree's per-child counting becomes an array bump indexed by `Sym`.

use std::collections::HashMap;

/// An interned tag name: a dense index into the document's [`SymbolTable`].
///
/// `Sym`s are only meaningful relative to the table that minted them;
/// resolving a `Sym` against a different document's table yields an
/// arbitrary (or empty) name, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Index into the owning table's dense name storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A per-document interner mapping tag names to dense [`Sym`] ids.
///
/// The number of distinct names is bounded by the input size (which the
/// `TokenBudget` caps upstream), so the table stays small: interning an
/// already-seen name is one hash lookup with no allocation.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its existing id or minting the next one.
    ///
    /// Total: if the table ever reached `u32::MAX` distinct names (it
    /// cannot — names are at least one byte, so the input budget trips
    /// first) further names all alias the sentinel id rather than panic.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let id = u32::try_from(self.names.len()).unwrap_or(u32::MAX);
        let sym = Sym(id);
        if id < u32::MAX {
            self.names.push(name.into());
            self.map.insert(name.into(), sym);
        }
        sym
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The name behind `sym`; `""` for a `Sym` minted by another table
    /// whose id is out of range here.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.names.get(sym.index()).map_or("", |n| n)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("td");
        let b = t.intern("hr");
        let a2 = t.intern("td");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut t = SymbolTable::new();
        let s = t.intern("table");
        assert_eq!(t.resolve(s), "table");
        assert_eq!(t.lookup("table"), Some(s));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn foreign_sym_resolves_to_empty() {
        let mut minting = SymbolTable::new();
        minting.intern("a");
        let foreign = minting.intern("b");
        let other = SymbolTable::new();
        assert_eq!(other.resolve(foreign), "");
    }

    #[test]
    fn case_matters_to_the_table() {
        // The tokenizer lowercases HTML names *before* interning; the table
        // itself is case-sensitive so XML mode works unchanged.
        let mut t = SymbolTable::new();
        assert_ne!(t.intern("TD"), t.intern("td"));
    }
}
