//! # rbd-html — a from-scratch HTML tokenizer
//!
//! This crate is the lowest substrate of the record-boundary discovery
//! pipeline (Embley, Jiang & Ng, SIGMOD 1999). It turns raw HTML bytes into a
//! stream of [`Token`]s: start-tags (with parsed attributes), end-tags,
//! comments, doctype declarations, and plain text with character references
//! decoded.
//!
//! The tokenizer is deliberately forgiving — 1990s web documents are full of
//! unclosed tags, stray `>` characters, unquoted attribute values and bogus
//! comments — and never fails on malformed input. Errors that a strict parser
//! would raise are instead recorded as [`Warning`]s alongside the token
//! stream, so callers can still observe document quality.
//!
//! What this crate intentionally does *not* do:
//!
//! * build a DOM — tree construction is the job of `rbd-tagtree`, which
//!   implements the paper's Appendix A algorithm over this token stream;
//! * enforce HTML5 parsing-spec state-machine details — the paper predates
//!   HTML5 and its algorithm only needs tag/text segmentation.
//!
//! Tokens are zero-copy views of the source: tag names are interned
//! [`Sym`]s resolved against the stream's [`SymbolTable`], and text tokens
//! borrow their raw slice, decoding character references lazily.
//!
//! ## Example
//!
//! ```
//! use rbd_html::{tokenize, Token};
//!
//! let tokens = tokenize("<b>Brian &amp; Field</b><hr>");
//! assert_eq!(tokens.tokens.len(), 4);
//! assert!(tokens.tokens[0].is_start(&tokens.symbols, "b"));
//! assert!(matches!(&tokens.tokens[1], Token::Text(t) if t.text() == "Brian & Field"));
//! assert!(tokens.tokens[2].is_end(&tokens.symbols, "b"));
//! assert!(tokens.tokens[3].is_start(&tokens.symbols, "hr"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entities;
pub mod intern;
mod scan;
pub mod span;
pub mod token;
pub mod tokenizer;

pub use entities::decode_entities;
pub use intern::{Sym, SymbolTable};
pub use span::Span;
pub use token::{Attribute, EndTag, StartTag, Text, Token};
pub use tokenizer::{
    tokenize, tokenize_budgeted, tokenize_traced, tokenize_xml, tokenize_xml_budgeted, TokenBudget,
    TokenStream, Tokenizer, Warning, WarningKind,
};

/// Returns `true` for element names that, in pre-HTML5 practice, never take
/// an end tag ("void" elements). The tag-tree builder uses this only as a
/// hint for diagnostics; the paper's algorithm closes *any* dangling
/// start-tag at the next enclosing end-tag, so correctness does not depend
/// on this list.
pub fn is_void_element(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "basefont"
            | "br"
            | "col"
            | "frame"
            | "hr"
            | "img"
            | "input"
            | "isindex"
            | "link"
            | "meta"
            | "param"
            | "wbr"
    )
}

/// Returns `true` for elements whose content is raw text (no nested markup):
/// the tokenizer treats everything until the matching end tag as text.
pub fn is_raw_text_element(name: &str) -> bool {
    matches!(name, "script" | "style" | "xmp" | "textarea" | "title")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_elements_include_hr_and_br() {
        assert!(is_void_element("hr"));
        assert!(is_void_element("br"));
        assert!(!is_void_element("b"));
        assert!(!is_void_element("td"));
    }

    #[test]
    fn raw_text_elements() {
        assert!(is_raw_text_element("script"));
        assert!(is_raw_text_element("style"));
        assert!(!is_raw_text_element("div"));
    }
}
