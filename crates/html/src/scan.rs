//! Chunked (SWAR) delimiter scanning for the tokenizer hot path.
//!
//! The tokenizer spends most of its time finding the next `<` — and, inside
//! a text run, noticing whether an `&` occurred before it. These helpers do
//! that eight bytes at a time with SIMD-within-a-register arithmetic
//! (Mycroft's zero-byte trick), falling back to a plain byte loop only for
//! the sub-word remainder. Everything here is panic-free: no indexing, no
//! unwraps, and only widening casts.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// A mask whose high bit is set in every lane of `word` equal to `needle`.
#[inline]
fn lanes_eq(word: u64, needle: u8) -> u64 {
    let x = word ^ (LO.wrapping_mul(u64::from(needle)));
    x.wrapping_sub(LO) & !x & HI
}

/// Loads an 8-byte chunk as a little-endian word. The chunk always comes
/// from `chunks_exact(8)`, so the fallback value is unreachable; it exists
/// so the load is total without indexing.
#[inline]
fn load_word(chunk: &[u8]) -> u64 {
    let arr: [u8; 8] = chunk.try_into().unwrap_or([0; 8]);
    u64::from_le_bytes(arr)
}

/// Byte offset (within the word) of the first set lane in `mask`.
#[inline]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Index of the first occurrence of `needle` at or after `from`.
pub(crate) fn find_byte(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
    let tail = haystack.get(from..).unwrap_or(&[]);
    let mut offset = 0usize;
    let mut chunks = tail.chunks_exact(8);
    for chunk in &mut chunks {
        let mask = lanes_eq(load_word(chunk), needle);
        if mask != 0 {
            return Some(from + offset + first_lane(mask));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| from + offset + i)
}

/// Index of the first occurrence of the `needle` byte string at or after
/// `from`. Word-scans for the first byte, then confirms the rest.
pub(crate) fn find_sub(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    let mut at = from;
    while let Some(hit) = find_byte(haystack, first, at) {
        let after = haystack.get(hit + 1..hit + 1 + rest.len());
        match after {
            Some(tail) if tail == rest => return Some(hit),
            Some(_) => at = hit + 1,
            // Not enough bytes left for the needle: no later hit can fit.
            None => return None,
        }
    }
    None
}

/// Scans a text run starting at `from`: returns the index of the next `<`
/// (or `bytes.len()`) and whether an `&` occurred strictly before it. One
/// fused pass feeds both the token boundary and the "does this run need
/// entity decoding" decision.
pub(crate) fn scan_text_run(bytes: &[u8], from: usize) -> (usize, bool) {
    let tail = bytes.get(from..).unwrap_or(&[]);
    let mut amp = false;
    let mut offset = 0usize;
    let mut chunks = tail.chunks_exact(8);
    for chunk in &mut chunks {
        let word = load_word(chunk);
        let lt = lanes_eq(word, b'<');
        let amps = lanes_eq(word, b'&');
        if lt != 0 {
            let lane = first_lane(lt);
            // Only lanes strictly before the `<` count; `lane` is at most 7
            // so the shift distance is at most 56.
            let before = (1u64 << (lane * 8)) - 1;
            amp |= amps & before != 0;
            return (from + offset + lane, amp);
        }
        amp |= amps != 0;
        offset += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == b'<' {
            return (from + offset + i, amp);
        }
        amp |= b == b'&';
    }
    (bytes.len(), amp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
        haystack
            .get(from..)
            .unwrap_or(&[])
            .iter()
            .position(|&b| b == needle)
            .map(|i| i + from)
    }

    #[test]
    fn find_byte_matches_naive_scan() {
        let hay = b"abc<def&ghi<<&&jklmnopqrstuvwxyz0123456789<&end";
        for from in 0..=hay.len() {
            for needle in [b'<', b'&', b'z', b'\0'] {
                assert_eq!(
                    find_byte(hay, needle, from),
                    naive_find(hay, needle, from),
                    "needle {needle} from {from}"
                );
            }
        }
    }

    #[test]
    fn find_byte_past_end_is_none() {
        assert_eq!(find_byte(b"abc", b'a', 10), None);
        assert_eq!(find_byte(b"", b'a', 0), None);
    }

    #[test]
    fn find_byte_hits_every_lane() {
        for i in 0..24 {
            let mut hay = vec![b'.'; 24];
            if let Some(slot) = hay.get_mut(i) {
                *slot = b'<';
            }
            assert_eq!(find_byte(&hay, b'<', 0), Some(i), "lane {i}");
        }
    }

    #[test]
    fn find_sub_basics() {
        let hay = b"xx]]x]]>yy]]>";
        assert_eq!(find_sub(hay, b"]]>", 0), Some(5));
        assert_eq!(find_sub(hay, b"]]>", 6), Some(10));
        assert_eq!(find_sub(hay, b"]]>", 11), None);
        assert_eq!(find_sub(hay, b"", 0), None);
        assert_eq!(find_sub(b"ab", b"abc", 0), None);
    }

    #[test]
    fn scan_text_run_reports_amp_only_before_lt() {
        // '&' after the '<' must not set the flag.
        let (end, amp) = scan_text_run(b"hello<b>&amp;", 0);
        assert_eq!(end, 5);
        assert!(!amp);
        // '&' before the '<' in the same word.
        let (end, amp) = scan_text_run(b"a&b<c", 0);
        assert_eq!(end, 3);
        assert!(amp);
        // '&' in an earlier word than the '<'.
        let (end, amp) = scan_text_run(b"a&bcdefghijklmnop<q", 0);
        assert_eq!(end, 17);
        assert!(amp);
    }

    #[test]
    fn scan_text_run_to_eof() {
        let (end, amp) = scan_text_run(b"no markup at all", 0);
        assert_eq!(end, 16);
        assert!(!amp);
        let (end, amp) = scan_text_run(b"fish & chips", 0);
        assert_eq!(end, 12);
        assert!(amp);
        assert_eq!(scan_text_run(b"", 0), (0, false));
    }

    #[test]
    fn scan_text_run_exhaustive_against_naive() {
        let src = b"ab&cd<ef&&gh<<ij&k_lmnopqrstu&vwxyz<0123456789&<end&";
        for from in 0..=src.len() {
            let naive_end = src
                .iter()
                .enumerate()
                .skip(from)
                .find(|&(_, &b)| b == b'<')
                .map_or(src.len(), |(i, _)| i);
            let naive_amp = src.get(from..naive_end).unwrap_or(&[]).contains(&b'&');
            assert_eq!(
                scan_text_run(src, from),
                (naive_end, naive_amp),
                "from {from}"
            );
        }
    }
}
