//! Byte spans into the source document.
//!
//! Every token carries the half-open byte range it was lexed from so that
//! downstream components (record chunking, the Data-Record Table) can slice
//! the original document without re-parsing.

use std::fmt;
use std::ops::Range;

/// A half-open byte range `[start, end)` into the source document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    /// Panics in debug builds if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "inverted span {start}..{end}");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `pos` falls inside the span.
    pub fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }

    /// `true` if `other` lies entirely within `self`.
    pub fn encloses(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Smallest span that covers both `self` and `other`.
    pub fn join(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Slices `source` with this span.
    ///
    /// Total: returns `""` if the span is out of bounds for `source` or
    /// splits a UTF-8 character, so a span from one document applied to
    /// another can never panic.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl From<Range<usize>> for Span {
    fn from(r: Range<usize>) -> Self {
        Span::new(r.start, r.end)
    }
}

impl From<Span> for Range<usize> {
    fn from(s: Span) -> Self {
        s.start..s.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(2));
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(!s.contains(1));
    }

    #[test]
    fn empty_span() {
        let s = Span::new(3, 3);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(3));
    }

    #[test]
    fn encloses_and_join() {
        let outer = Span::new(0, 10);
        let inner = Span::new(3, 7);
        assert!(outer.encloses(inner));
        assert!(!inner.encloses(outer));
        assert_eq!(inner.join(Span::new(8, 12)), Span::new(3, 12));
    }

    #[test]
    fn slicing() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn range_conversions() {
        let s: Span = (1..4).into();
        assert_eq!(s, Span::new(1, 4));
        let r: Range<usize> = s.into();
        assert_eq!(r, 1..4);
    }

    #[test]
    fn display() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
