//! HTML character-reference ("entity") decoding.
//!
//! Covers the named entities that actually occur in 1990s web documents plus
//! decimal (`&#38;`) and hexadecimal (`&#x26;`) numeric references. Unknown
//! references are passed through verbatim — a lenient choice that matches how
//! period browsers behaved and keeps plain-text offsets sane for heuristics
//! that count characters.

/// Named entities recognized by [`decode_entities`]. Sorted by name so the
/// table is binary-searchable.
static NAMED: &[(&str, &str)] = &[
    ("AElig", "\u{C6}"),
    ("Aacute", "\u{C1}"),
    ("Agrave", "\u{C0}"),
    ("Auml", "\u{C4}"),
    ("Eacute", "\u{C9}"),
    ("Ntilde", "\u{D1}"),
    ("Ouml", "\u{D6}"),
    ("Uuml", "\u{DC}"),
    ("aacute", "\u{E1}"),
    ("agrave", "\u{E0}"),
    ("amp", "&"),
    ("apos", "'"),
    ("auml", "\u{E4}"),
    ("bull", "\u{2022}"),
    ("cent", "\u{A2}"),
    ("copy", "\u{A9}"),
    ("deg", "\u{B0}"),
    ("eacute", "\u{E9}"),
    ("egrave", "\u{E8}"),
    ("frac12", "\u{BD}"),
    ("frac14", "\u{BC}"),
    ("gt", ">"),
    ("hellip", "\u{2026}"),
    ("iexcl", "\u{A1}"),
    ("laquo", "\u{AB}"),
    ("ldquo", "\u{201C}"),
    ("lsquo", "\u{2018}"),
    ("lt", "<"),
    ("mdash", "\u{2014}"),
    ("middot", "\u{B7}"),
    ("nbsp", "\u{A0}"),
    ("ndash", "\u{2013}"),
    ("ntilde", "\u{F1}"),
    ("ouml", "\u{F6}"),
    ("para", "\u{B6}"),
    ("plusmn", "\u{B1}"),
    ("pound", "\u{A3}"),
    ("quot", "\""),
    ("raquo", "\u{BB}"),
    ("rdquo", "\u{201D}"),
    ("reg", "\u{AE}"),
    ("rsquo", "\u{2019}"),
    ("sect", "\u{A7}"),
    ("shy", "\u{AD}"),
    ("times", "\u{D7}"),
    ("trade", "\u{2122}"),
    ("uuml", "\u{FC}"),
    ("yen", "\u{A5}"),
];

fn lookup_named(name: &str) -> Option<&'static str> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .and_then(|i| NAMED.get(i))
        .map(|&(_, decoded)| decoded)
}

/// Decodes character references in `input`.
///
/// Handles `&name;`, `&#1234;` and `&#xABCD;` forms. The terminating
/// semicolon is required except for a handful of very common entities
/// (`&amp` `&lt` `&gt` `&quot` `&nbsp`) which period documents frequently
/// left unterminated. Anything unrecognized is copied through unchanged.
///
/// ```
/// use rbd_html::decode_entities;
/// assert_eq!(decode_entities("Mortuary &amp; Chapel"), "Mortuary & Chapel");
/// assert_eq!(decode_entities("&#65;&#x42;"), "AB");
/// assert_eq!(decode_entities("AT&T"), "AT&T"); // lenient pass-through
/// ```
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_owned();
    }
    // rbd-lint: allow(budget) — output ≤ input, whose size the TokenBudget caps upstream
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b != b'&' {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(b);
            out.push_str(input.get(i..i + ch_len).unwrap_or(""));
            i += ch_len;
            continue;
        }
        match decode_one(input.get(i..).unwrap_or("")) {
            Some((decoded, consumed)) => {
                out.push_str(decoded);
                i += consumed;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

/// Byte length of the UTF-8 character starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Attempts to decode one reference at the start of `s` (which begins with
/// `&`). Returns the decoded text and the number of source bytes consumed.
fn decode_one(s: &str) -> Option<(&'static str, usize)> {
    let rest = s.get(1..).unwrap_or("");
    if let Some(num) = rest.strip_prefix('#') {
        return decode_numeric(num).map(|(ch, used)| (ch, used + 2));
    }
    // Longest-match a run of alphanumerics.
    let name_len = rest.bytes().take_while(u8::is_ascii_alphanumeric).count();
    if name_len == 0 {
        return None;
    }
    let name = rest.get(..name_len).unwrap_or("");
    let terminated = rest.as_bytes().get(name_len) == Some(&b';');
    if let Some(decoded) = lookup_named(name) {
        if terminated {
            return Some((decoded, 1 + name_len + 1));
        }
        // Unterminated: only accept the classic few.
        if matches!(name, "amp" | "lt" | "gt" | "quot" | "nbsp") {
            return Some((decoded, 1 + name_len));
        }
    }
    None
}

/// Decodes the numeric part of `&#...;`. `num` starts after `#`. Returns the
/// character (leaked into a static cache for the common case of small code
/// points) and bytes consumed after `&#`.
fn decode_numeric(num: &str) -> Option<(&'static str, usize)> {
    let (digits, radix) = match num.strip_prefix(['x', 'X']) {
        Some(hex) => (hex, 16u32),
        None => (num, 10u32),
    };
    let len = digits
        .bytes()
        .take_while(|b| (*b as char).is_digit(radix))
        .count();
    if len == 0 || len > 7 {
        return None;
    }
    let code = u32::from_str_radix(digits.get(..len).unwrap_or(""), radix).ok()?;
    let ch = char::from_u32(code)?;
    let mut consumed = len + if radix == 16 { 1 } else { 0 };
    if digits.as_bytes().get(len) == Some(&b';') {
        consumed += 1;
    }
    Some((cached_char(ch), consumed))
}

/// Interns single characters as `&'static str`. ASCII characters come from a
/// static table; anything else is boxed and leaked (bounded in practice by
/// the distinct characters in a document).
fn cached_char(ch: char) -> &'static str {
    const ASCII: &str = "\0\u{1}\u{2}\u{3}\u{4}\u{5}\u{6}\u{7}\u{8}\t\n\u{b}\u{c}\r\u{e}\u{f}\
         \u{10}\u{11}\u{12}\u{13}\u{14}\u{15}\u{16}\u{17}\u{18}\u{19}\u{1a}\u{1b}\u{1c}\u{1d}\u{1e}\u{1f}\
         \u{20}!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\u{7f}";
    if ch.is_ascii() {
        let i = ch as usize;
        if let Some(s) = ASCII.get(i..i + 1) {
            return s;
        }
    }
    // Rare path: leak a tiny allocation.
    Box::leak(ch.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn common_named_entities() {
        assert_eq!(decode_entities("&amp;"), "&");
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("&quot;hi&quot;"), "\"hi\"");
        assert_eq!(decode_entities("a&nbsp;b"), "a\u{A0}b");
        assert_eq!(decode_entities("&copy; 1998"), "\u{A9} 1998");
    }

    #[test]
    fn unterminated_classics() {
        assert_eq!(decode_entities("AT&amp T"), "AT& T");
        assert_eq!(decode_entities("1 &lt 2"), "1 < 2");
    }

    #[test]
    fn unterminated_uncommon_passes_through() {
        assert_eq!(decode_entities("&copy 1998"), "&copy 1998");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(decode_entities("&#65;"), "A");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#X41;"), "A");
        assert_eq!(decode_entities("&#8212;"), "\u{2014}");
    }

    #[test]
    fn numeric_without_semicolon() {
        assert_eq!(decode_entities("&#65 b"), "A b");
    }

    #[test]
    fn invalid_references_pass_through() {
        assert_eq!(decode_entities("&;"), "&;");
        assert_eq!(decode_entities("&#;"), "&#;");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
        assert_eq!(decode_entities("&bogusentity;"), "&bogusentity;");
    }

    #[test]
    fn surrogate_code_points_rejected() {
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn no_ampersand_fast_path() {
        assert_eq!(decode_entities("plain text"), "plain text");
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode_entities("caf\u{E9} &amp; bar"), "caf\u{E9} & bar");
    }

    #[test]
    fn adjacent_references() {
        assert_eq!(decode_entities("&lt;&lt;&gt;&gt;"), "<<>>");
    }
}
