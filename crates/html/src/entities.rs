//! HTML character-reference ("entity") decoding.
//!
//! Covers the named entities that actually occur in 1990s web documents plus
//! decimal (`&#38;`) and hexadecimal (`&#x26;`) numeric references. Unknown
//! references are passed through verbatim — a lenient choice that matches how
//! period browsers behaved and keeps plain-text offsets sane for heuristics
//! that count characters.

use crate::scan::find_byte;
use std::borrow::Cow;

/// Named entities recognized by [`decode_entities`]. Sorted by name so the
/// table is binary-searchable.
static NAMED: &[(&str, &str)] = &[
    ("AElig", "\u{C6}"),
    ("Aacute", "\u{C1}"),
    ("Agrave", "\u{C0}"),
    ("Auml", "\u{C4}"),
    ("Eacute", "\u{C9}"),
    ("Ntilde", "\u{D1}"),
    ("Ouml", "\u{D6}"),
    ("Uuml", "\u{DC}"),
    ("aacute", "\u{E1}"),
    ("agrave", "\u{E0}"),
    ("amp", "&"),
    ("apos", "'"),
    ("auml", "\u{E4}"),
    ("bull", "\u{2022}"),
    ("cent", "\u{A2}"),
    ("copy", "\u{A9}"),
    ("deg", "\u{B0}"),
    ("eacute", "\u{E9}"),
    ("egrave", "\u{E8}"),
    ("frac12", "\u{BD}"),
    ("frac14", "\u{BC}"),
    ("gt", ">"),
    ("hellip", "\u{2026}"),
    ("iexcl", "\u{A1}"),
    ("laquo", "\u{AB}"),
    ("ldquo", "\u{201C}"),
    ("lsquo", "\u{2018}"),
    ("lt", "<"),
    ("mdash", "\u{2014}"),
    ("middot", "\u{B7}"),
    ("nbsp", "\u{A0}"),
    ("ndash", "\u{2013}"),
    ("ntilde", "\u{F1}"),
    ("ouml", "\u{F6}"),
    ("para", "\u{B6}"),
    ("plusmn", "\u{B1}"),
    ("pound", "\u{A3}"),
    ("quot", "\""),
    ("raquo", "\u{BB}"),
    ("rdquo", "\u{201D}"),
    ("reg", "\u{AE}"),
    ("rsquo", "\u{2019}"),
    ("sect", "\u{A7}"),
    ("shy", "\u{AD}"),
    ("times", "\u{D7}"),
    ("trade", "\u{2122}"),
    ("uuml", "\u{FC}"),
    ("yen", "\u{A5}"),
];

fn lookup_named(name: &str) -> Option<&'static str> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .and_then(|i| NAMED.get(i))
        .map(|&(_, decoded)| decoded)
}

/// Decodes character references in `input`.
///
/// Handles `&name;`, `&#1234;` and `&#xABCD;` forms. The terminating
/// semicolon is required except for a handful of very common entities
/// (`&amp` `&lt` `&gt` `&quot` `&nbsp`) which period documents frequently
/// left unterminated. Anything unrecognized is copied through unchanged.
///
/// Zero-copy on the hot path: input with no `&` at all — the overwhelming
/// majority of text runs — is returned as `Cow::Borrowed` without
/// allocating. When decoding does happen, the runs between references are
/// copied as whole slices (every run boundary sits on an ASCII `&`, so no
/// byte can be dropped at a multi-byte character), and the decoded output
/// is never longer than the input.
///
/// ```
/// use rbd_html::decode_entities;
/// assert_eq!(decode_entities("Mortuary &amp; Chapel"), "Mortuary & Chapel");
/// assert_eq!(decode_entities("&#65;&#x42;"), "AB");
/// assert_eq!(decode_entities("AT&T"), "AT&T"); // lenient pass-through
/// assert!(matches!(
///     decode_entities("no references here"),
///     std::borrow::Cow::Borrowed(_)
/// ));
/// ```
pub fn decode_entities(input: &str) -> Cow<'_, str> {
    let bytes = input.as_bytes();
    let Some(first) = find_byte(bytes, b'&', 0) else {
        return Cow::Borrowed(input);
    };
    // rbd-lint: allow(budget) — output ≤ input, whose size the TokenBudget caps upstream
    let mut out = String::with_capacity(input.len());
    out.push_str(input.get(..first).unwrap_or(""));
    let mut i = first;
    while let Some(amp) = find_byte(bytes, b'&', i) {
        // Copy the run since the last reference wholesale: both boundaries
        // sit on an ASCII `&` (or the scan start), so they are always char
        // boundaries and no input byte is ever lost.
        out.push_str(input.get(i..amp).unwrap_or(""));
        match decode_one(input.get(amp..).unwrap_or("")) {
            Some((decoded, consumed)) => {
                out.push_str(decoded);
                i = amp + consumed;
            }
            None => {
                out.push('&');
                i = amp + 1;
            }
        }
    }
    out.push_str(input.get(i..).unwrap_or(""));
    Cow::Owned(out)
}

/// Attempts to decode one reference at the start of `s` (which begins with
/// `&`). Returns the decoded text and the number of source bytes consumed.
fn decode_one(s: &str) -> Option<(&'static str, usize)> {
    let rest = s.get(1..).unwrap_or("");
    if let Some(num) = rest.strip_prefix('#') {
        return decode_numeric(num).map(|(ch, used)| (ch, used + 2));
    }
    // Longest-match a run of alphanumerics.
    let name_len = rest.bytes().take_while(u8::is_ascii_alphanumeric).count();
    if name_len == 0 {
        return None;
    }
    let name = rest.get(..name_len).unwrap_or("");
    let terminated = rest.as_bytes().get(name_len) == Some(&b';');
    if let Some(decoded) = lookup_named(name) {
        if terminated {
            return Some((decoded, 1 + name_len + 1));
        }
        // Unterminated: only accept the classic few.
        if matches!(name, "amp" | "lt" | "gt" | "quot" | "nbsp") {
            return Some((decoded, 1 + name_len));
        }
    }
    None
}

/// Decodes the numeric part of `&#...;`. `num` starts after `#`. Returns the
/// character (leaked into a static cache for the common case of small code
/// points) and bytes consumed after `&#`.
fn decode_numeric(num: &str) -> Option<(&'static str, usize)> {
    let (digits, radix) = match num.strip_prefix(['x', 'X']) {
        Some(hex) => (hex, 16u32),
        None => (num, 10u32),
    };
    let len = digits
        .bytes()
        .take_while(|b| (*b as char).is_digit(radix))
        .count();
    if len == 0 || len > 7 {
        return None;
    }
    let code = u32::from_str_radix(digits.get(..len).unwrap_or(""), radix).ok()?;
    let ch = char::from_u32(code)?;
    let mut consumed = len + if radix == 16 { 1 } else { 0 };
    if digits.as_bytes().get(len) == Some(&b';') {
        consumed += 1;
    }
    Some((cached_char(ch), consumed))
}

/// Interns single characters as `&'static str`. ASCII characters come from a
/// static table; anything else is boxed and leaked (bounded in practice by
/// the distinct characters in a document).
fn cached_char(ch: char) -> &'static str {
    const ASCII: &str = "\0\u{1}\u{2}\u{3}\u{4}\u{5}\u{6}\u{7}\u{8}\t\n\u{b}\u{c}\r\u{e}\u{f}\
         \u{10}\u{11}\u{12}\u{13}\u{14}\u{15}\u{16}\u{17}\u{18}\u{19}\u{1a}\u{1b}\u{1c}\u{1d}\u{1e}\u{1f}\
         \u{20}!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\u{7f}";
    if ch.is_ascii() {
        let i = ch as usize;
        if let Some(s) = ASCII.get(i..i + 1) {
            return s;
        }
    }
    // Rare path: leak a tiny allocation.
    Box::leak(ch.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn common_named_entities() {
        assert_eq!(decode_entities("&amp;"), "&");
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("&quot;hi&quot;"), "\"hi\"");
        assert_eq!(decode_entities("a&nbsp;b"), "a\u{A0}b");
        assert_eq!(decode_entities("&copy; 1998"), "\u{A9} 1998");
    }

    #[test]
    fn unterminated_classics() {
        assert_eq!(decode_entities("AT&amp T"), "AT& T");
        assert_eq!(decode_entities("1 &lt 2"), "1 < 2");
    }

    #[test]
    fn unterminated_uncommon_passes_through() {
        assert_eq!(decode_entities("&copy 1998"), "&copy 1998");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(decode_entities("&#65;"), "A");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#X41;"), "A");
        assert_eq!(decode_entities("&#8212;"), "\u{2014}");
    }

    #[test]
    fn numeric_without_semicolon() {
        assert_eq!(decode_entities("&#65 b"), "A b");
    }

    #[test]
    fn invalid_references_pass_through() {
        assert_eq!(decode_entities("&;"), "&;");
        assert_eq!(decode_entities("&#;"), "&#;");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
        assert_eq!(decode_entities("&bogusentity;"), "&bogusentity;");
    }

    #[test]
    fn no_ampersand_borrows() {
        // The hot-path contract: no `&` means no allocation at all.
        assert!(matches!(decode_entities("plain text"), Cow::Borrowed(_)));
        assert!(matches!(decode_entities(""), Cow::Borrowed(_)));
        assert!(matches!(
            decode_entities("caf\u{E9} \u{4e16}\u{754c}"),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode_entities("caf\u{E9} &amp; bar"), "caf\u{E9} & bar");
    }

    #[test]
    fn no_bytes_lost_around_multibyte_chars() {
        // Regression for the old copy loop, which stepped by a computed
        // UTF-8 length and silently dropped bytes when the step overshot.
        // The run-copy rewrite slices between `&` positions instead, so
        // every non-reference byte must survive verbatim — including
        // multi-byte characters hard against the buffer end or a reference.
        for src in [
            "\u{1F480}",                       // lone 4-byte char
            "\u{1F480}&amp;\u{1F480}",         // 4-byte flanking a reference
            "a\u{E9}&lt;\u{4E16}&gt;\u{754C}", // 2- and 3-byte neighbors
            "&amp;\u{2603}",                   // reference then 3-byte at EOF
            "\u{2603}&",                       // trailing lone ampersand
            "&#x41;\u{1F480}",                 // numeric then 4-byte at EOF
        ] {
            let decoded = decode_entities(src);
            // Every multi-byte char of the input must appear in the output.
            for ch in src.chars().filter(|c| !c.is_ascii()) {
                assert!(decoded.contains(ch), "{src:?}: lost {ch:?} in {decoded:?}");
            }
        }
    }

    #[test]
    fn adjacent_references() {
        assert_eq!(decode_entities("&lt;&lt;&gt;&gt;"), "<<>>");
    }

    #[test]
    fn surrogate_code_points_pass_through() {
        // `char::from_u32` returns None for the whole surrogate range.
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;");
        assert_eq!(decode_entities("&#xDFFF;"), "&#xDFFF;");
        assert_eq!(decode_entities("&#55296;"), "&#55296;");
    }

    #[test]
    fn overlong_numeric_references_pass_through() {
        // More than 7 digits is rejected before parsing, so overflow can
        // never wrap into a valid code point.
        assert_eq!(decode_entities("&#99999999;"), "&#99999999;");
        assert_eq!(decode_entities("&#x10FFFF0;"), "&#x10FFFF0;");
        assert_eq!(decode_entities("&#00000000065;"), "&#00000000065;");
    }

    #[test]
    fn unterminated_numeric_forms() {
        assert_eq!(decode_entities("&#65"), "A");
        assert_eq!(decode_entities("&#65x"), "Ax");
        assert_eq!(decode_entities("&#x"), "&#x");
        assert_eq!(decode_entities("&#x;"), "&#x;");
        assert_eq!(decode_entities("&#"), "&#");
    }

    #[test]
    fn out_of_range_code_point_passes_through() {
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // 0x110000
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rbd_prop::{check, gen, prop_assert, Gen};

    /// Text sprinkled with reference-shaped fragments, valid and broken.
    fn arb_entity_soup() -> Gen<String> {
        let piece = Gen::one_of(vec![
            Gen::select(vec![
                "&amp;",
                "&lt;",
                "&gt",
                "&nbsp",
                "&copy;",
                "&copy",
                "&#65;",
                "&#x41;",
                "&#xD800;",
                "&#99999999;",
                "&#",
                "&#x;",
                "&;",
                "&",
                "&bogus;",
            ])
            .map(String::from),
            gen::string_from("ab&#; xyz0123", 0..=8),
            gen::unicode_string(0..=4),
        ]);
        gen::concat(piece, 0..=24)
    }

    /// Every reference this decoder accepts replaces at least as many
    /// source bytes as it produces, so decoding can never grow the text.
    #[test]
    fn output_never_longer_than_input() {
        check("decode_output_le_input", &arb_entity_soup(), |src| {
            let decoded = decode_entities(src);
            prop_assert!(
                decoded.len() <= src.len(),
                "decoded {} bytes from {} ({src:?} -> {decoded:?})",
                decoded.len(),
                src.len()
            );
            Ok(())
        });
    }

    /// Inputs with no `&` come back borrowed and bit-identical.
    #[test]
    fn amp_free_input_is_identity() {
        let plain = gen::string_from("abcdefghijklmnop <>;# \u{E9}\u{4E16}", 0..=32);
        check("decode_identity_no_amp", &plain, |src: &String| {
            let src = src.replace('&', "");
            let decoded = decode_entities(&src);
            prop_assert!(matches!(decoded, Cow::Borrowed(_)) || src.is_empty());
            prop_assert!(decoded == src.as_str());
            Ok(())
        });
    }
}
