//! Tokenizer invariants, property-tested on arbitrary input: totality,
//! span discipline, and idempotent re-tokenization of the rendered stream.

use proptest::prelude::*;
use rbd_html::{tokenize, Token};

fn arb_html() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        // Well-formed fragments.
        prop::sample::select(vec![
            "<b>",
            "</b>",
            "<hr>",
            "<br/>",
            "<td align=left>",
            "</td>",
            "<a href=\"x\">",
            "<!-- c -->",
            "<!DOCTYPE html>",
            "&amp;",
            "&#65;",
        ])
        .prop_map(String::from),
        // Arbitrary text including metacharacters.
        "[a-z<>&\"'= ]{0,12}",
        // Raw unicode.
        "\\PC{0,6}",
    ];
    prop::collection::vec(piece, 0..40).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenization never panics and consumes the whole input: token spans
    /// are sorted, non-overlapping, and tag/text spans tile into the
    /// document (gaps are only where markup was discarded as malformed).
    #[test]
    fn spans_sorted_and_nonoverlapping(src in arb_html()) {
        let ts = tokenize(&src);
        let mut last_end = 0usize;
        for tok in &ts.tokens {
            let span = tok.span();
            prop_assert!(span.start <= span.end);
            prop_assert!(span.end <= src.len());
            prop_assert!(
                span.start >= last_end,
                "overlap: {} starts before {}",
                span,
                last_end
            );
            last_end = span.end;
        }
    }

    /// Every tag token's span slices to text that starts with `<`.
    #[test]
    fn tag_spans_point_at_angle_brackets(src in arb_html()) {
        let ts = tokenize(&src);
        for tok in &ts.tokens {
            if matches!(tok, Token::Start(_) | Token::End(_)) {
                let span = tok.span();
                if span.start < src.len() && src.is_char_boundary(span.start) {
                    prop_assert!(src[span.start..].starts_with('<'), "{tok:?}");
                }
            }
        }
    }

    /// Rendering the token stream back to markup and re-tokenizing yields
    /// the same tag sequence (normalization fixpoint).
    #[test]
    fn render_retokenize_fixpoint(src in arb_html()) {
        let ts = tokenize(&src);
        let rendered: String = ts.tokens.iter().map(|t| t.to_string()).collect();
        let ts2 = tokenize(&rendered);
        let tags = |ts: &rbd_html::TokenStream| -> Vec<String> {
            ts.tokens
                .iter()
                .filter_map(|t| match t {
                    Token::Start(s) => Some(format!("<{}>", s.name)),
                    Token::End(e) => Some(format!("</{}>", e.name)),
                    _ => None,
                })
                .collect()
        };
        prop_assert_eq!(tags(&ts), tags(&ts2), "rendered: {:?}", rendered);
    }

    /// Plain text survives a tokenize → plain_text round trip for inputs
    /// with no markup at all.
    #[test]
    fn plain_text_identity(src in "[a-z 0-9.,]{0,40}") {
        let ts = tokenize(&src);
        prop_assert_eq!(ts.plain_text(), src);
    }
}
