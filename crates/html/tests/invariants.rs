//! Tokenizer invariants, property-tested on arbitrary input: totality,
//! span discipline, and idempotent re-tokenization of the rendered stream.

use rbd_html::{tokenize, Token};
use rbd_prop::{check_cases, gen, prop_assert, prop_assert_eq, Gen};

fn arb_html() -> Gen<String> {
    let piece = Gen::one_of(vec![
        // Well-formed fragments.
        Gen::select(vec![
            "<b>",
            "</b>",
            "<hr>",
            "<br/>",
            "<td align=left>",
            "</td>",
            "<a href=\"x\">",
            "<!-- c -->",
            "<!DOCTYPE html>",
            "&amp;",
            "&#65;",
        ])
        .map(String::from),
        // Arbitrary text including metacharacters.
        gen::string_from("abcdefghijklmnopqrstuvwxyz<>&\"'= ", 0..=12),
        // Raw unicode.
        gen::unicode_string(0..=6),
    ]);
    gen::concat(piece, 0..=40)
}

/// Tokenization never panics and consumes the whole input: token spans
/// are sorted, non-overlapping, and tag/text spans tile into the
/// document (gaps are only where markup was discarded as malformed).
fn spans_sorted_and_nonoverlapping(src: &str) -> Result<(), String> {
    let ts = tokenize(src);
    let mut last_end = 0usize;
    for tok in &ts.tokens {
        let span = tok.span();
        prop_assert!(span.start <= span.end);
        prop_assert!(span.end <= src.len());
        prop_assert!(
            span.start >= last_end,
            "overlap: {span} starts before {last_end}"
        );
        last_end = span.end;
    }
    Ok(())
}

#[test]
fn spans_sorted_and_nonoverlapping_holds() {
    check_cases("spans_sorted_and_nonoverlapping", 256, &arb_html(), |s| {
        spans_sorted_and_nonoverlapping(s)
    });
}

/// Every tag token's span slices to text that starts with `<`.
fn tag_spans_point_at_angle_brackets(src: &str) -> Result<(), String> {
    let ts = tokenize(src);
    for tok in &ts.tokens {
        if matches!(tok, Token::Start(_) | Token::End(_)) {
            let span = tok.span();
            if span.start < src.len() && src.is_char_boundary(span.start) {
                prop_assert!(src[span.start..].starts_with('<'), "{tok:?}");
            }
        }
    }
    Ok(())
}

#[test]
fn tag_spans_point_at_angle_brackets_holds() {
    check_cases("tag_spans_point_at_angle_brackets", 256, &arb_html(), |s| {
        tag_spans_point_at_angle_brackets(s)
    });
}

/// Rendering the token stream back to markup and re-tokenizing yields
/// the same tag sequence (normalization fixpoint).
fn render_retokenize_fixpoint(src: &str) -> Result<(), String> {
    let ts = tokenize(src);
    let rendered = ts.render();
    let ts2 = tokenize(&rendered);
    let tags = |ts: &rbd_html::TokenStream| -> Vec<String> {
        ts.tokens
            .iter()
            .filter_map(|t| match t {
                Token::Start(s) => Some(format!("<{}>", ts.symbols.resolve(s.name))),
                Token::End(e) => Some(format!("</{}>", ts.symbols.resolve(e.name))),
                _ => None,
            })
            .collect()
    };
    prop_assert_eq!(tags(&ts), tags(&ts2), "rendered: {rendered:?}");
    Ok(())
}

#[test]
fn render_retokenize_fixpoint_holds() {
    check_cases("render_retokenize_fixpoint", 256, &arb_html(), |s| {
        render_retokenize_fixpoint(s)
    });
}

/// Plain text survives a tokenize → plain_text round trip for inputs
/// with no markup at all.
#[test]
fn plain_text_identity_holds() {
    let plain = gen::string_from("abcdefghijklmnopqrstuvwxyz 0123456789.,", 0..=40);
    check_cases("plain_text_identity", 256, &plain, |src: &String| {
        let ts = tokenize(src);
        prop_assert_eq!(ts.plain_text(), *src);
        Ok(())
    });
}

/// Regressions distilled from historical proptest runs (the former
/// `invariants.proptest-regressions` cases), kept as explicit tests so
/// they run on every `cargo test` forever.
#[test]
fn regression_malformed_attr_soup() {
    // shrunk from: src = "<a&=<\"a= <b><b>"
    let src = "<a&=<\"a= <b><b>".to_owned();
    spans_sorted_and_nonoverlapping(&src).unwrap();
    tag_spans_point_at_angle_brackets(&src).unwrap();
    render_retokenize_fixpoint(&src).unwrap();
}

#[test]
fn regression_declaration_with_multibyte() {
    // shrunk from: src = "<!\u{135d}a🌀"
    let src = "<!\u{135d}a🌀".to_owned();
    spans_sorted_and_nonoverlapping(&src).unwrap();
    tag_spans_point_at_angle_brackets(&src).unwrap();
    render_retokenize_fixpoint(&src).unwrap();
}
