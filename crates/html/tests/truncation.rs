//! Byte-level truncation robustness: documents cut off at arbitrary byte
//! offsets — including mid-way through a multi-byte UTF-8 sequence — must
//! tokenize without ever emitting a span that splits a `char` boundary.
//!
//! The truncated inputs come from the corpus crate's fault-injection
//! generators, which lossily re-decode the byte prefix: the tokenizer only
//! ever sees valid `&str`, but its input now ends in a replacement
//! character at an unpredictable position, and every slicing decision
//! downstream relies on spans staying on boundaries.

use rbd_corpus::adversarial::{mutate_bytes, truncate_bytes, valid_seed_document};
use rbd_html::{tokenize, tokenize_budgeted, Token, TokenBudget};
use rbd_prop::{check_cases, prop_assert, Gen, Rng};

const SEED_DOCS: usize = 8;

/// Asserts every span of every token lands on char boundaries of `source`
/// and that text tokens decode to what their span covers (entity decoding
/// aside, the decoded text never exceeds the span's raw length bound for
/// plain runs).
fn assert_span_discipline(source: &str) -> Result<(), String> {
    let stream = tokenize(source);
    for token in &stream.tokens {
        let span = token.span();
        prop_assert!(
            span.end <= source.len(),
            "span {span:?} out of bounds for len {}",
            source.len()
        );
        prop_assert!(
            source.is_char_boundary(span.start) && source.is_char_boundary(span.end),
            "span {span:?} splits a char boundary"
        );
        // Slicing is the real proof: &str indexing panics off-boundary.
        let raw = &source[span.start..span.end];
        if let Token::Text(t) = token {
            let text = t.text();
            prop_assert!(
                text.is_char_boundary(text.len()),
                "decoded text not a valid string"
            );
            // A text token's raw slice contains no tag-opening '<' except
            // possibly a stray one re-classified as text.
            prop_assert!(
                !raw.is_empty() || text.is_empty(),
                "empty span with non-empty text"
            );
        }
    }
    Ok(())
}

#[test]
fn truncated_corpus_documents_never_split_char_boundaries() {
    // Every byte prefix of a few corpus documents, lossily decoded. The
    // documents are small enough to sweep *all* offsets, not a sample.
    for doc_index in 0..SEED_DOCS {
        let doc = valid_seed_document(doc_index, 0xC0FFEE);
        let step = (doc.len() / 400).max(1);
        for cut in (0..doc.len()).step_by(step) {
            let prefix = String::from_utf8_lossy(&doc.as_bytes()[..cut]).into_owned();
            assert_span_discipline(&prefix).unwrap_or_else(|e| {
                panic!("doc {doc_index} cut at byte {cut}: {e}");
            });
        }
    }
}

#[test]
fn multibyte_heavy_document_survives_every_cut() {
    // Dense 2-, 3- and 4-byte sequences: every second byte offset is inside
    // a character.
    let doc =
        "<td><p>caf\u{e9} \u{4e16}\u{754c} \u{1f480}</p><hr>\u{3053}\u{3093}<hr>\u{2603}</td>"
            .repeat(20);
    for cut in 0..doc.len() {
        let prefix = String::from_utf8_lossy(&doc.as_bytes()[..cut]).into_owned();
        assert_span_discipline(&prefix).unwrap_or_else(|e| {
            panic!("cut at byte {cut}: {e}");
        });
    }
}

#[test]
fn random_truncation_and_mutation_property() {
    let gen = Gen::new(move |rng: &mut Rng| {
        let doc = valid_seed_document(rng.random_range(0usize..16), 0xC0FFEE);
        if rng.random_bool(0.5) {
            truncate_bytes(&doc, rng)
        } else {
            let edits = rng.random_range(1usize..48);
            mutate_bytes(&doc, edits, rng)
        }
    });
    check_cases("truncation-span-discipline", 300, &gen, |doc: &String| {
        assert_span_discipline(doc)
    });
}

#[test]
fn budget_check_is_exact_at_the_boundary() {
    let doc = "x".repeat(100);
    let budget = TokenBudget::with_max_input_bytes(100);
    let stream = tokenize_budgeted(&doc, &budget).expect("exactly at cap is within budget");
    assert_eq!(stream.plain_text(), doc);
    let over = "x".repeat(101);
    let err = tokenize_budgeted(&over, &budget).unwrap_err();
    assert_eq!(err.cap, 100);
    assert_eq!(err.observed, 101);
}
